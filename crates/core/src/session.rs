//! [`ShapleySession`] — a prepared, updatable Shapley engine handle.
//!
//! The free functions of [`crate::shapley`] and [`crate::aggregates`]
//! re-resolve atoms and recompile the counting structures on every
//! call, even though [`CompiledCount`] / [`CompiledUnionCount`] are
//! compile-once by design. A session is the prepared-statement view of
//! the same machinery: [`ShapleySession::prepare`] classifies the
//! query, resolves the strategy *once*, and builds the compiled engine
//! (the hierarchical engine for CQ¬s, the inclusion–exclusion engine
//! for UCQ¬s, the shared per-candidate engines for aggregates) exactly
//! once; [`ShapleySession::value`], [`ShapleySession::values`],
//! [`ShapleySession::report`], and [`ShapleySession::sampled`] then
//! serve from the cached state, and [`ShapleySession::strategy`] /
//! [`ShapleySession::complexity`] expose the routing decision.
//!
//! ## Incremental maintenance
//!
//! The session owns its database copy, so
//! [`ShapleySession::insert_fact`], [`ShapleySession::retract_fact`],
//! and [`ShapleySession::set_exogenous`] can mutate it in place (fact
//! ids stay stable — see [`Database::retract_fact`]) and *maintain* the
//! compiled engine across the update: only the touched root group's
//! counting recursion re-runs, the cached leave-one-out environments
//! are patched by exact factor swaps, and the weight correlations are
//! refreshed in parallel (see [`CompiledCount::update`]). Structural
//! drift — a root group appearing or dying, a query atom resolving
//! differently, any non-hierarchical engine state — falls back to a
//! full recompile. Either way the session's answers are bit-identical
//! to a freshly prepared session on the same database
//! (proptest-pinned in `tests/session_updates.rs`).
//!
//! ```
//! use cqshap_core::session::ShapleySession;
//! use cqshap_core::{AnyQuery, ShapleyOptions};
//! use cqshap_db::{Database, Provenance};
//! use cqshap_query::parse_cq;
//!
//! let db = Database::parse("exo Stud(a)\nendo TA(a)\nendo Reg(a, c)\n").unwrap();
//! let q = parse_cq("q() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
//!
//! // Prepare once: strategy resolution + engine compilation.
//! let mut session = ShapleySession::prepare(&db, AnyQuery::Cq(&q), &ShapleyOptions::auto()).unwrap();
//! let ta = session.database().find_fact("TA", &["a"]).unwrap();
//! assert_eq!(session.value(ta).unwrap().to_string(), "-1/2");
//!
//! // Update in place: the engine is maintained, not recompiled.
//! let reg2 = session.insert_fact("Reg", &["a", "c2"], Provenance::Endogenous).unwrap();
//! let report = session.report().unwrap();
//! assert!(report.efficiency_holds());
//! assert_eq!(report.entry(reg2).unwrap().value.to_string(), "1/3");
//!
//! // Retract it again and the original answers come back.
//! session.retract_fact(reg2).unwrap();
//! assert_eq!(session.value(ta).unwrap().to_string(), "-1/2");
//! ```

use std::collections::HashSet;

use cqshap_db::{Database, DbError, FactId, Provenance};
use cqshap_numeric::{BigInt, BigRational};
use cqshap_query::{classify_with_exo, ConjunctiveQuery, ExactComplexity, UnionQuery};

use crate::aggregates::{aggregate_efficiency_target, AggregateEngines, AggregateFunction};
use crate::anyquery::AnyQuery;
use crate::approx::{
    shapley_additive_approx, shapley_anytime, AnytimeParams, AnytimeReport, AnytimeState,
    ApproxShapley, SampleParams,
};
use crate::budget::CancelToken;
use crate::compiled::{CompiledCount, CompiledProbability, EngineUpdate};
use crate::compiled_union::CompiledUnionCount;
use crate::domain::{probability_by_enumeration_cancel, FactProbabilities};
use crate::error::CoreError;
use crate::exoshap;
use crate::satcount::BruteForceCounter;
use crate::shapley::{
    assemble_report, assemble_report_with_total, efficiency_target, engine_report_values,
    engine_values, per_fact_values, resolve_strategy, resolve_union_route,
    shapley_by_permutations_cancel, shapley_via_counts, union_brute_value, union_brute_values,
    union_efficiency_target, zero_report, ResolvedStrategy, ShapleyOptions, ShapleyReport,
    UnionRoute,
};
use crate::wsms::{wsms_report, WsmsReport, WsmsWeight};

/// The prepared query of a session.
#[derive(Clone)]
enum QuerySpec {
    Cq(ConjunctiveQuery),
    Union(UnionQuery),
    Aggregate {
        query: ConjunctiveQuery,
        agg: AggregateFunction,
    },
}

/// One signed, rewritten inclusion–exclusion term with its compiled
/// engine (the `ExoShap` union path).
struct ExoTerm {
    negative: bool,
    db: Database,
    engine: CompiledCount,
}

/// The compiled state behind a session.
enum EngineState {
    /// Hierarchical CQ¬: the batched engine against the session db.
    CqCompiled(CompiledCount),
    /// `ExoShap` CQ¬: the engine against the rewritten database.
    CqRewritten {
        db: Box<Database>,
        engine: CompiledCount,
    },
    /// The rewriting proved the query always false: every value is 0.
    CqAlwaysFalse,
    /// Brute-force strategies: per-fact evaluation, no compiled state.
    CqPerFact,
    /// UCQ¬ through the inclusion–exclusion engine.
    UnionCompiled(CompiledUnionCount),
    /// UCQ¬ through per-conjunction `ExoShap` terms.
    UnionExoShap(Vec<ExoTerm>),
    /// UCQ¬ brute-force subset enumeration.
    UnionBrute,
    /// UCQ¬ permutation enumeration.
    UnionPermutations,
    /// Aggregate: the shared per-candidate engines.
    Aggregate(AggregateEngines),
    /// A failed post-update rebuild left no usable engine; reads
    /// surface the stored reason until a successful update re-prepares.
    Poisoned(String),
    /// No exact engine was ever prepared — the query is out of the
    /// exact tiers' reach (see
    /// [`ShapleySession::prepare_with_fallback`]); only the degraded
    /// tiers serve. Stores the prepare-time reason.
    ExactUnavailable(String),
}

/// The lazily built probabilistic state behind a session — the same
/// compiled structures as [`EngineState`], instantiated at the
/// probability domain (see [`ShapleySession::probability`]).
enum ProbState {
    /// Nothing built yet, or invalidated by an update the engine could
    /// not absorb / a probability change: the next probabilistic read
    /// rebuilds through the routing ladder.
    NotBuilt,
    /// Hierarchical CQ¬: the compiled probability engine on the session
    /// database, incrementally maintained across updates.
    Cq(CompiledProbability),
    /// `ExoShap` CQ¬: the engine against the rewritten database (the
    /// rewriting preserves `q(Dx ∪ E)` for every `E ⊆ Dn`, hence the
    /// whole distribution over worlds).
    Rewritten {
        db: Box<Database>,
        engine: CompiledProbability,
    },
    /// The rewriting proved the query always false: `Pr[q] = 0`.
    AlwaysFalse,
    /// UCQ¬ through signed inclusion–exclusion probability engines, one
    /// per satisfiable subset conjunction.
    Union(Vec<(bool, CompiledProbability)>),
    /// World enumeration within [`ShapleyOptions::brute_force_limit`].
    Brute,
    /// No probabilistic route for this session (e.g. aggregates).
    Unsupported(String),
}

/// Update counters of a session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Database updates applied through the session.
    pub updates: usize,
    /// Updates served by incremental engine maintenance.
    pub incremental_updates: usize,
    /// Updates that forced a full engine recompile.
    pub full_recompiles: usize,
    /// Failed updates whose database mutation was rolled back (the
    /// session kept serving from the pre-update state).
    pub rolled_back: usize,
}

/// Which answer tiers [`ShapleySession::report_tiered`] may degrade to
/// when the exact engines run out of budget (or out of tractability).
///
/// The ladder is `Exact → Sampled(ε, δ) → WSMS`: exact values whenever
/// the budget allows, the anytime permutation sampler with CLT
/// confidence intervals next, and the tractable weighted-sums-of-
/// minimal-supports measure ([`crate::wsms`]) as the always-terminating
/// floor.
#[derive(Debug, Clone)]
pub struct TierPolicy {
    /// Allow degrading to the anytime sampler.
    pub allow_sampled: bool,
    /// Allow degrading to the WSMS measure.
    pub allow_wsms: bool,
    /// Target half-width of the sampled tier's confidence intervals.
    pub epsilon: f64,
    /// Per-fact miscoverage of the sampled tier (`1 − δ` confidence).
    pub delta: f64,
    /// Seed for the sampled tier.
    pub seed: u64,
    /// Weighting of the WSMS tier.
    pub wsms_weight: WsmsWeight,
}

impl Default for TierPolicy {
    fn default() -> Self {
        TierPolicy {
            allow_sampled: true,
            allow_wsms: true,
            epsilon: 0.05,
            delta: 0.05,
            seed: 0x5eed,
            wsms_weight: WsmsWeight::SizeInverse,
        }
    }
}

/// The answer [`ShapleySession::report_tiered`] settled on, tagged by
/// the tier that produced it.
#[derive(Debug, Clone)]
pub enum TieredAnswer {
    /// The exact report finished within the budget.
    Exact(ShapleyReport),
    /// Exact ran out of budget (or tractability); the anytime sampler's
    /// interval estimates, possibly resumed from an earlier call.
    Sampled(AnytimeReport),
    /// The tractable WSMS responsibility measure — a different (but
    /// order-meaningful) attribution, never a Shapley estimate.
    Wsms(WsmsReport),
}

/// May the ladder absorb this exact-tier failure by degrading, rather
/// than propagate it as a genuine input error?
fn tier_degradable(e: &CoreError) -> bool {
    matches!(
        e,
        CoreError::DeadlineExceeded { .. }
            | CoreError::TooManyEndogenousFacts { .. }
            | CoreError::HasNonHierarchicalPath { .. }
            | CoreError::NotHierarchical { .. }
            | CoreError::NotSelfJoinFree { .. }
            | CoreError::IntractableIntersection { .. }
    )
}

/// Reports one ladder demotion to the installed recorder, naming the
/// tier that failed and the [`CoreError`] that forced the step down.
/// The detail string is only formatted when a recorder is installed.
fn tier_demote_event(tier: &str, err: &CoreError) {
    if cqshap_obs::enabled() {
        cqshap_obs::event(cqshap_obs::phase::EV_TIER_DEMOTE, &format!("{tier}: {err}"));
    }
}

/// A prepared, updatable engine handle unifying CQ¬ / UCQ¬ / aggregate
/// Shapley computation behind one API. See the [module docs](self).
pub struct ShapleySession {
    db: Database,
    options: ShapleyOptions,
    spec: QuerySpec,
    resolved: Option<ResolvedStrategy>,
    complexity: Option<ExactComplexity>,
    state: EngineState,
    probs: FactProbabilities,
    prob: ProbState,
    stats: SessionStats,
    /// The session's one cancellation token (`Some` iff the options
    /// carry a limited budget), re-armed at every public entry point so
    /// the deadline always measures the current call. Compiled engines
    /// hold clones and poll it from their evaluation recursions.
    cancel: Option<CancelToken>,
    /// Resumable anytime-sampler state: a second
    /// [`ShapleySession::anytime`] call tightens the same estimates.
    /// Invalidated by every successful database update.
    anytime: Option<AnytimeState>,
}

fn exo_relation_names(db: &Database) -> HashSet<String> {
    db.exogenous_relation_names().into_iter().collect()
}

/// Resolves the strategy and builds the compiled state for one spec.
/// When `cancel` is present, every compiled engine is armed with a
/// clone of the token (so its recounts poll the session budget) and the
/// compile phases themselves are deadline-bounded.
fn build_state(
    db: &Database,
    spec: &QuerySpec,
    options: &ShapleyOptions,
    cancel: Option<&CancelToken>,
) -> Result<
    (
        Option<ResolvedStrategy>,
        Option<ExactComplexity>,
        EngineState,
    ),
    CoreError,
> {
    let compile_count = |db: &Database, q: &ConjunctiveQuery| match cancel {
        Some(token) => CompiledCount::compile_with_cancel(db, q, options.threads, token.clone()),
        None => CompiledCount::compile_with_threads(db, q, options.threads),
    };
    match spec {
        QuerySpec::Cq(q) => {
            let complexity = {
                let _span = cqshap_obs::Span::enter(cqshap_obs::phase::PREPARE_CLASSIFY);
                classify_with_exo(q, &exo_relation_names(db))
            };
            let resolved = {
                let _span = cqshap_obs::Span::enter(cqshap_obs::phase::PREPARE_RESOLVE_STRATEGY);
                resolve_strategy(db, q, options)?
            };
            let _span = cqshap_obs::Span::enter(cqshap_obs::phase::PREPARE_COMPILE);
            let state = match resolved {
                ResolvedStrategy::Hierarchical => EngineState::CqCompiled(compile_count(db, q)?),
                ResolvedStrategy::ExoShap => {
                    let outcome = exoshap::rewrite(db, q, options.tuple_budget)?;
                    if outcome.always_false {
                        EngineState::CqAlwaysFalse
                    } else {
                        let engine = compile_count(&outcome.db, &outcome.query)?;
                        EngineState::CqRewritten {
                            db: Box::new(outcome.db),
                            engine,
                        }
                    }
                }
                ResolvedStrategy::BruteForce | ResolvedStrategy::Permutations => {
                    EngineState::CqPerFact
                }
            };
            Ok((Some(resolved), Some(complexity), state))
        }
        QuerySpec::Union(u) => {
            let route = {
                let _span = cqshap_obs::Span::enter(cqshap_obs::phase::PREPARE_RESOLVE_STRATEGY);
                resolve_union_route(db, u, options, cancel)?
            };
            let _span = cqshap_obs::Span::enter(cqshap_obs::phase::PREPARE_COMPILE);
            let (resolved, state) = match route {
                UnionRoute::Compiled => (
                    ResolvedStrategy::Hierarchical,
                    EngineState::UnionCompiled(match cancel {
                        Some(token) => CompiledUnionCount::compile_with_cancel(
                            db,
                            u,
                            options.threads,
                            token.clone(),
                        )?,
                        None => CompiledUnionCount::compile_with_threads(db, u, options.threads)?,
                    }),
                ),
                UnionRoute::ExoShap(terms) => {
                    let compiled = terms
                        .into_iter()
                        .map(|(negative, outcome, engine)| ExoTerm {
                            negative,
                            db: outcome.db,
                            engine,
                        })
                        .collect();
                    (
                        ResolvedStrategy::ExoShap,
                        EngineState::UnionExoShap(compiled),
                    )
                }
                UnionRoute::BruteForce => (ResolvedStrategy::BruteForce, EngineState::UnionBrute),
                UnionRoute::Permutations => (
                    ResolvedStrategy::Permutations,
                    EngineState::UnionPermutations,
                ),
            };
            Ok((Some(resolved), None, state))
        }
        QuerySpec::Aggregate { query, agg } => {
            let complexity = {
                let _span = cqshap_obs::Span::enter(cqshap_obs::phase::PREPARE_CLASSIFY);
                classify_with_exo(query, &exo_relation_names(db))
            };
            let _span = cqshap_obs::Span::enter(cqshap_obs::phase::PREPARE_COMPILE);
            let engines = AggregateEngines::prepare(db, query, agg, options, cancel)?;
            Ok((None, Some(complexity), EngineState::Aggregate(engines)))
        }
    }
}

impl ShapleySession {
    /// Prepares a session for a Boolean CQ¬ or UCQ¬: clones the
    /// database, classifies the query, resolves the strategy once, and
    /// compiles the engine.
    ///
    /// # Errors
    /// Everything strategy resolution and engine compilation can raise
    /// — the same errors the corresponding free functions raise.
    pub fn prepare(
        db: &Database,
        query: AnyQuery<'_>,
        options: &ShapleyOptions,
    ) -> Result<Self, CoreError> {
        let spec = match query {
            AnyQuery::Cq(q) => QuerySpec::Cq(q.clone()),
            AnyQuery::Union(u) => QuerySpec::Union(u.clone()),
        };
        Self::from_spec(db.clone(), spec, *options)
    }

    /// [`ShapleySession::prepare`], except a *degradable* failure — a
    /// tripped budget, an intractability rejection — yields a session
    /// without an exact engine instead of an error. Exact reads
    /// ([`value`](Self::value), [`report`](Self::report)) then fail
    /// fast with the stored reason, while
    /// [`report_tiered`](Self::report_tiered),
    /// [`anytime`](Self::anytime) and [`wsms`](Self::wsms) still serve;
    /// updates keep applying (each retries a full prepare, upgrading
    /// the session to exact the moment one succeeds). Genuine input
    /// errors propagate exactly as in [`prepare`](Self::prepare).
    ///
    /// # Errors
    /// Non-degradable prepare failures (arity clashes, malformed
    /// queries, database errors).
    pub fn prepare_with_fallback(
        db: &Database,
        query: AnyQuery<'_>,
        options: &ShapleyOptions,
    ) -> Result<Self, CoreError> {
        let spec = match query {
            AnyQuery::Cq(q) => QuerySpec::Cq(q.clone()),
            AnyQuery::Union(u) => QuerySpec::Union(u.clone()),
        };
        match Self::from_spec(db.clone(), spec.clone(), *options) {
            Ok(session) => Ok(session),
            Err(e) if tier_degradable(&e) => {
                let complexity = match &spec {
                    QuerySpec::Cq(q) => Some(classify_with_exo(q, &exo_relation_names(db))),
                    _ => None,
                };
                Ok(ShapleySession {
                    db: db.clone(),
                    options: *options,
                    spec,
                    resolved: None,
                    complexity,
                    state: EngineState::ExactUnavailable(e.to_string()),
                    probs: FactProbabilities::uniform(BigRational::from_i64_ratio(1, 2)),
                    prob: ProbState::NotBuilt,
                    stats: SessionStats::default(),
                    cancel: options.cancel_token(),
                    anytime: None,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Prepares a session for an aggregate query: one shared
    /// [`CompiledCount`] engine per (non-pruned) candidate answer.
    ///
    /// # Errors
    /// [`CoreError::Unsupported`] for Boolean (head-less) queries, plus
    /// anything candidate classification raises.
    pub fn prepare_aggregate(
        db: &Database,
        query: &ConjunctiveQuery,
        agg: AggregateFunction,
        options: &ShapleyOptions,
    ) -> Result<Self, CoreError> {
        Self::from_spec(
            db.clone(),
            QuerySpec::Aggregate {
                query: query.clone(),
                agg,
            },
            *options,
        )
    }

    fn from_spec(
        db: Database,
        spec: QuerySpec,
        options: ShapleyOptions,
    ) -> Result<Self, CoreError> {
        let _span = cqshap_obs::Span::enter(cqshap_obs::phase::PREPARE);
        let cancel = options.cancel_token();
        let (resolved, complexity, state) = build_state(&db, &spec, &options, cancel.as_ref())?;
        Ok(ShapleySession {
            db,
            options,
            spec,
            resolved,
            complexity,
            state,
            probs: FactProbabilities::uniform(BigRational::from_i64_ratio(1, 2)),
            prob: ProbState::NotBuilt,
            stats: SessionStats::default(),
            cancel,
            anytime: None,
        })
    }

    /// Restarts the session budget for one public call: every deadline
    /// measures the call it bounds, not the session's age.
    fn rearm(&self) {
        if let Some(token) = &self.cancel {
            token.rearm(self.options.budget.wall, self.options.budget.work);
        }
    }

    /// The brute-force oracle wired to the session's token (the free
    /// functions arm a fresh per-call token instead).
    fn brute_oracle(&self) -> BruteForceCounter {
        let counter = BruteForceCounter::with_limit(self.options.brute_force_limit);
        match &self.cancel {
            Some(token) => counter.with_cancel(token.clone()),
            None => counter,
        }
    }

    /// The session's database (the prepared copy, including any updates
    /// applied through the session).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The options the session was prepared with.
    pub fn options(&self) -> &ShapleyOptions {
        &self.options
    }

    /// The algorithm the strategy resolved to — shared by every value
    /// and report served from this session, so the single-value and
    /// all-facts paths can never route differently. `None` for
    /// aggregate sessions (each candidate shape resolves on its own).
    pub fn strategy(&self) -> Option<ResolvedStrategy> {
        self.resolved
    }

    /// The dichotomy classification of the prepared query under the
    /// database's exogenous relations (Theorems 3.1 / 4.3). `None` for
    /// unions, which the paper's dichotomies do not cover directly.
    pub fn complexity(&self) -> Option<&ExactComplexity> {
        self.complexity.as_ref()
    }

    /// Update counters: how many updates were applied, and how many of
    /// them the engine absorbed incrementally vs. by full recompile.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    fn check_endogenous(&self, f: FactId) -> Result<(), CoreError> {
        if self.db.endo_index(f).is_none() {
            return Err(CoreError::FactNotEndogenous {
                fact: self.db.render_fact(f),
            });
        }
        Ok(())
    }

    fn check_not_poisoned(&self) -> Result<(), CoreError> {
        if let EngineState::Poisoned(reason) = &self.state {
            return Err(CoreError::Unsupported(format!(
                "the session engine could not be rebuilt after an update ({reason}); call \
                 recover() to rebuild from the retained database, or apply a further update that \
                 restores a preparable state"
            )));
        }
        Ok(())
    }

    fn check_exact_available(&self) -> Result<(), CoreError> {
        if let EngineState::ExactUnavailable(reason) = &self.state {
            return Err(CoreError::Unsupported(format!(
                "no exact engine was prepared ({reason}); serve this session through \
                 report_tiered(), anytime(), or wsms()"
            )));
        }
        Ok(())
    }

    /// Is the session poisoned (no usable engine after a failed
    /// rebuild)? [`ShapleySession::recover`] clears the condition.
    pub fn is_poisoned(&self) -> bool {
        matches!(self.state, EngineState::Poisoned(_))
    }

    /// Does the session lack an exact engine (prepared via
    /// [`ShapleySession::prepare_with_fallback`] on an intractable or
    /// over-budget query)? Degraded tiers still serve.
    pub fn is_exact_unavailable(&self) -> bool {
        matches!(self.state, EngineState::ExactUnavailable(_))
    }

    /// Rebuilds the engine from the session's retained database,
    /// clearing a [`Poisoned`](Self::is_poisoned) state. A no-op on
    /// healthy sessions. On failure the session stays poisoned (with
    /// the new failure as the stored reason) and the error propagates —
    /// `recover` can be retried, e.g. after raising the budget via a
    /// fresh prepare.
    ///
    /// # Errors
    /// Anything strategy resolution and engine compilation raise.
    pub fn recover(&mut self) -> Result<(), CoreError> {
        if !self.is_poisoned() {
            return Ok(());
        }
        self.rearm();
        match build_state(&self.db, &self.spec, &self.options, self.cancel.as_ref()) {
            Ok((resolved, complexity, state)) => {
                self.resolved = resolved;
                self.complexity = complexity;
                self.state = state;
                self.prob = ProbState::NotBuilt;
                Ok(())
            }
            Err(e) => {
                self.state = EngineState::Poisoned(e.to_string());
                Err(e)
            }
        }
    }

    /// Test hook: forces the session into the poisoned state so
    /// recovery paths can be exercised without constructing a genuine
    /// mid-maintenance failure.
    #[doc(hidden)]
    pub fn poison_for_tests(&mut self, reason: &str) {
        self.resolved = None;
        self.state = EngineState::Poisoned(reason.to_string());
    }

    /// The exact Shapley value of `f`, served from the prepared engine.
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`, plus anything the
    /// per-fact fallback strategies raise.
    pub fn value(&self, f: FactId) -> Result<BigRational, CoreError> {
        self.check_not_poisoned()?;
        self.check_exact_available()?;
        self.rearm();
        match (&self.spec, &self.state) {
            (_, EngineState::CqCompiled(engine)) => engine.value(&self.db, f),
            (_, EngineState::CqRewritten { db, engine }) => {
                self.check_endogenous(f)?;
                engine.value(db, f)
            }
            (_, EngineState::CqAlwaysFalse) => {
                self.check_endogenous(f)?;
                Ok(BigRational::zero())
            }
            (QuerySpec::Cq(q), EngineState::CqPerFact) => match self.resolved {
                Some(ResolvedStrategy::Permutations) => shapley_by_permutations_cancel(
                    &self.db,
                    AnyQuery::Cq(q),
                    f,
                    self.options.permutation_limit,
                    self.cancel.as_ref(),
                ),
                _ => shapley_via_counts(&self.db, AnyQuery::Cq(q), f, &self.brute_oracle()),
            },
            (_, EngineState::UnionCompiled(engine)) => engine.value(&self.db, f),
            (_, EngineState::UnionExoShap(terms)) => {
                self.check_endogenous(f)?;
                Ok(exo_union_normalize(
                    terms,
                    exo_union_numerator(terms, f, self.cancel.as_ref())?,
                ))
            }
            (QuerySpec::Union(u), EngineState::UnionBrute) => {
                union_brute_value(&self.db, u, f, &self.options)
            }
            (QuerySpec::Union(u), EngineState::UnionPermutations) => {
                shapley_by_permutations_cancel(
                    &self.db,
                    AnyQuery::Union(u),
                    f,
                    self.options.permutation_limit,
                    self.cancel.as_ref(),
                )
            }
            (_, EngineState::Aggregate(engines)) => {
                self.check_endogenous(f)?;
                Ok(engines
                    .values(&self.db, &[f], &self.options, self.cancel.as_ref())?
                    .pop()
                    // cqshap-lint: allow(no-panic) -- the spec requested exactly one fact, so exactly one row exists
                    .expect("one fact requested"))
            }
            // cqshap-lint: allow(no-panic) -- spec and state are built together; mismatched variants cannot arise
            _ => unreachable!("spec and state are built together"),
        }
    }

    /// The exact Shapley values of a fact slice, batched through the
    /// prepared engine (root-group-chunked thread fan-out on the
    /// compiled paths).
    ///
    /// # Errors
    /// As [`ShapleySession::value`], for any fact of the slice.
    pub fn values(&self, facts: &[FactId]) -> Result<Vec<BigRational>, CoreError> {
        self.check_not_poisoned()?;
        self.check_exact_available()?;
        self.rearm();
        self.values_armed(facts)
    }

    /// [`ShapleySession::values`] without re-arming the budget, for
    /// internal callers that already armed it for a larger phase.
    fn values_armed(&self, facts: &[FactId]) -> Result<Vec<BigRational>, CoreError> {
        match (&self.spec, &self.state) {
            (_, EngineState::CqCompiled(engine)) => {
                engine_values(&self.db, engine, facts, self.options.threads)
            }
            (_, EngineState::CqRewritten { db, engine }) => {
                for &f in facts {
                    self.check_endogenous(f)?;
                }
                engine_values(db, engine, facts, self.options.threads)
            }
            (_, EngineState::CqAlwaysFalse) => {
                for &f in facts {
                    self.check_endogenous(f)?;
                }
                Ok(vec![BigRational::zero(); facts.len()])
            }
            (QuerySpec::Cq(q), EngineState::CqPerFact) => {
                // cqshap-lint: allow(no-panic) -- per-fact state records its resolution when built
                let resolved = self.resolved.expect("per-fact state has a resolution");
                per_fact_values(&self.db, q, facts, resolved, &self.options, false)
            }
            (_, EngineState::UnionCompiled(engine)) => {
                engine_values(&self.db, engine, facts, self.options.threads)
            }
            (_, EngineState::UnionExoShap(terms)) => {
                for &f in facts {
                    self.check_endogenous(f)?;
                }
                Ok(exo_union_values(terms, facts, self.cancel.as_ref())?.0)
            }
            (QuerySpec::Union(u), EngineState::UnionBrute) => {
                union_brute_values(&self.db, u, facts, &self.options)
            }
            (QuerySpec::Union(u), EngineState::UnionPermutations) => {
                let cancel = &self.cancel;
                crate::parallel::par_map_with(self.options.threads, facts.len(), |i| {
                    shapley_by_permutations_cancel(
                        &self.db,
                        AnyQuery::Union(u),
                        // cqshap-lint: allow(no-panic-index) -- i ranges over facts.len() in the enclosing loop
                        facts[i],
                        self.options.permutation_limit,
                        cancel.as_ref(),
                    )
                })
                .into_iter()
                .collect()
            }
            (_, EngineState::Aggregate(engines)) => {
                for &f in facts {
                    self.check_endogenous(f)?;
                }
                engines.values(&self.db, facts, &self.options, self.cancel.as_ref())
            }
            // cqshap-lint: allow(no-panic) -- spec and state are built together; mismatched variants cannot arise
            _ => unreachable!("spec and state are built together"),
        }
    }

    /// The all-facts report: every endogenous fact's exact value plus
    /// the efficiency check (and, for aggregates, the candidate-pruning
    /// stats).
    ///
    /// # Errors
    /// As [`ShapleySession::values`].
    pub fn report(&self) -> Result<ShapleyReport, CoreError> {
        let _span = cqshap_obs::Span::enter(cqshap_obs::phase::REPORT);
        self.check_not_poisoned()?;
        self.check_exact_available()?;
        self.rearm();
        if matches!(self.state, EngineState::CqAlwaysFalse) {
            return Ok(zero_report(&self.db));
        }
        let facts: Vec<FactId> = self.db.endo_facts().to_vec();
        let expected = match (&self.spec, &self.state) {
            (QuerySpec::Cq(_), EngineState::CqRewritten { db, engine }) => {
                efficiency_target(db, engine.query())
            }
            (QuerySpec::Cq(q), _) => efficiency_target(&self.db, q),
            (QuerySpec::Union(u), _) => union_efficiency_target(&self.db, u),
            (QuerySpec::Aggregate { query, agg }, _) => {
                aggregate_efficiency_target(&self.db, query, agg)?
            }
        };
        // Engine paths accumulate the value total over the common
        // denominator `m!` (one normalization) — summing the reduced
        // per-fact rationals instead costs a gcd per entry.
        let report = match &self.state {
            EngineState::CqCompiled(engine) => {
                let (values, total) =
                    engine_report_values(&self.db, engine, &facts, self.options.threads)?;
                assemble_report_with_total(&self.db, values, total, expected)
            }
            EngineState::CqRewritten { db, engine } => {
                let (values, total) =
                    engine_report_values(db, engine, &facts, self.options.threads)?;
                assemble_report_with_total(&self.db, values, total, expected)
            }
            EngineState::UnionCompiled(engine) => {
                let (values, total) =
                    engine_report_values(&self.db, engine, &facts, self.options.threads)?;
                assemble_report_with_total(&self.db, values, total, expected)
            }
            EngineState::UnionExoShap(terms) => {
                let (values, total) = exo_union_values(terms, &facts, self.cancel.as_ref())?;
                assemble_report_with_total(&self.db, values, total, expected)
            }
            _ => assemble_report(&self.db, self.values_armed(&facts)?, expected),
        };
        Ok(match &self.state {
            EngineState::Aggregate(engines) => report.with_stats(engines.stats),
            _ => report,
        })
    }

    /// The aggregate report — [`ShapleySession::report`] restricted to
    /// aggregate sessions.
    ///
    /// # Errors
    /// [`CoreError::Unsupported`] on Boolean sessions.
    pub fn aggregate_report(&self) -> Result<ShapleyReport, CoreError> {
        match &self.spec {
            QuerySpec::Aggregate { .. } => self.report(),
            _ => Err(CoreError::Unsupported(
                "aggregate_report needs a session prepared with prepare_aggregate".into(),
            )),
        }
    }

    /// Monte-Carlo additive approximation of `f`'s value by permutation
    /// sampling over the session's database (Section 5.1).
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`;
    /// [`CoreError::Unsupported`] for aggregate sessions.
    pub fn sampled(&self, f: FactId, params: &SampleParams) -> Result<ApproxShapley, CoreError> {
        match &self.spec {
            QuerySpec::Cq(q) => shapley_additive_approx(&self.db, AnyQuery::Cq(q), f, params),
            QuerySpec::Union(u) => shapley_additive_approx(&self.db, AnyQuery::Union(u), f, params),
            QuerySpec::Aggregate { .. } => Err(CoreError::Unsupported(
                "permutation sampling estimates Boolean queries; aggregate sessions serve exact \
                 values"
                    .into(),
            )),
        }
    }

    /// The anytime estimator: stratified permutation sampling with CLT
    /// confidence intervals for *every* endogenous fact, refined
    /// widest-interval-first until each reaches `±ε` at confidence
    /// `1 − δ` — or until the session budget trips, in which case the
    /// partial (still valid, just wider) intervals are returned with
    /// [`AnytimeReport::deadline_hit`] set rather than an error.
    ///
    /// The sampler state is retained: a second call resumes the same
    /// strata and tightens the same estimates instead of starting over.
    /// Database updates applied through the session invalidate the
    /// state.
    ///
    /// # Errors
    /// [`CoreError::Unsupported`] for aggregate sessions or invalid
    /// `ε` / `δ`.
    pub fn anytime(&mut self, params: &AnytimeParams) -> Result<AnytimeReport, CoreError> {
        if matches!(self.spec, QuerySpec::Aggregate { .. }) {
            return Err(CoreError::Unsupported(
                "the anytime sampler estimates Boolean queries; aggregate sessions serve exact \
                 values"
                    .into(),
            ));
        }
        self.rearm();
        let query = match &self.spec {
            QuerySpec::Cq(q) => AnyQuery::Cq(q),
            QuerySpec::Union(u) => AnyQuery::Union(u),
            // cqshap-lint: allow(no-panic) -- aggregate specs were rejected by the guard above
            QuerySpec::Aggregate { .. } => unreachable!("rejected above"),
        };
        shapley_anytime(
            &self.db,
            query,
            params,
            self.cancel.as_ref(),
            &mut self.anytime,
        )
    }

    /// The weighted-sums-of-minimal-supports responsibility measure of
    /// every endogenous fact — the tractable floor of the degradation
    /// ladder (see [`crate::wsms`]). Not a Shapley estimate: a
    /// different attribution whose *ordering* information survives when
    /// no Shapley tier fits the budget.
    ///
    /// # Errors
    /// [`CoreError::Unsupported`] for aggregate sessions;
    /// [`CoreError::DeadlineExceeded`] if even support enumeration
    /// trips the budget.
    pub fn wsms(&self, weight: WsmsWeight) -> Result<WsmsReport, CoreError> {
        self.rearm();
        match &self.spec {
            QuerySpec::Cq(q) => {
                wsms_report(&self.db, AnyQuery::Cq(q), weight, self.cancel.as_ref())
            }
            QuerySpec::Union(u) => {
                wsms_report(&self.db, AnyQuery::Union(u), weight, self.cancel.as_ref())
            }
            QuerySpec::Aggregate { .. } => Err(CoreError::Unsupported(
                "WSMS scores Boolean queries; aggregate sessions serve exact values".into(),
            )),
        }
    }

    /// The degradation ladder: the exact report if it finishes within
    /// the budget, else the anytime sampler's interval estimates, else
    /// the tractable WSMS measure — each tier consulted only if
    /// `policy` allows it, each re-armed with the full session budget.
    /// Genuine input errors (an unknown fact, a malformed query)
    /// propagate instead of degrading; only budget and tractability
    /// failures descend the ladder.
    ///
    /// # Errors
    /// The exact tier's error when the policy allows no degradation,
    /// plus anything the allowed tiers raise themselves.
    pub fn report_tiered(&mut self, policy: &TierPolicy) -> Result<TieredAnswer, CoreError> {
        let _span = cqshap_obs::Span::enter(cqshap_obs::phase::REPORT_TIERED);
        let exact_unavailable = matches!(self.state, EngineState::ExactUnavailable(_));
        let exact_err = match self.report() {
            Ok(report) => {
                cqshap_obs::event(cqshap_obs::phase::EV_TIER_ANSWER, "exact");
                return Ok(TieredAnswer::Exact(report));
            }
            Err(e) => e,
        };
        if (!exact_unavailable && !tier_degradable(&exact_err))
            || !(policy.allow_sampled || policy.allow_wsms)
        {
            return Err(exact_err);
        }
        tier_demote_event("exact", &exact_err);
        if policy.allow_sampled {
            let params = AnytimeParams {
                epsilon: policy.epsilon,
                delta: policy.delta,
                seed: policy.seed,
                ..AnytimeParams::default()
            };
            match self.anytime(&params) {
                // A converged report answers the request; a partial one
                // only if no further tier may take over.
                Ok(report) if report.converged || !policy.allow_wsms => {
                    cqshap_obs::event(cqshap_obs::phase::EV_TIER_ANSWER, "sampled");
                    return Ok(TieredAnswer::Sampled(report));
                }
                Ok(_) => {
                    cqshap_obs::event(
                        cqshap_obs::phase::EV_TIER_DEMOTE,
                        "sampled: intervals did not converge within budget",
                    );
                }
                Err(e) if tier_degradable(&e) && policy.allow_wsms => {
                    tier_demote_event("sampled", &e);
                }
                Err(e) => return Err(e),
            }
        }
        let wsms = self.wsms(policy.wsms_weight)?;
        cqshap_obs::event(cqshap_obs::phase::EV_TIER_ANSWER, "wsms");
        Ok(TieredAnswer::Wsms(wsms))
    }

    /// The per-fact probabilities probabilistic reads evaluate at.
    /// Endogenous facts without an override use the default probability
    /// (`1/2` until [`ShapleySession::set_default_probability`] changes
    /// it); exogenous facts are always present.
    pub fn probabilities(&self) -> &FactProbabilities {
        &self.probs
    }

    /// Sets `f`'s presence probability for probabilistic reads and
    /// invalidates the cached probability engine (the Shapley state is
    /// untouched — probabilities never affect Shapley values).
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`;
    /// [`CoreError::Unsupported`] outside `[0, 1]`.
    pub fn set_probability(&mut self, f: FactId, p: BigRational) -> Result<(), CoreError> {
        self.check_endogenous(f)?;
        check_probability(&p)?;
        self.probs.set(f, p);
        self.prob = ProbState::NotBuilt;
        Ok(())
    }

    /// Sets the probability used by endogenous facts without an
    /// override, invalidating the cached probability engine.
    ///
    /// # Errors
    /// [`CoreError::Unsupported`] outside `[0, 1]`.
    pub fn set_default_probability(&mut self, p: BigRational) -> Result<(), CoreError> {
        check_probability(&p)?;
        self.probs.set_default(p);
        self.prob = ProbState::NotBuilt;
        Ok(())
    }

    /// `Pr[q]` when the endogenous facts are independently present with
    /// the session's probabilities (a tuple-independent probabilistic
    /// database over `Dn`, with `Dx` certain).
    ///
    /// Served from the same compiled resolution/scope/component
    /// structures as the Shapley paths, instantiated at the probability
    /// domain and cached across calls; updates applied through the
    /// session maintain the cache incrementally where the engine
    /// supports it. Queries outside the compiled fragment route through
    /// the `ExoShap` rewriting and, failing that, exact world
    /// enumeration within [`ShapleyOptions::brute_force_limit`].
    ///
    /// # Errors
    /// [`CoreError::Unsupported`] for aggregate sessions;
    /// [`CoreError::TooManyEndogenousFacts`] when only enumeration
    /// applies and `|Dn|` exceeds the limit.
    pub fn probability(&mut self) -> Result<BigRational, CoreError> {
        self.rearm();
        self.ensure_prob_state()?;
        match &self.prob {
            ProbState::Cq(engine) => Ok(engine.probability().clone()),
            ProbState::Rewritten { engine, .. } => Ok(engine.probability().clone()),
            ProbState::AlwaysFalse => Ok(BigRational::zero()),
            ProbState::Union(terms) => {
                let mut acc = BigRational::zero();
                for (negative, engine) in terms {
                    if *negative {
                        acc -= engine.probability();
                    } else {
                        acc += engine.probability();
                    }
                }
                Ok(acc)
            }
            ProbState::Brute => probability_by_enumeration_cancel(
                &self.db,
                self.spec_query(),
                &self.probs,
                None,
                self.options.brute_force_limit,
                self.cancel.as_ref(),
            ),
            ProbState::Unsupported(reason) => Err(CoreError::Unsupported(reason.clone())),
            // cqshap-lint: allow(no-panic) -- the ensure call above installed the built state
            ProbState::NotBuilt => unreachable!("ensured above"),
        }
    }

    /// The expected marginal contribution of `f` under the session's
    /// probabilities: `Pr[q | f present] − Pr[q | f absent]`. This is
    /// the probabilistic analogue of the Shapley reduction's masked
    /// difference — and the Shapley value itself when every coalition
    /// size is weighted by the uniform permutation measure instead.
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`, plus everything
    /// [`ShapleySession::probability`] raises.
    pub fn expected_shapley(&mut self, f: FactId) -> Result<BigRational, CoreError> {
        self.check_endogenous(f)?;
        self.rearm();
        self.ensure_prob_state()?;
        match &self.prob {
            ProbState::Cq(engine) => engine.expected_marginal(&self.db, f),
            ProbState::Rewritten { db, engine } => engine.expected_marginal(db, f),
            ProbState::AlwaysFalse => Ok(BigRational::zero()),
            ProbState::Union(terms) => {
                // Conditionals obey the same inclusion–exclusion as the
                // totals, and the difference is linear in them.
                let mut acc = BigRational::zero();
                for (negative, engine) in terms {
                    let marginal = engine.expected_marginal(&self.db, f)?;
                    if *negative {
                        acc -= &marginal;
                    } else {
                        acc += &marginal;
                    }
                }
                Ok(acc)
            }
            ProbState::Brute => {
                let present = probability_by_enumeration_cancel(
                    &self.db,
                    self.spec_query(),
                    &self.probs,
                    Some((f, true)),
                    self.options.brute_force_limit,
                    self.cancel.as_ref(),
                )?;
                let absent = probability_by_enumeration_cancel(
                    &self.db,
                    self.spec_query(),
                    &self.probs,
                    Some((f, false)),
                    self.options.brute_force_limit,
                    self.cancel.as_ref(),
                )?;
                Ok(present - absent)
            }
            ProbState::Unsupported(reason) => Err(CoreError::Unsupported(reason.clone())),
            // cqshap-lint: allow(no-panic) -- the ensure call above installed the built state
            ProbState::NotBuilt => unreachable!("ensured above"),
        }
    }

    /// The session's query as an [`AnyQuery`] (Boolean specs only).
    fn spec_query(&self) -> AnyQuery<'_> {
        match &self.spec {
            QuerySpec::Cq(q) => AnyQuery::Cq(q),
            QuerySpec::Union(u) => AnyQuery::Union(u),
            QuerySpec::Aggregate { .. } => {
                // cqshap-lint: allow(no-panic) -- aggregate specs route to ProbState::Unsupported at build time
                unreachable!("aggregate specs route to ProbState::Unsupported")
            }
        }
    }

    /// Builds the probability state if no usable one is cached.
    fn ensure_prob_state(&mut self) -> Result<(), CoreError> {
        if matches!(self.prob, ProbState::NotBuilt) {
            self.prob = self.build_prob_state()?;
        }
        Ok(())
    }

    /// The probabilistic routing ladder: the compiled engine on the
    /// session database, the `ExoShap` rewriting, then exact world
    /// enumeration. Structural ineligibility falls through; genuine
    /// evaluation errors propagate.
    fn build_prob_state(&self) -> Result<ProbState, CoreError> {
        let threads = self.options.threads;
        let compile_prob = |db: &Database, q: &ConjunctiveQuery| match &self.cancel {
            Some(token) => CompiledProbability::compile_with_cancel(
                db,
                q,
                self.probs.clone(),
                threads,
                token.clone(),
            ),
            None => CompiledProbability::compile_with_threads(db, q, self.probs.clone(), threads),
        };
        match &self.spec {
            QuerySpec::Cq(q) => {
                match compile_prob(&self.db, q) {
                    Ok(engine) => return Ok(ProbState::Cq(engine)),
                    Err(CoreError::NotHierarchical { .. })
                    | Err(CoreError::NotSelfJoinFree { .. }) => {}
                    Err(e) => return Err(e),
                }
                if let Ok(outcome) = exoshap::rewrite(&self.db, q, self.options.tuple_budget) {
                    if outcome.always_false {
                        return Ok(ProbState::AlwaysFalse);
                    }
                    if let Ok(engine) = compile_prob(&outcome.db, &outcome.query) {
                        return Ok(ProbState::Rewritten {
                            db: Box::new(outcome.db),
                            engine,
                        });
                    }
                }
                Ok(ProbState::Brute)
            }
            QuerySpec::Union(u) => {
                let Ok(conjunctions) = CompiledUnionCount::subset_conjunctions(u) else {
                    return Ok(ProbState::Brute);
                };
                let mut terms = Vec::with_capacity(conjunctions.len());
                for (negative, label, q) in conjunctions {
                    if CompiledUnionCount::check_tractable(&label, &q).is_err() {
                        return Ok(ProbState::Brute);
                    }
                    match compile_prob(&self.db, &q) {
                        Ok(engine) => terms.push((negative, engine)),
                        Err(CoreError::NotHierarchical { .. })
                        | Err(CoreError::NotSelfJoinFree { .. }) => return Ok(ProbState::Brute),
                        Err(e) => return Err(e),
                    }
                }
                Ok(ProbState::Union(terms))
            }
            QuerySpec::Aggregate { .. } => Ok(ProbState::Unsupported(
                "probabilistic evaluation covers Boolean queries; aggregate sessions serve \
                 exact Shapley values only"
                    .into(),
            )),
        }
    }

    /// Inserts a fact into the session's database and maintains the
    /// engine. Returns the new fact id.
    ///
    /// When engine maintenance (or the fallback recompile) fails, the
    /// database mutation is rolled back and the session keeps serving
    /// the pre-update state — the error reports a *rejected* update,
    /// never a session that diverged from its engine.
    ///
    /// # Errors
    /// Database errors (arity mismatch, duplicates, exogenous-relation
    /// violations), plus anything engine maintenance raises.
    pub fn insert_fact(
        &mut self,
        relation: &str,
        constants: &[&str],
        provenance: Provenance,
    ) -> Result<FactId, CoreError> {
        self.rearm();
        let snapshot = self.db.clone();
        let f = self.db.insert(relation, constants, provenance)?;
        self.after_update(EngineUpdate::Inserted(f), snapshot)?;
        Ok(f)
    }

    /// Retracts a fact in place (ids of all other facts stay stable)
    /// and maintains the engine. Failed maintenance rolls the retraction
    /// back (see [`ShapleySession::insert_fact`]).
    ///
    /// # Errors
    /// [`DbError::UnknownFact`] on dangling ids, plus anything engine
    /// maintenance raises.
    pub fn retract_fact(&mut self, f: FactId) -> Result<(), CoreError> {
        self.rearm();
        let snapshot = self.db.clone();
        self.db.retract_fact(f)?;
        self.after_update(EngineUpdate::Retracted(f), snapshot)
    }

    /// Flips a fact between endogenous and exogenous and maintains the
    /// engine. A no-op when the fact already has the requested
    /// provenance; failed maintenance rolls the flip back (see
    /// [`ShapleySession::insert_fact`]).
    ///
    /// # Errors
    /// [`DbError::UnknownFact`] / [`DbError::ExogenousViolation`], plus
    /// anything engine maintenance raises.
    pub fn set_exogenous(&mut self, f: FactId, exogenous: bool) -> Result<(), CoreError> {
        if f.index() >= self.db.fact_count() || self.db.is_retracted(f) {
            return Err(CoreError::Db(DbError::UnknownFact { id: f.0 }));
        }
        let target = if exogenous {
            Provenance::Exogenous
        } else {
            Provenance::Endogenous
        };
        if self.db.fact(f).provenance == target {
            return Ok(());
        }
        self.rearm();
        let snapshot = self.db.clone();
        self.db.set_fact_provenance(f, target)?;
        self.after_update(EngineUpdate::ProvenanceFlipped(f), snapshot)
    }

    /// Routes one applied database change into the engine: incremental
    /// maintenance where the compiled state supports it, a full
    /// re-prepare otherwise. `snapshot` is the pre-update database; any
    /// failure restores it and rebuilds, so the session's database and
    /// engine never diverge.
    fn after_update(&mut self, change: EngineUpdate, snapshot: Database) -> Result<(), CoreError> {
        // Maintain the cached probability engine first; states it cannot
        // absorb degrade to lazily rebuilt (never to stale answers).
        self.prob = match std::mem::replace(&mut self.prob, ProbState::NotBuilt) {
            ProbState::Cq(mut engine) => match engine.update(&self.db, change) {
                Ok(true) => ProbState::Cq(engine),
                _ => ProbState::NotBuilt,
            },
            ProbState::Union(terms) => {
                let mut kept = Vec::with_capacity(terms.len());
                let mut all_maintained = true;
                for (negative, mut engine) in terms {
                    match engine.update(&self.db, change) {
                        Ok(true) => kept.push((negative, engine)),
                        _ => {
                            all_maintained = false;
                            break;
                        }
                    }
                }
                if all_maintained {
                    ProbState::Union(kept)
                } else {
                    ProbState::NotBuilt
                }
            }
            // Rewritten, always-false, and brute states depend on the
            // database globally: rebuild on demand.
            _ => ProbState::NotBuilt,
        };
        let maintained = match &mut self.state {
            EngineState::CqCompiled(engine) => engine.update(&self.db, change),
            EngineState::UnionCompiled(engine) => engine.update(&self.db, change),
            // Rewritten, brute-force, and aggregate states depend on the
            // database globally (complement materialization, candidate
            // enumeration, strategy limits): re-prepare.
            _ => Ok(false),
        };
        let maintained = match maintained {
            Ok(m) => m,
            Err(e) => {
                // The engine may be half-patched (the recount errored
                // mid-swap): roll the database back and rebuild from the
                // restored copy instead of serving from it again.
                return Err(self.roll_back(snapshot, e));
            }
        };
        if maintained {
            self.stats.updates += 1;
            self.stats.incremental_updates += 1;
            self.anytime = None;
            return Ok(());
        }
        match build_state(&self.db, &self.spec, &self.options, self.cancel.as_ref()) {
            Ok((resolved, complexity, state)) => {
                self.resolved = resolved;
                self.complexity = complexity;
                self.state = state;
                self.stats.updates += 1;
                self.stats.full_recompiles += 1;
                self.anytime = None;
                Ok(())
            }
            // A session already serving degraded tiers keeps the update
            // and stays degraded when the rebuild fails for the same
            // kind of reason — a fallback session must absorb updates to
            // the very instances whose exact preparation fails.
            Err(e)
                if tier_degradable(&e)
                    && matches!(self.state, EngineState::ExactUnavailable(_)) =>
            {
                self.state = EngineState::ExactUnavailable(e.to_string());
                self.stats.updates += 1;
                self.anytime = None;
                Ok(())
            }
            // The update pushed the input outside every strategy's
            // reach (or past the budget): reject it wholesale.
            Err(e) => Err(self.roll_back(snapshot, e)),
        }
    }

    /// Restores the pre-update database and rebuilds the engine from
    /// it, so a failed update is *rejected* rather than poisoning the
    /// session. The restored database was preparable a moment ago, so
    /// the rebuild virtually always succeeds; if it does not (e.g. the
    /// budget tripped again), the session is poisoned — with the
    /// database still restored — until [`ShapleySession::recover`].
    /// Returns the error to surface for the rejected update.
    fn roll_back(&mut self, snapshot: Database, cause: CoreError) -> CoreError {
        self.db = snapshot;
        self.prob = ProbState::NotBuilt;
        self.stats.rolled_back += 1;
        // The failure may have tripped the (sticky) session token; the
        // restoration rebuild deserves a fresh budget of its own.
        self.rearm();
        match build_state(&self.db, &self.spec, &self.options, self.cancel.as_ref()) {
            Ok((resolved, complexity, state)) => {
                self.resolved = resolved;
                self.complexity = complexity;
                self.state = state;
            }
            // A fallback session never had an exact engine to lose: a
            // degradable rebuild failure leaves it serving its degraded
            // tiers from the restored database.
            Err(e)
                if tier_degradable(&e)
                    && matches!(self.state, EngineState::ExactUnavailable(_)) =>
            {
                self.resolved = None;
                self.state = EngineState::ExactUnavailable(e.to_string());
            }
            Err(e) => {
                self.resolved = None;
                self.state = EngineState::Poisoned(e.to_string());
            }
        }
        cause
    }
}

/// Probabilities live in `[0, 1]`; sessions reject instead of panicking
/// like [`FactProbabilities::set`] does.
fn check_probability(p: &BigRational) -> Result<(), CoreError> {
    if p.is_negative() || p > &BigRational::one() {
        return Err(CoreError::Unsupported(format!(
            "probability {p} is outside [0, 1]"
        )));
    }
    Ok(())
}

/// The signed numerator sum of the `ExoShap` union terms for one fact
/// (every rewritten database keeps the original `Dn`, so all terms
/// share the denominator `m!`).
fn exo_union_numerator(
    terms: &[ExoTerm],
    f: FactId,
    cancel: Option<&CancelToken>,
) -> Result<BigInt, CoreError> {
    let mut acc = BigInt::zero();
    for t in terms {
        if let Some(token) = cancel {
            crate::budget::check(token, cqshap_obs::phase::UNION_TERMS)?;
        }
        let n = t.engine.shapley_numerator(&t.db, f)?;
        if t.negative {
            acc -= &n;
        } else {
            acc += &n;
        }
    }
    Ok(acc)
}

fn exo_union_normalize(terms: &[ExoTerm], num: BigInt) -> BigRational {
    match terms.first() {
        Some(t) => t.engine.normalize_numerator(num),
        None => BigRational::zero(),
    }
}

/// Per-fact values and the exact total for the `ExoShap` union state,
/// all accumulated in the shared numerator domain. A tripped budget
/// reports how many facts completed.
fn exo_union_values(
    terms: &[ExoTerm],
    facts: &[FactId],
    cancel: Option<&CancelToken>,
) -> Result<(Vec<BigRational>, BigRational), CoreError> {
    let mut total = BigInt::zero();
    let mut values = Vec::with_capacity(facts.len());
    for &f in facts {
        if let Some(token) = cancel {
            crate::budget::check_partial(token, cqshap_obs::phase::UNION_TERMS, Some(values.len()))
                .map_err(|e| {
                    e.with_partial_answers(values.iter().cloned().enumerate().collect())
                })?;
        }
        // The kernels inside the numerator poll the same token — a trip
        // mid-fact must also carry the facts already finished.
        let num = exo_union_numerator(terms, f, cancel)
            .map_err(|e| e.with_partial_answers(values.iter().cloned().enumerate().collect()))?;
        total += &num;
        values.push(exo_union_normalize(terms, num));
    }
    Ok((values, exo_union_normalize(terms, total)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::probability_by_enumeration;
    use crate::shapley::Strategy;
    use cqshap_query::{parse_cq, parse_ucq};

    fn university() -> Database {
        Database::parse(
            "exo Stud(Adam)\nexo Stud(Ben)\nexo Stud(Caroline)\nexo Stud(David)\n\
             endo TA(Adam)\nendo TA(Ben)\nendo TA(David)\n\
             exo Course(OS, EE)\nexo Course(IC, EE)\nexo Course(DB, CS)\nexo Course(AI, CS)\n\
             endo Reg(Adam, OS)\nendo Reg(Adam, AI)\nendo Reg(Ben, OS)\n\
             endo Reg(Caroline, DB)\nendo Reg(Caroline, IC)\n\
             exo Adv(Michael, Adam)\nexo Adv(Michael, Ben)\nexo Adv(Naomi, Caroline)\n\
             exo Adv(Michael, David)\n",
        )
        .unwrap()
    }

    #[test]
    fn prepared_session_serves_values_and_reports() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let session =
            ShapleySession::prepare(&db, AnyQuery::Cq(&q1), &ShapleyOptions::auto()).unwrap();
        assert_eq!(session.strategy(), Some(ResolvedStrategy::Hierarchical));
        assert!(matches!(
            session.complexity(),
            Some(ExactComplexity::TractableHierarchical)
        ));
        let report = session.report().unwrap();
        assert!(report.efficiency_holds());
        let adam = db.find_fact("TA", &["Adam"]).unwrap();
        assert_eq!(session.value(adam).unwrap().to_string(), "-3/28");
        assert_eq!(
            report.entry(adam).unwrap().value,
            session.value(adam).unwrap()
        );
        // values() agrees with per-fact value() on an arbitrary slice.
        let slice = [adam, db.find_fact("Reg", &["Ben", "OS"]).unwrap()];
        let batch = session.values(&slice).unwrap();
        assert_eq!(batch[0], session.value(slice[0]).unwrap());
        assert_eq!(batch[1], session.value(slice[1]).unwrap());
    }

    #[test]
    fn tripped_union_budget_surfaces_completed_answers() {
        // A work-unit budget trips deterministically; some cap lands
        // mid-batch, and the DeadlineExceeded it raises must carry the
        // facts that *did* finish — exact answers, not just a count.
        let db = Database::parse(
            "exo Stud(a)\nexo Stud(b)\n\
             endo TA(a)\nendo Reg(a, c1)\nendo Reg(b, c2)\n\
             endo T(t0)\n",
        )
        .unwrap();
        let u = parse_ucq("q1() :- Stud(x), !TA(x), Reg(x, y)\nq2() :- T(z)\n").unwrap();
        let opts = ShapleyOptions::with_strategy(Strategy::ExoShap);
        let full = ShapleySession::prepare(&db, AnyQuery::Union(&u), &opts).unwrap();
        let exact = full.report().unwrap();
        let facts: Vec<FactId> = db.endo_facts().to_vec();
        let mut salvaged = false;
        for cap in 1..10_000u64 {
            let capped = ShapleyOptions::with_strategy(Strategy::ExoShap)
                .budget(crate::Budget::work_units(cap));
            let Ok(session) = ShapleySession::prepare(&db, AnyQuery::Union(&u), &capped) else {
                continue; // the cap tripped during compilation
            };
            match session.values(&facts) {
                Ok(values) => {
                    // Budget large enough — and the capped values agree
                    // with the unlimited session's.
                    for (i, v) in values.iter().enumerate() {
                        assert_eq!(v, &exact.entry(facts[i]).unwrap().value);
                    }
                    break;
                }
                Err(CoreError::DeadlineExceeded {
                    partial: Some(p), ..
                }) => {
                    assert_eq!(p.answers.len(), p.completed);
                    for (i, v) in &p.answers {
                        assert_eq!(v, &exact.entry(facts[*i]).unwrap().value);
                    }
                    if !p.answers.is_empty() {
                        salvaged = true;
                    }
                }
                Err(CoreError::DeadlineExceeded { partial: None, .. }) => {}
                Err(other) => panic!("unexpected error under cap {cap}: {other:?}"),
            }
        }
        assert!(salvaged, "no work cap tripped mid-batch with answers");
    }

    #[test]
    fn tripped_compiled_budget_surfaces_completed_answers() {
        // Same contract on the batched compiled-engine lanes: whatever
        // lanes finished before the trip rides along on the error.
        let db = university();
        let q = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let opts = ShapleyOptions::with_strategy(Strategy::Hierarchical);
        let full = ShapleySession::prepare(&db, AnyQuery::Cq(&q), &opts).unwrap();
        let exact = full.report().unwrap();
        let facts: Vec<FactId> = db.endo_facts().to_vec();
        let mut salvaged = false;
        for cap in 1..10_000u64 {
            let capped = ShapleyOptions::with_strategy(Strategy::Hierarchical)
                .budget(crate::Budget::work_units(cap));
            let Ok(session) = ShapleySession::prepare(&db, AnyQuery::Cq(&q), &capped) else {
                continue;
            };
            match session.values(&facts) {
                Ok(_) => break,
                Err(CoreError::DeadlineExceeded {
                    partial: Some(p), ..
                }) => {
                    assert_eq!(p.answers.len(), p.completed);
                    for (i, v) in &p.answers {
                        assert_eq!(v, &exact.entry(facts[*i]).unwrap().value);
                    }
                    if !p.answers.is_empty() {
                        salvaged = true;
                    }
                }
                Err(CoreError::DeadlineExceeded { partial: None, .. }) => {}
                Err(other) => panic!("unexpected error under cap {cap}: {other:?}"),
            }
        }
        assert!(salvaged, "no work cap tripped mid-batch with answers");
    }

    #[test]
    fn session_value_equals_report_for_every_strategy_and_fact() {
        // The strategy is resolved once per session, so the single-value
        // and report paths can never diverge (the old free functions
        // could route differently under Auto).
        let db = Database::parse(
            "exo Stud(a)\nexo Stud(b)\n\
             endo TA(a)\nendo Reg(a, c1)\nendo Reg(b, c2)\n\
             endo T(t0)\n",
        )
        .unwrap();
        let u = parse_ucq("q1() :- Stud(x), !TA(x), Reg(x, y)\nq2() :- T(z)\n").unwrap();
        for strategy in [
            Strategy::Auto,
            Strategy::Hierarchical,
            Strategy::ExoShap,
            Strategy::BruteForceSubsets,
            Strategy::BruteForcePermutations,
        ] {
            let opts = ShapleyOptions::with_strategy(strategy);
            let session = match ShapleySession::prepare(&db, AnyQuery::Union(&u), &opts) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let report = session.report().unwrap();
            assert!(report.efficiency_holds(), "{strategy:?}");
            for &f in db.endo_facts() {
                assert_eq!(
                    session.value(f).unwrap(),
                    report.entry(f).unwrap().value,
                    "{strategy:?} {}",
                    db.render_fact(f)
                );
            }
        }
    }

    #[test]
    fn session_updates_match_fresh_sessions() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let mut session =
            ShapleySession::prepare(&db, AnyQuery::Cq(&q1), &ShapleyOptions::auto()).unwrap();
        let f = session
            .insert_fact("Reg", &["Ben", "AI"], Provenance::Endogenous)
            .unwrap();
        let ben = session.database().find_fact("TA", &["Ben"]).unwrap();
        session.set_exogenous(ben, true).unwrap();
        session.retract_fact(f).unwrap();
        session.set_exogenous(ben, false).unwrap();
        assert_eq!(session.stats().updates, 4);
        assert!(session.stats().incremental_updates >= 3);
        let fresh = ShapleySession::prepare(
            session.database(),
            AnyQuery::Cq(&q1),
            &ShapleyOptions::auto(),
        )
        .unwrap();
        let (a, b) = (session.report().unwrap(), fresh.report().unwrap());
        assert!(a.efficiency_holds());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.value, y.value, "{}", x.rendered);
        }
    }

    #[test]
    fn union_session_updates_match_fresh_sessions() {
        let db = Database::parse(
            "exo Stud(a)\nexo Stud(b)\n\
             endo TA(a)\nendo Reg(a, c1)\nendo Reg(b, c2)\n\
             exo Lab(l1)\nendo Asst(l1, a)\nendo Closed(l1)\n",
        )
        .unwrap();
        let u = parse_ucq(
            "q1() :- Stud(x), !TA(x), Reg(x, y)\n\
             q2() :- Lab(l), Asst(l, a), !Closed(l)\n",
        )
        .unwrap();
        let mut session =
            ShapleySession::prepare(&db, AnyQuery::Union(&u), &ShapleyOptions::auto()).unwrap();
        assert_eq!(session.strategy(), Some(ResolvedStrategy::Hierarchical));
        let f = session
            .insert_fact("Asst", &["l1", "b"], Provenance::Endogenous)
            .unwrap();
        let closed = session.database().find_fact("Closed", &["l1"]).unwrap();
        session.set_exogenous(closed, true).unwrap();
        let fresh = ShapleySession::prepare(
            session.database(),
            AnyQuery::Union(&u),
            &ShapleyOptions::auto(),
        )
        .unwrap();
        let (a, b) = (session.report().unwrap(), fresh.report().unwrap());
        assert!(a.efficiency_holds());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.value, y.value, "{}", x.rendered);
        }
        assert!(session.value(f).is_ok());
    }

    #[test]
    fn aggregate_session_reports_and_counts_pruning() {
        let db = Database::parse(
            "endo Farmer(miller)\nendo Farmer(smith)\n\
             exo Export(miller, wheat, norway)\n\
             exo Export(miller, rice, egypt)\n\
             exo Export(smith, rice, norway)\n\
             endo Grows(norway, wheat)\nendo Grows(egypt, rice)\n",
        )
        .unwrap();
        let q = parse_cq("q(c) :- Farmer(m), Export(m, p, c), !Grows(c, p)").unwrap();
        let session = ShapleySession::prepare_aggregate(
            &db,
            &q,
            AggregateFunction::Count,
            &ShapleyOptions::auto(),
        )
        .unwrap();
        assert!(session.strategy().is_none());
        let report = session.aggregate_report().unwrap();
        assert!(report.efficiency_holds());
        assert_eq!(report.stats.aggregate_candidates, 2);
        // Boolean sessions refuse aggregate_report.
        let q1 = parse_cq("q1() :- Farmer(m)").unwrap();
        let boolean =
            ShapleySession::prepare(&db, AnyQuery::Cq(&q1), &ShapleyOptions::auto()).unwrap();
        assert!(matches!(
            boolean.aggregate_report(),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn aggregate_pruning_skips_zero_candidates() {
        // The egypt candidate of the exports scenario depends only on
        // exogenous facts once Grows(egypt, rice) is exogenous: its
        // whole value vector is zero and the engine is never compiled.
        let db = Database::parse(
            "endo Farmer(miller)\n\
             exo Export(miller, wheat, norway)\n\
             exo Export(miller, rice, egypt)\n\
             exo Grows(egypt, rice)\n\
             endo Grows(norway, wheat)\n",
        )
        .unwrap();
        let q = parse_cq("q(c) :- Farmer(m), Export(m, p, c), !Grows(c, p)").unwrap();
        let report = crate::aggregates::aggregate_report(
            &db,
            &q,
            &AggregateFunction::Count,
            &ShapleyOptions::auto(),
        )
        .unwrap();
        assert!(report.efficiency_holds());
        assert_eq!(report.stats.aggregate_candidates, 2);
        assert_eq!(report.stats.pruned_candidates, 1, "{report:?}");
    }

    #[test]
    fn failed_rebuild_rolls_back_the_update() {
        // A self-join routes Auto to brute force; pushing |Dn| past the
        // limit makes the post-update rebuild fail. The session rejects
        // the update wholesale: the database mutation is rolled back
        // and reads keep serving the pre-update state.
        let mut db = Database::new();
        for i in 0..3 {
            db.add_endo("R", &[&format!("a{i}"), &format!("b{i}")])
                .unwrap();
        }
        let q = parse_cq("q() :- R(x, y), R(y, x)").unwrap();
        let opts = ShapleyOptions::auto().brute_force_limit(3);
        let mut session = ShapleySession::prepare(&db, AnyQuery::Cq(&q), &opts).unwrap();
        let f = session.database().endo_facts()[0];
        let before = session.value(f).unwrap();
        let err = session
            .insert_fact("R", &["c", "d"], Provenance::Endogenous)
            .unwrap_err();
        assert!(matches!(err, CoreError::TooManyEndogenousFacts { .. }));
        // Rolled back: same fact count, same answers, healthy session.
        assert!(!session.is_poisoned());
        assert_eq!(session.database().endo_count(), 3);
        assert_eq!(session.value(f).unwrap(), before);
        assert_eq!(session.stats().rolled_back, 1);
        assert_eq!(session.stats().updates, 0);
        // And the session still accepts updates that fit the strategy.
        session.retract_fact(f).unwrap();
        assert_eq!(session.database().endo_count(), 2);
    }

    #[test]
    fn poisoned_sessions_recover_in_place() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let mut session =
            ShapleySession::prepare(&db, AnyQuery::Cq(&q1), &ShapleyOptions::auto()).unwrap();
        let adam = db.find_fact("TA", &["Adam"]).unwrap();
        let before = session.value(adam).unwrap();
        session.poison_for_tests("synthetic maintenance failure");
        assert!(session.is_poisoned());
        assert!(matches!(
            session.value(adam),
            Err(CoreError::Unsupported(_))
        ));
        assert!(matches!(session.report(), Err(CoreError::Unsupported(_))));
        // recover() rebuilds from the retained database: answers are
        // bit-identical to the pre-poisoning state.
        session.recover().unwrap();
        assert!(!session.is_poisoned());
        assert_eq!(session.value(adam).unwrap(), before);
        assert_eq!(session.strategy(), Some(ResolvedStrategy::Hierarchical));
        // recover() on a healthy session is a no-op.
        session.recover().unwrap();
        assert_eq!(session.value(adam).unwrap(), before);
    }

    /// A non-hierarchical instance (path x–y between R(x) and T(y))
    /// with `m` endogenous facts: every exact tier rejects it once `m`
    /// exceeds the brute-force limit.
    fn hard_instance(m: usize) -> Database {
        let mut db = Database::new();
        for i in 0..m / 2 {
            db.add_endo("R", &[&format!("a{i}")]).unwrap();
            db.add_endo("S", &[&format!("a{i}"), "u"]).unwrap();
        }
        db.add_endo("T", &["u"]).unwrap();
        db
    }

    #[test]
    fn fallback_sessions_serve_degraded_tiers_only() {
        let db = hard_instance(8);
        let q = parse_cq("q() :- R(x), S(x, y), T(y)").unwrap();
        let opts = ShapleyOptions::auto().brute_force_limit(4);
        // The plain constructor rejects the instance outright…
        assert!(ShapleySession::prepare(&db, AnyQuery::Cq(&q), &opts).is_err());
        // …the fallback constructor hands back a degraded session.
        let mut session =
            ShapleySession::prepare_with_fallback(&db, AnyQuery::Cq(&q), &opts).unwrap();
        assert!(session.is_exact_unavailable());
        assert!(!session.is_poisoned());
        let f = session.database().endo_facts()[0];
        assert!(matches!(session.value(f), Err(CoreError::Unsupported(_))));
        assert!(matches!(session.report(), Err(CoreError::Unsupported(_))));
        // The degraded tiers answer: the ladder lands on a sampled (or
        // WSMS) report, and both degraded reads work directly.
        let answer = session.report_tiered(&TierPolicy::default()).unwrap();
        assert!(!matches!(answer, TieredAnswer::Exact(_)));
        let anytime = session
            .anytime(&AnytimeParams {
                epsilon: 0.25,
                ..AnytimeParams::default()
            })
            .unwrap();
        assert_eq!(anytime.entries.len(), session.database().endo_count());
        assert!(
            session
                .wsms(WsmsWeight::SizeInverse)
                .unwrap()
                .minimal_supports
                > 0
        );
    }

    #[test]
    fn fallback_sessions_absorb_updates_and_upgrade_when_possible() {
        let db = hard_instance(8);
        let q = parse_cq("q() :- R(x), S(x, y), T(y)").unwrap();
        let opts = ShapleyOptions::auto().brute_force_limit(4);
        let mut session =
            ShapleySession::prepare_with_fallback(&db, AnyQuery::Cq(&q), &opts).unwrap();
        // An update on a still-intractable instance is kept, not rolled
        // back: the session stays degraded and keeps serving.
        session
            .insert_fact("R", &["extra"], Provenance::Endogenous)
            .unwrap();
        assert!(session.is_exact_unavailable());
        assert_eq!(session.database().endo_count(), 10);
        assert_eq!(session.stats().updates, 1);
        assert_eq!(session.stats().rolled_back, 0);
        assert!(session.report_tiered(&TierPolicy::default()).is_ok());
        // Retracting below the brute-force limit re-prepares an exact
        // engine: the session upgrades out of the degraded state.
        let facts: Vec<FactId> = session.database().endo_facts().to_vec();
        for &f in &facts[..6] {
            session.retract_fact(f).unwrap();
        }
        assert!(!session.is_exact_unavailable());
        let report = session.report().unwrap();
        assert!(report.efficiency_holds());
        // And the exact tier now answers the ladder's first rung.
        assert!(matches!(
            session.report_tiered(&TierPolicy::default()).unwrap(),
            TieredAnswer::Exact(_)
        ));
    }

    fn rat(p: i64, q: i64) -> BigRational {
        BigRational::from_i64_ratio(p, q)
    }

    #[test]
    fn session_probability_matches_enumeration() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let mut session =
            ShapleySession::prepare(&db, AnyQuery::Cq(&q1), &ShapleyOptions::auto()).unwrap();
        let adam = db.find_fact("TA", &["Adam"]).unwrap();
        session.set_probability(adam, rat(1, 10)).unwrap();
        session.set_default_probability(rat(2, 5)).unwrap();
        let want =
            probability_by_enumeration(&db, AnyQuery::Cq(&q1), session.probabilities(), None, 26)
                .unwrap();
        assert_eq!(session.probability().unwrap(), want);
        // Expected marginals agree with forced enumeration too.
        for &f in db.endo_facts() {
            let present = probability_by_enumeration(
                &db,
                AnyQuery::Cq(&q1),
                session.probabilities(),
                Some((f, true)),
                26,
            )
            .unwrap();
            let absent = probability_by_enumeration(
                &db,
                AnyQuery::Cq(&q1),
                session.probabilities(),
                Some((f, false)),
                26,
            )
            .unwrap();
            assert_eq!(
                session.expected_shapley(f).unwrap(),
                present - absent,
                "{}",
                db.render_fact(f)
            );
        }
    }

    #[test]
    fn union_session_probability_matches_enumeration() {
        let db = Database::parse(
            "exo Stud(a)\nexo Stud(b)\n\
             endo TA(a)\nendo Reg(a, c1)\nendo Reg(b, c2)\n\
             exo Lab(l1)\nendo Asst(l1, a)\nendo Closed(l1)\n",
        )
        .unwrap();
        let u = parse_ucq(
            "q1() :- Stud(x), !TA(x), Reg(x, y)\n\
             q2() :- Lab(l), Asst(l, a), !Closed(l)\n",
        )
        .unwrap();
        let mut session =
            ShapleySession::prepare(&db, AnyQuery::Union(&u), &ShapleyOptions::auto()).unwrap();
        session.set_default_probability(rat(3, 10)).unwrap();
        let want =
            probability_by_enumeration(&db, AnyQuery::Union(&u), session.probabilities(), None, 26)
                .unwrap();
        assert_eq!(session.probability().unwrap(), want);
        let asst = db.find_fact("Asst", &["l1", "a"]).unwrap();
        let present = probability_by_enumeration(
            &db,
            AnyQuery::Union(&u),
            session.probabilities(),
            Some((asst, true)),
            26,
        )
        .unwrap();
        let absent = probability_by_enumeration(
            &db,
            AnyQuery::Union(&u),
            session.probabilities(),
            Some((asst, false)),
            26,
        )
        .unwrap();
        assert_eq!(session.expected_shapley(asst).unwrap(), present - absent);
    }

    #[test]
    fn session_probability_survives_updates() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let mut session =
            ShapleySession::prepare(&db, AnyQuery::Cq(&q1), &ShapleyOptions::auto()).unwrap();
        session.set_default_probability(rat(1, 4)).unwrap();
        let _ = session.probability().unwrap();
        // Drive the same update mix the Shapley maintenance tests use
        // and pin the maintained probability against a fresh prepare.
        let f = session
            .insert_fact("Reg", &["Ben", "AI"], Provenance::Endogenous)
            .unwrap();
        let ben = session.database().find_fact("TA", &["Ben"]).unwrap();
        session.set_exogenous(ben, true).unwrap();
        session.retract_fact(f).unwrap();
        session.set_exogenous(ben, false).unwrap();
        let got = session.probability().unwrap();
        let mut fresh = ShapleySession::prepare(
            session.database(),
            AnyQuery::Cq(&q1),
            &ShapleyOptions::auto(),
        )
        .unwrap();
        fresh.set_default_probability(rat(1, 4)).unwrap();
        assert_eq!(got, fresh.probability().unwrap());
        for &f in session.database().endo_facts().to_vec().iter() {
            assert_eq!(
                session.expected_shapley(f).unwrap(),
                fresh.expected_shapley(f).unwrap()
            );
        }
    }

    #[test]
    fn non_hierarchical_session_probability_routes_to_enumeration() {
        // A self-join leaves the compiled fragment and ExoShap: the
        // ladder lands on exact enumeration.
        let db = Database::parse("endo R(a, b)\nendo R(b, a)\nendo R(a, c)\n").unwrap();
        let q = parse_cq("q() :- R(x, y), R(y, x)").unwrap();
        let mut session =
            ShapleySession::prepare(&db, AnyQuery::Cq(&q), &ShapleyOptions::auto()).unwrap();
        let want =
            probability_by_enumeration(&db, AnyQuery::Cq(&q), session.probabilities(), None, 26)
                .unwrap();
        assert_eq!(session.probability().unwrap(), want);
    }

    #[test]
    fn probability_rejects_bad_inputs() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let mut session =
            ShapleySession::prepare(&db, AnyQuery::Cq(&q1), &ShapleyOptions::auto()).unwrap();
        assert!(session.set_default_probability(rat(3, 2)).is_err());
        assert!(session.set_default_probability(rat(-1, 2)).is_err());
        let stud = db.find_fact("Stud", &["Adam"]).unwrap();
        assert!(matches!(
            session.set_probability(stud, rat(1, 2)),
            Err(CoreError::FactNotEndogenous { .. })
        ));
        // Aggregate sessions have no probabilistic semantics.
        let qa = parse_cq("q(y) :- Reg(x, y)").unwrap();
        let mut agg = ShapleySession::prepare_aggregate(
            &db,
            &qa,
            AggregateFunction::Count,
            &ShapleyOptions::auto(),
        )
        .unwrap();
        assert!(matches!(agg.probability(), Err(CoreError::Unsupported(_))));
    }

    #[test]
    fn sampled_estimates_from_the_session() {
        let db = Database::parse("exo Stud(a)\nendo TA(a)\nendo Reg(a, c)\n").unwrap();
        let q = parse_cq("q() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let session =
            ShapleySession::prepare(&db, AnyQuery::Cq(&q), &ShapleyOptions::auto()).unwrap();
        let ta = db.find_fact("TA", &["a"]).unwrap();
        let est = session
            .sampled(
                ta,
                &SampleParams {
                    epsilon: 0.1,
                    delta: 0.05,
                    seed: 7,
                    threads: 1,
                },
            )
            .unwrap();
        assert!(
            (est.estimate + 0.5).abs() < 0.1,
            "estimate {}",
            est.estimate
        );
    }
}
