//! [`ShapleySession`] — a prepared, updatable Shapley engine handle.
//!
//! The free functions of [`crate::shapley`] and [`crate::aggregates`]
//! re-resolve atoms and recompile the counting structures on every
//! call, even though [`CompiledCount`] / [`CompiledUnionCount`] are
//! compile-once by design. A session is the prepared-statement view of
//! the same machinery: [`ShapleySession::prepare`] classifies the
//! query, resolves the strategy *once*, and builds the compiled engine
//! (the hierarchical engine for CQ¬s, the inclusion–exclusion engine
//! for UCQ¬s, the shared per-candidate engines for aggregates) exactly
//! once; [`ShapleySession::value`], [`ShapleySession::values`],
//! [`ShapleySession::report`], and [`ShapleySession::sampled`] then
//! serve from the cached state, and [`ShapleySession::strategy`] /
//! [`ShapleySession::complexity`] expose the routing decision.
//!
//! ## Incremental maintenance
//!
//! The session owns its database copy, so
//! [`ShapleySession::insert_fact`], [`ShapleySession::retract_fact`],
//! and [`ShapleySession::set_exogenous`] can mutate it in place (fact
//! ids stay stable — see [`Database::retract_fact`]) and *maintain* the
//! compiled engine across the update: only the touched root group's
//! counting recursion re-runs, the cached leave-one-out environments
//! are patched by exact factor swaps, and the weight correlations are
//! refreshed in parallel (see [`CompiledCount::update`]). Structural
//! drift — a root group appearing or dying, a query atom resolving
//! differently, any non-hierarchical engine state — falls back to a
//! full recompile. Either way the session's answers are bit-identical
//! to a freshly prepared session on the same database
//! (proptest-pinned in `tests/session_updates.rs`).
//!
//! ```
//! use cqshap_core::session::ShapleySession;
//! use cqshap_core::{AnyQuery, ShapleyOptions};
//! use cqshap_db::{Database, Provenance};
//! use cqshap_query::parse_cq;
//!
//! let db = Database::parse("exo Stud(a)\nendo TA(a)\nendo Reg(a, c)\n").unwrap();
//! let q = parse_cq("q() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
//!
//! // Prepare once: strategy resolution + engine compilation.
//! let mut session = ShapleySession::prepare(&db, AnyQuery::Cq(&q), &ShapleyOptions::auto()).unwrap();
//! let ta = session.database().find_fact("TA", &["a"]).unwrap();
//! assert_eq!(session.value(ta).unwrap().to_string(), "-1/2");
//!
//! // Update in place: the engine is maintained, not recompiled.
//! let reg2 = session.insert_fact("Reg", &["a", "c2"], Provenance::Endogenous).unwrap();
//! let report = session.report().unwrap();
//! assert!(report.efficiency_holds());
//! assert_eq!(report.entry(reg2).unwrap().value.to_string(), "1/3");
//!
//! // Retract it again and the original answers come back.
//! session.retract_fact(reg2).unwrap();
//! assert_eq!(session.value(ta).unwrap().to_string(), "-1/2");
//! ```

use std::collections::HashSet;

use cqshap_db::{Database, DbError, FactId, Provenance};
use cqshap_numeric::{BigInt, BigRational};
use cqshap_query::{classify_with_exo, ConjunctiveQuery, ExactComplexity, UnionQuery};

use crate::aggregates::{aggregate_efficiency_target, AggregateEngines, AggregateFunction};
use crate::anyquery::AnyQuery;
use crate::approx::{shapley_additive_approx, ApproxShapley, SampleParams};
use crate::compiled::{CompiledCount, CompiledProbability, EngineUpdate};
use crate::compiled_union::CompiledUnionCount;
use crate::domain::{probability_by_enumeration, FactProbabilities};
use crate::error::CoreError;
use crate::exoshap;
use crate::satcount::BruteForceCounter;
use crate::shapley::{
    assemble_report, assemble_report_with_total, efficiency_target, engine_report_values,
    engine_values, per_fact_values, resolve_strategy, resolve_union_route, shapley_by_permutations,
    shapley_via_counts, union_brute_value, union_brute_values, union_efficiency_target,
    zero_report, ResolvedStrategy, ShapleyOptions, ShapleyReport, UnionRoute,
};

/// The prepared query of a session.
enum QuerySpec {
    Cq(ConjunctiveQuery),
    Union(UnionQuery),
    Aggregate {
        query: ConjunctiveQuery,
        agg: AggregateFunction,
    },
}

/// One signed, rewritten inclusion–exclusion term with its compiled
/// engine (the `ExoShap` union path).
struct ExoTerm {
    negative: bool,
    db: Database,
    engine: CompiledCount,
}

/// The compiled state behind a session.
enum EngineState {
    /// Hierarchical CQ¬: the batched engine against the session db.
    CqCompiled(CompiledCount),
    /// `ExoShap` CQ¬: the engine against the rewritten database.
    CqRewritten {
        db: Box<Database>,
        engine: CompiledCount,
    },
    /// The rewriting proved the query always false: every value is 0.
    CqAlwaysFalse,
    /// Brute-force strategies: per-fact evaluation, no compiled state.
    CqPerFact,
    /// UCQ¬ through the inclusion–exclusion engine.
    UnionCompiled(CompiledUnionCount),
    /// UCQ¬ through per-conjunction `ExoShap` terms.
    UnionExoShap(Vec<ExoTerm>),
    /// UCQ¬ brute-force subset enumeration.
    UnionBrute,
    /// UCQ¬ permutation enumeration.
    UnionPermutations,
    /// Aggregate: the shared per-candidate engines.
    Aggregate(AggregateEngines),
    /// A failed post-update rebuild left no usable engine; reads
    /// surface the stored reason until a successful update re-prepares.
    Poisoned(String),
}

/// The lazily built probabilistic state behind a session — the same
/// compiled structures as [`EngineState`], instantiated at the
/// probability domain (see [`ShapleySession::probability`]).
enum ProbState {
    /// Nothing built yet, or invalidated by an update the engine could
    /// not absorb / a probability change: the next probabilistic read
    /// rebuilds through the routing ladder.
    NotBuilt,
    /// Hierarchical CQ¬: the compiled probability engine on the session
    /// database, incrementally maintained across updates.
    Cq(CompiledProbability),
    /// `ExoShap` CQ¬: the engine against the rewritten database (the
    /// rewriting preserves `q(Dx ∪ E)` for every `E ⊆ Dn`, hence the
    /// whole distribution over worlds).
    Rewritten {
        db: Box<Database>,
        engine: CompiledProbability,
    },
    /// The rewriting proved the query always false: `Pr[q] = 0`.
    AlwaysFalse,
    /// UCQ¬ through signed inclusion–exclusion probability engines, one
    /// per satisfiable subset conjunction.
    Union(Vec<(bool, CompiledProbability)>),
    /// World enumeration within [`ShapleyOptions::brute_force_limit`].
    Brute,
    /// No probabilistic route for this session (e.g. aggregates).
    Unsupported(String),
}

/// Update counters of a session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Database updates applied through the session.
    pub updates: usize,
    /// Updates served by incremental engine maintenance.
    pub incremental_updates: usize,
    /// Updates that forced a full engine recompile.
    pub full_recompiles: usize,
}

/// A prepared, updatable engine handle unifying CQ¬ / UCQ¬ / aggregate
/// Shapley computation behind one API. See the [module docs](self).
pub struct ShapleySession {
    db: Database,
    options: ShapleyOptions,
    spec: QuerySpec,
    resolved: Option<ResolvedStrategy>,
    complexity: Option<ExactComplexity>,
    state: EngineState,
    probs: FactProbabilities,
    prob: ProbState,
    stats: SessionStats,
}

fn exo_relation_names(db: &Database) -> HashSet<String> {
    db.exogenous_relation_names().into_iter().collect()
}

/// Resolves the strategy and builds the compiled state for one spec.
fn build_state(
    db: &Database,
    spec: &QuerySpec,
    options: &ShapleyOptions,
) -> Result<
    (
        Option<ResolvedStrategy>,
        Option<ExactComplexity>,
        EngineState,
    ),
    CoreError,
> {
    match spec {
        QuerySpec::Cq(q) => {
            let complexity = classify_with_exo(q, &exo_relation_names(db));
            let resolved = resolve_strategy(db, q, options)?;
            let state = match resolved {
                ResolvedStrategy::Hierarchical => EngineState::CqCompiled(
                    CompiledCount::compile_with_threads(db, q, options.threads)?,
                ),
                ResolvedStrategy::ExoShap => {
                    let outcome = exoshap::rewrite(db, q, options.tuple_budget)?;
                    if outcome.always_false {
                        EngineState::CqAlwaysFalse
                    } else {
                        let engine = CompiledCount::compile_with_threads(
                            &outcome.db,
                            &outcome.query,
                            options.threads,
                        )?;
                        EngineState::CqRewritten {
                            db: Box::new(outcome.db),
                            engine,
                        }
                    }
                }
                ResolvedStrategy::BruteForce | ResolvedStrategy::Permutations => {
                    EngineState::CqPerFact
                }
            };
            Ok((Some(resolved), Some(complexity), state))
        }
        QuerySpec::Union(u) => {
            let (resolved, state) = match resolve_union_route(db, u, options)? {
                UnionRoute::Compiled => (
                    ResolvedStrategy::Hierarchical,
                    EngineState::UnionCompiled(CompiledUnionCount::compile_with_threads(
                        db,
                        u,
                        options.threads,
                    )?),
                ),
                UnionRoute::ExoShap(terms) => {
                    let compiled = terms
                        .into_iter()
                        .map(|(negative, outcome, engine)| ExoTerm {
                            negative,
                            db: outcome.db,
                            engine,
                        })
                        .collect();
                    (
                        ResolvedStrategy::ExoShap,
                        EngineState::UnionExoShap(compiled),
                    )
                }
                UnionRoute::BruteForce => (ResolvedStrategy::BruteForce, EngineState::UnionBrute),
                UnionRoute::Permutations => (
                    ResolvedStrategy::Permutations,
                    EngineState::UnionPermutations,
                ),
            };
            Ok((Some(resolved), None, state))
        }
        QuerySpec::Aggregate { query, agg } => {
            let complexity = classify_with_exo(query, &exo_relation_names(db));
            let engines = AggregateEngines::prepare(db, query, agg, options)?;
            Ok((None, Some(complexity), EngineState::Aggregate(engines)))
        }
    }
}

impl ShapleySession {
    /// Prepares a session for a Boolean CQ¬ or UCQ¬: clones the
    /// database, classifies the query, resolves the strategy once, and
    /// compiles the engine.
    ///
    /// # Errors
    /// Everything strategy resolution and engine compilation can raise
    /// — the same errors the corresponding free functions raise.
    pub fn prepare(
        db: &Database,
        query: AnyQuery<'_>,
        options: &ShapleyOptions,
    ) -> Result<Self, CoreError> {
        let spec = match query {
            AnyQuery::Cq(q) => QuerySpec::Cq(q.clone()),
            AnyQuery::Union(u) => QuerySpec::Union(u.clone()),
        };
        Self::from_spec(db.clone(), spec, *options)
    }

    /// Prepares a session for an aggregate query: one shared
    /// [`CompiledCount`] engine per (non-pruned) candidate answer.
    ///
    /// # Errors
    /// [`CoreError::Unsupported`] for Boolean (head-less) queries, plus
    /// anything candidate classification raises.
    pub fn prepare_aggregate(
        db: &Database,
        query: &ConjunctiveQuery,
        agg: AggregateFunction,
        options: &ShapleyOptions,
    ) -> Result<Self, CoreError> {
        Self::from_spec(
            db.clone(),
            QuerySpec::Aggregate {
                query: query.clone(),
                agg,
            },
            *options,
        )
    }

    fn from_spec(
        db: Database,
        spec: QuerySpec,
        options: ShapleyOptions,
    ) -> Result<Self, CoreError> {
        let (resolved, complexity, state) = build_state(&db, &spec, &options)?;
        Ok(ShapleySession {
            db,
            options,
            spec,
            resolved,
            complexity,
            state,
            probs: FactProbabilities::uniform(BigRational::from_i64_ratio(1, 2)),
            prob: ProbState::NotBuilt,
            stats: SessionStats::default(),
        })
    }

    /// The session's database (the prepared copy, including any updates
    /// applied through the session).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The options the session was prepared with.
    pub fn options(&self) -> &ShapleyOptions {
        &self.options
    }

    /// The algorithm the strategy resolved to — shared by every value
    /// and report served from this session, so the single-value and
    /// all-facts paths can never route differently. `None` for
    /// aggregate sessions (each candidate shape resolves on its own).
    pub fn strategy(&self) -> Option<ResolvedStrategy> {
        self.resolved
    }

    /// The dichotomy classification of the prepared query under the
    /// database's exogenous relations (Theorems 3.1 / 4.3). `None` for
    /// unions, which the paper's dichotomies do not cover directly.
    pub fn complexity(&self) -> Option<&ExactComplexity> {
        self.complexity.as_ref()
    }

    /// Update counters: how many updates were applied, and how many of
    /// them the engine absorbed incrementally vs. by full recompile.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    fn check_endogenous(&self, f: FactId) -> Result<(), CoreError> {
        if self.db.endo_index(f).is_none() {
            return Err(CoreError::FactNotEndogenous {
                fact: self.db.render_fact(f),
            });
        }
        Ok(())
    }

    fn check_not_poisoned(&self) -> Result<(), CoreError> {
        if let EngineState::Poisoned(reason) = &self.state {
            return Err(CoreError::Unsupported(format!(
                "the session engine could not be rebuilt after an update ({reason}); apply a further \
                 update that restores a preparable state"
            )));
        }
        Ok(())
    }

    /// The exact Shapley value of `f`, served from the prepared engine.
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`, plus anything the
    /// per-fact fallback strategies raise.
    pub fn value(&self, f: FactId) -> Result<BigRational, CoreError> {
        self.check_not_poisoned()?;
        match (&self.spec, &self.state) {
            (_, EngineState::CqCompiled(engine)) => engine.value(&self.db, f),
            (_, EngineState::CqRewritten { db, engine }) => {
                self.check_endogenous(f)?;
                engine.value(db, f)
            }
            (_, EngineState::CqAlwaysFalse) => {
                self.check_endogenous(f)?;
                Ok(BigRational::zero())
            }
            (QuerySpec::Cq(q), EngineState::CqPerFact) => match self.resolved {
                Some(ResolvedStrategy::Permutations) => shapley_by_permutations(
                    &self.db,
                    AnyQuery::Cq(q),
                    f,
                    self.options.permutation_limit,
                ),
                _ => shapley_via_counts(
                    &self.db,
                    AnyQuery::Cq(q),
                    f,
                    &BruteForceCounter {
                        limit: self.options.brute_force_limit,
                    },
                ),
            },
            (_, EngineState::UnionCompiled(engine)) => engine.value(&self.db, f),
            (_, EngineState::UnionExoShap(terms)) => {
                self.check_endogenous(f)?;
                Ok(exo_union_normalize(terms, exo_union_numerator(terms, f)?))
            }
            (QuerySpec::Union(u), EngineState::UnionBrute) => {
                union_brute_value(&self.db, u, f, &self.options)
            }
            (QuerySpec::Union(u), EngineState::UnionPermutations) => shapley_by_permutations(
                &self.db,
                AnyQuery::Union(u),
                f,
                self.options.permutation_limit,
            ),
            (_, EngineState::Aggregate(engines)) => {
                self.check_endogenous(f)?;
                Ok(engines
                    .values(&self.db, &[f], &self.options)?
                    .pop()
                    .expect("one fact requested"))
            }
            _ => unreachable!("spec and state are built together"),
        }
    }

    /// The exact Shapley values of a fact slice, batched through the
    /// prepared engine (root-group-chunked thread fan-out on the
    /// compiled paths).
    ///
    /// # Errors
    /// As [`ShapleySession::value`], for any fact of the slice.
    pub fn values(&self, facts: &[FactId]) -> Result<Vec<BigRational>, CoreError> {
        self.check_not_poisoned()?;
        match (&self.spec, &self.state) {
            (_, EngineState::CqCompiled(engine)) => {
                engine_values(&self.db, engine, facts, self.options.threads)
            }
            (_, EngineState::CqRewritten { db, engine }) => {
                for &f in facts {
                    self.check_endogenous(f)?;
                }
                engine_values(db, engine, facts, self.options.threads)
            }
            (_, EngineState::CqAlwaysFalse) => {
                for &f in facts {
                    self.check_endogenous(f)?;
                }
                Ok(vec![BigRational::zero(); facts.len()])
            }
            (QuerySpec::Cq(q), EngineState::CqPerFact) => {
                let resolved = self.resolved.expect("per-fact state has a resolution");
                per_fact_values(&self.db, q, facts, resolved, &self.options, false)
            }
            (_, EngineState::UnionCompiled(engine)) => {
                engine_values(&self.db, engine, facts, self.options.threads)
            }
            (_, EngineState::UnionExoShap(terms)) => {
                for &f in facts {
                    self.check_endogenous(f)?;
                }
                Ok(exo_union_values(terms, facts)?.0)
            }
            (QuerySpec::Union(u), EngineState::UnionBrute) => {
                union_brute_values(&self.db, u, facts, &self.options)
            }
            (QuerySpec::Union(u), EngineState::UnionPermutations) => {
                crate::parallel::par_map_with(self.options.threads, facts.len(), |i| {
                    shapley_by_permutations(
                        &self.db,
                        AnyQuery::Union(u),
                        facts[i],
                        self.options.permutation_limit,
                    )
                })
                .into_iter()
                .collect()
            }
            (_, EngineState::Aggregate(engines)) => {
                for &f in facts {
                    self.check_endogenous(f)?;
                }
                engines.values(&self.db, facts, &self.options)
            }
            _ => unreachable!("spec and state are built together"),
        }
    }

    /// The all-facts report: every endogenous fact's exact value plus
    /// the efficiency check (and, for aggregates, the candidate-pruning
    /// stats).
    ///
    /// # Errors
    /// As [`ShapleySession::values`].
    pub fn report(&self) -> Result<ShapleyReport, CoreError> {
        self.check_not_poisoned()?;
        if matches!(self.state, EngineState::CqAlwaysFalse) {
            return Ok(zero_report(&self.db));
        }
        let facts: Vec<FactId> = self.db.endo_facts().to_vec();
        let expected = match (&self.spec, &self.state) {
            (QuerySpec::Cq(_), EngineState::CqRewritten { db, engine }) => {
                efficiency_target(db, engine.query())
            }
            (QuerySpec::Cq(q), _) => efficiency_target(&self.db, q),
            (QuerySpec::Union(u), _) => union_efficiency_target(&self.db, u),
            (QuerySpec::Aggregate { query, agg }, _) => {
                aggregate_efficiency_target(&self.db, query, agg)?
            }
        };
        // Engine paths accumulate the value total over the common
        // denominator `m!` (one normalization) — summing the reduced
        // per-fact rationals instead costs a gcd per entry.
        let report = match &self.state {
            EngineState::CqCompiled(engine) => {
                let (values, total) =
                    engine_report_values(&self.db, engine, &facts, self.options.threads)?;
                assemble_report_with_total(&self.db, values, total, expected)
            }
            EngineState::CqRewritten { db, engine } => {
                let (values, total) =
                    engine_report_values(db, engine, &facts, self.options.threads)?;
                assemble_report_with_total(&self.db, values, total, expected)
            }
            EngineState::UnionCompiled(engine) => {
                let (values, total) =
                    engine_report_values(&self.db, engine, &facts, self.options.threads)?;
                assemble_report_with_total(&self.db, values, total, expected)
            }
            EngineState::UnionExoShap(terms) => {
                let (values, total) = exo_union_values(terms, &facts)?;
                assemble_report_with_total(&self.db, values, total, expected)
            }
            _ => assemble_report(&self.db, self.values(&facts)?, expected),
        };
        Ok(match &self.state {
            EngineState::Aggregate(engines) => report.with_stats(engines.stats),
            _ => report,
        })
    }

    /// The aggregate report — [`ShapleySession::report`] restricted to
    /// aggregate sessions.
    ///
    /// # Errors
    /// [`CoreError::Unsupported`] on Boolean sessions.
    pub fn aggregate_report(&self) -> Result<ShapleyReport, CoreError> {
        match &self.spec {
            QuerySpec::Aggregate { .. } => self.report(),
            _ => Err(CoreError::Unsupported(
                "aggregate_report needs a session prepared with prepare_aggregate".into(),
            )),
        }
    }

    /// Monte-Carlo additive approximation of `f`'s value by permutation
    /// sampling over the session's database (Section 5.1).
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`;
    /// [`CoreError::Unsupported`] for aggregate sessions.
    pub fn sampled(&self, f: FactId, params: &SampleParams) -> Result<ApproxShapley, CoreError> {
        match &self.spec {
            QuerySpec::Cq(q) => shapley_additive_approx(&self.db, AnyQuery::Cq(q), f, params),
            QuerySpec::Union(u) => shapley_additive_approx(&self.db, AnyQuery::Union(u), f, params),
            QuerySpec::Aggregate { .. } => Err(CoreError::Unsupported(
                "permutation sampling estimates Boolean queries; aggregate sessions serve exact \
                 values"
                    .into(),
            )),
        }
    }

    /// The per-fact probabilities probabilistic reads evaluate at.
    /// Endogenous facts without an override use the default probability
    /// (`1/2` until [`ShapleySession::set_default_probability`] changes
    /// it); exogenous facts are always present.
    pub fn probabilities(&self) -> &FactProbabilities {
        &self.probs
    }

    /// Sets `f`'s presence probability for probabilistic reads and
    /// invalidates the cached probability engine (the Shapley state is
    /// untouched — probabilities never affect Shapley values).
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`;
    /// [`CoreError::Unsupported`] outside `[0, 1]`.
    pub fn set_probability(&mut self, f: FactId, p: BigRational) -> Result<(), CoreError> {
        self.check_endogenous(f)?;
        check_probability(&p)?;
        self.probs.set(f, p);
        self.prob = ProbState::NotBuilt;
        Ok(())
    }

    /// Sets the probability used by endogenous facts without an
    /// override, invalidating the cached probability engine.
    ///
    /// # Errors
    /// [`CoreError::Unsupported`] outside `[0, 1]`.
    pub fn set_default_probability(&mut self, p: BigRational) -> Result<(), CoreError> {
        check_probability(&p)?;
        self.probs.set_default(p);
        self.prob = ProbState::NotBuilt;
        Ok(())
    }

    /// `Pr[q]` when the endogenous facts are independently present with
    /// the session's probabilities (a tuple-independent probabilistic
    /// database over `Dn`, with `Dx` certain).
    ///
    /// Served from the same compiled resolution/scope/component
    /// structures as the Shapley paths, instantiated at the probability
    /// domain and cached across calls; updates applied through the
    /// session maintain the cache incrementally where the engine
    /// supports it. Queries outside the compiled fragment route through
    /// the `ExoShap` rewriting and, failing that, exact world
    /// enumeration within [`ShapleyOptions::brute_force_limit`].
    ///
    /// # Errors
    /// [`CoreError::Unsupported`] for aggregate sessions;
    /// [`CoreError::TooManyEndogenousFacts`] when only enumeration
    /// applies and `|Dn|` exceeds the limit.
    pub fn probability(&mut self) -> Result<BigRational, CoreError> {
        self.ensure_prob_state()?;
        match &self.prob {
            ProbState::Cq(engine) => Ok(engine.probability().clone()),
            ProbState::Rewritten { engine, .. } => Ok(engine.probability().clone()),
            ProbState::AlwaysFalse => Ok(BigRational::zero()),
            ProbState::Union(terms) => {
                let mut acc = BigRational::zero();
                for (negative, engine) in terms {
                    if *negative {
                        acc -= engine.probability();
                    } else {
                        acc += engine.probability();
                    }
                }
                Ok(acc)
            }
            ProbState::Brute => probability_by_enumeration(
                &self.db,
                self.spec_query(),
                &self.probs,
                None,
                self.options.brute_force_limit,
            ),
            ProbState::Unsupported(reason) => Err(CoreError::Unsupported(reason.clone())),
            ProbState::NotBuilt => unreachable!("ensured above"),
        }
    }

    /// The expected marginal contribution of `f` under the session's
    /// probabilities: `Pr[q | f present] − Pr[q | f absent]`. This is
    /// the probabilistic analogue of the Shapley reduction's masked
    /// difference — and the Shapley value itself when every coalition
    /// size is weighted by the uniform permutation measure instead.
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] if `f ∉ Dn`, plus everything
    /// [`ShapleySession::probability`] raises.
    pub fn expected_shapley(&mut self, f: FactId) -> Result<BigRational, CoreError> {
        self.check_endogenous(f)?;
        self.ensure_prob_state()?;
        match &self.prob {
            ProbState::Cq(engine) => engine.expected_marginal(&self.db, f),
            ProbState::Rewritten { db, engine } => engine.expected_marginal(db, f),
            ProbState::AlwaysFalse => Ok(BigRational::zero()),
            ProbState::Union(terms) => {
                // Conditionals obey the same inclusion–exclusion as the
                // totals, and the difference is linear in them.
                let mut acc = BigRational::zero();
                for (negative, engine) in terms {
                    let marginal = engine.expected_marginal(&self.db, f)?;
                    if *negative {
                        acc -= &marginal;
                    } else {
                        acc += &marginal;
                    }
                }
                Ok(acc)
            }
            ProbState::Brute => {
                let present = probability_by_enumeration(
                    &self.db,
                    self.spec_query(),
                    &self.probs,
                    Some((f, true)),
                    self.options.brute_force_limit,
                )?;
                let absent = probability_by_enumeration(
                    &self.db,
                    self.spec_query(),
                    &self.probs,
                    Some((f, false)),
                    self.options.brute_force_limit,
                )?;
                Ok(present - absent)
            }
            ProbState::Unsupported(reason) => Err(CoreError::Unsupported(reason.clone())),
            ProbState::NotBuilt => unreachable!("ensured above"),
        }
    }

    /// The session's query as an [`AnyQuery`] (Boolean specs only).
    fn spec_query(&self) -> AnyQuery<'_> {
        match &self.spec {
            QuerySpec::Cq(q) => AnyQuery::Cq(q),
            QuerySpec::Union(u) => AnyQuery::Union(u),
            QuerySpec::Aggregate { .. } => {
                unreachable!("aggregate specs route to ProbState::Unsupported")
            }
        }
    }

    /// Builds the probability state if no usable one is cached.
    fn ensure_prob_state(&mut self) -> Result<(), CoreError> {
        if matches!(self.prob, ProbState::NotBuilt) {
            self.prob = self.build_prob_state()?;
        }
        Ok(())
    }

    /// The probabilistic routing ladder: the compiled engine on the
    /// session database, the `ExoShap` rewriting, then exact world
    /// enumeration. Structural ineligibility falls through; genuine
    /// evaluation errors propagate.
    fn build_prob_state(&self) -> Result<ProbState, CoreError> {
        let threads = self.options.threads;
        match &self.spec {
            QuerySpec::Cq(q) => {
                match CompiledProbability::compile_with_threads(
                    &self.db,
                    q,
                    self.probs.clone(),
                    threads,
                ) {
                    Ok(engine) => return Ok(ProbState::Cq(engine)),
                    Err(CoreError::NotHierarchical { .. })
                    | Err(CoreError::NotSelfJoinFree { .. }) => {}
                    Err(e) => return Err(e),
                }
                if let Ok(outcome) = exoshap::rewrite(&self.db, q, self.options.tuple_budget) {
                    if outcome.always_false {
                        return Ok(ProbState::AlwaysFalse);
                    }
                    if let Ok(engine) = CompiledProbability::compile_with_threads(
                        &outcome.db,
                        &outcome.query,
                        self.probs.clone(),
                        threads,
                    ) {
                        return Ok(ProbState::Rewritten {
                            db: Box::new(outcome.db),
                            engine,
                        });
                    }
                }
                Ok(ProbState::Brute)
            }
            QuerySpec::Union(u) => {
                let Ok(conjunctions) = CompiledUnionCount::subset_conjunctions(u) else {
                    return Ok(ProbState::Brute);
                };
                let mut terms = Vec::with_capacity(conjunctions.len());
                for (negative, label, q) in conjunctions {
                    if CompiledUnionCount::check_tractable(&label, &q).is_err() {
                        return Ok(ProbState::Brute);
                    }
                    match CompiledProbability::compile_with_threads(
                        &self.db,
                        &q,
                        self.probs.clone(),
                        threads,
                    ) {
                        Ok(engine) => terms.push((negative, engine)),
                        Err(CoreError::NotHierarchical { .. })
                        | Err(CoreError::NotSelfJoinFree { .. }) => return Ok(ProbState::Brute),
                        Err(e) => return Err(e),
                    }
                }
                Ok(ProbState::Union(terms))
            }
            QuerySpec::Aggregate { .. } => Ok(ProbState::Unsupported(
                "probabilistic evaluation covers Boolean queries; aggregate sessions serve \
                 exact Shapley values only"
                    .into(),
            )),
        }
    }

    /// Inserts a fact into the session's database and maintains the
    /// engine. Returns the new fact id.
    ///
    /// # Errors
    /// Database errors (arity mismatch, duplicates, exogenous-relation
    /// violations), plus anything engine maintenance raises.
    pub fn insert_fact(
        &mut self,
        relation: &str,
        constants: &[&str],
        provenance: Provenance,
    ) -> Result<FactId, CoreError> {
        let f = self.db.insert(relation, constants, provenance)?;
        self.after_update(EngineUpdate::Inserted(f))?;
        Ok(f)
    }

    /// Retracts a fact in place (ids of all other facts stay stable)
    /// and maintains the engine.
    ///
    /// # Errors
    /// [`DbError::UnknownFact`] on dangling ids, plus anything engine
    /// maintenance raises.
    pub fn retract_fact(&mut self, f: FactId) -> Result<(), CoreError> {
        self.db.retract_fact(f)?;
        self.after_update(EngineUpdate::Retracted(f))
    }

    /// Flips a fact between endogenous and exogenous and maintains the
    /// engine. A no-op when the fact already has the requested
    /// provenance.
    ///
    /// # Errors
    /// [`DbError::UnknownFact`] / [`DbError::ExogenousViolation`], plus
    /// anything engine maintenance raises.
    pub fn set_exogenous(&mut self, f: FactId, exogenous: bool) -> Result<(), CoreError> {
        if f.index() >= self.db.fact_count() || self.db.is_retracted(f) {
            return Err(CoreError::Db(DbError::UnknownFact { id: f.0 }));
        }
        let target = if exogenous {
            Provenance::Exogenous
        } else {
            Provenance::Endogenous
        };
        if self.db.fact(f).provenance == target {
            return Ok(());
        }
        self.db.set_fact_provenance(f, target)?;
        self.after_update(EngineUpdate::ProvenanceFlipped(f))
    }

    /// Routes one applied database change into the engine: incremental
    /// maintenance where the compiled state supports it, a full
    /// re-prepare otherwise.
    fn after_update(&mut self, change: EngineUpdate) -> Result<(), CoreError> {
        self.stats.updates += 1;
        // Maintain the cached probability engine first; states it cannot
        // absorb degrade to lazily rebuilt (never to stale answers).
        self.prob = match std::mem::replace(&mut self.prob, ProbState::NotBuilt) {
            ProbState::Cq(mut engine) => match engine.update(&self.db, change) {
                Ok(true) => ProbState::Cq(engine),
                _ => ProbState::NotBuilt,
            },
            ProbState::Union(terms) => {
                let mut kept = Vec::with_capacity(terms.len());
                let mut all_maintained = true;
                for (negative, mut engine) in terms {
                    match engine.update(&self.db, change) {
                        Ok(true) => kept.push((negative, engine)),
                        _ => {
                            all_maintained = false;
                            break;
                        }
                    }
                }
                if all_maintained {
                    ProbState::Union(kept)
                } else {
                    ProbState::NotBuilt
                }
            }
            // Rewritten, always-false, and brute states depend on the
            // database globally: rebuild on demand.
            _ => ProbState::NotBuilt,
        };
        let maintained = match &mut self.state {
            EngineState::CqCompiled(engine) => engine.update(&self.db, change),
            EngineState::UnionCompiled(engine) => engine.update(&self.db, change),
            // Rewritten, brute-force, and aggregate states depend on the
            // database globally (complement materialization, candidate
            // enumeration, strategy limits): re-prepare.
            _ => Ok(false),
        };
        let maintained = match maintained {
            Ok(m) => m,
            Err(e) => {
                // The engine may be half-patched (the recount errored
                // mid-swap): never serve from it again.
                self.resolved = None;
                self.state = EngineState::Poisoned(e.to_string());
                return Err(e);
            }
        };
        if maintained {
            self.stats.incremental_updates += 1;
            return Ok(());
        }
        self.stats.full_recompiles += 1;
        match build_state(&self.db, &self.spec, &self.options) {
            Ok((resolved, complexity, state)) => {
                self.resolved = resolved;
                self.complexity = complexity;
                self.state = state;
                Ok(())
            }
            Err(e) => {
                // The database is updated but no engine serves it (e.g.
                // the update pushed the input outside the resolved
                // strategy's reach). Poison the state so reads fail
                // loudly instead of answering from a stale engine.
                self.resolved = None;
                self.state = EngineState::Poisoned(e.to_string());
                Err(e)
            }
        }
    }
}

/// Probabilities live in `[0, 1]`; sessions reject instead of panicking
/// like [`FactProbabilities::set`] does.
fn check_probability(p: &BigRational) -> Result<(), CoreError> {
    if p.is_negative() || p > &BigRational::one() {
        return Err(CoreError::Unsupported(format!(
            "probability {p} is outside [0, 1]"
        )));
    }
    Ok(())
}

/// The signed numerator sum of the `ExoShap` union terms for one fact
/// (every rewritten database keeps the original `Dn`, so all terms
/// share the denominator `m!`).
fn exo_union_numerator(terms: &[ExoTerm], f: FactId) -> Result<BigInt, CoreError> {
    let mut acc = BigInt::zero();
    for t in terms {
        let n = t.engine.shapley_numerator(&t.db, f)?;
        if t.negative {
            acc -= &n;
        } else {
            acc += &n;
        }
    }
    Ok(acc)
}

fn exo_union_normalize(terms: &[ExoTerm], num: BigInt) -> BigRational {
    match terms.first() {
        Some(t) => t.engine.normalize_numerator(num),
        None => BigRational::zero(),
    }
}

/// Per-fact values and the exact total for the `ExoShap` union state,
/// all accumulated in the shared numerator domain.
fn exo_union_values(
    terms: &[ExoTerm],
    facts: &[FactId],
) -> Result<(Vec<BigRational>, BigRational), CoreError> {
    let mut total = BigInt::zero();
    let mut values = Vec::with_capacity(facts.len());
    for &f in facts {
        let num = exo_union_numerator(terms, f)?;
        total += &num;
        values.push(exo_union_normalize(terms, num));
    }
    Ok((values, exo_union_normalize(terms, total)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapley::Strategy;
    use cqshap_query::{parse_cq, parse_ucq};

    fn university() -> Database {
        Database::parse(
            "exo Stud(Adam)\nexo Stud(Ben)\nexo Stud(Caroline)\nexo Stud(David)\n\
             endo TA(Adam)\nendo TA(Ben)\nendo TA(David)\n\
             exo Course(OS, EE)\nexo Course(IC, EE)\nexo Course(DB, CS)\nexo Course(AI, CS)\n\
             endo Reg(Adam, OS)\nendo Reg(Adam, AI)\nendo Reg(Ben, OS)\n\
             endo Reg(Caroline, DB)\nendo Reg(Caroline, IC)\n\
             exo Adv(Michael, Adam)\nexo Adv(Michael, Ben)\nexo Adv(Naomi, Caroline)\n\
             exo Adv(Michael, David)\n",
        )
        .unwrap()
    }

    #[test]
    fn prepared_session_serves_values_and_reports() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let session =
            ShapleySession::prepare(&db, AnyQuery::Cq(&q1), &ShapleyOptions::auto()).unwrap();
        assert_eq!(session.strategy(), Some(ResolvedStrategy::Hierarchical));
        assert!(matches!(
            session.complexity(),
            Some(ExactComplexity::TractableHierarchical)
        ));
        let report = session.report().unwrap();
        assert!(report.efficiency_holds());
        let adam = db.find_fact("TA", &["Adam"]).unwrap();
        assert_eq!(session.value(adam).unwrap().to_string(), "-3/28");
        assert_eq!(
            report.entry(adam).unwrap().value,
            session.value(adam).unwrap()
        );
        // values() agrees with per-fact value() on an arbitrary slice.
        let slice = [adam, db.find_fact("Reg", &["Ben", "OS"]).unwrap()];
        let batch = session.values(&slice).unwrap();
        assert_eq!(batch[0], session.value(slice[0]).unwrap());
        assert_eq!(batch[1], session.value(slice[1]).unwrap());
    }

    #[test]
    fn session_value_equals_report_for_every_strategy_and_fact() {
        // The strategy is resolved once per session, so the single-value
        // and report paths can never diverge (the old free functions
        // could route differently under Auto).
        let db = Database::parse(
            "exo Stud(a)\nexo Stud(b)\n\
             endo TA(a)\nendo Reg(a, c1)\nendo Reg(b, c2)\n\
             endo T(t0)\n",
        )
        .unwrap();
        let u = parse_ucq("q1() :- Stud(x), !TA(x), Reg(x, y)\nq2() :- T(z)\n").unwrap();
        for strategy in [
            Strategy::Auto,
            Strategy::Hierarchical,
            Strategy::ExoShap,
            Strategy::BruteForceSubsets,
            Strategy::BruteForcePermutations,
        ] {
            let opts = ShapleyOptions::with_strategy(strategy);
            let session = match ShapleySession::prepare(&db, AnyQuery::Union(&u), &opts) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let report = session.report().unwrap();
            assert!(report.efficiency_holds(), "{strategy:?}");
            for &f in db.endo_facts() {
                assert_eq!(
                    session.value(f).unwrap(),
                    report.entry(f).unwrap().value,
                    "{strategy:?} {}",
                    db.render_fact(f)
                );
            }
        }
    }

    #[test]
    fn session_updates_match_fresh_sessions() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let mut session =
            ShapleySession::prepare(&db, AnyQuery::Cq(&q1), &ShapleyOptions::auto()).unwrap();
        let f = session
            .insert_fact("Reg", &["Ben", "AI"], Provenance::Endogenous)
            .unwrap();
        let ben = session.database().find_fact("TA", &["Ben"]).unwrap();
        session.set_exogenous(ben, true).unwrap();
        session.retract_fact(f).unwrap();
        session.set_exogenous(ben, false).unwrap();
        assert_eq!(session.stats().updates, 4);
        assert!(session.stats().incremental_updates >= 3);
        let fresh = ShapleySession::prepare(
            session.database(),
            AnyQuery::Cq(&q1),
            &ShapleyOptions::auto(),
        )
        .unwrap();
        let (a, b) = (session.report().unwrap(), fresh.report().unwrap());
        assert!(a.efficiency_holds());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.value, y.value, "{}", x.rendered);
        }
    }

    #[test]
    fn union_session_updates_match_fresh_sessions() {
        let db = Database::parse(
            "exo Stud(a)\nexo Stud(b)\n\
             endo TA(a)\nendo Reg(a, c1)\nendo Reg(b, c2)\n\
             exo Lab(l1)\nendo Asst(l1, a)\nendo Closed(l1)\n",
        )
        .unwrap();
        let u = parse_ucq(
            "q1() :- Stud(x), !TA(x), Reg(x, y)\n\
             q2() :- Lab(l), Asst(l, a), !Closed(l)\n",
        )
        .unwrap();
        let mut session =
            ShapleySession::prepare(&db, AnyQuery::Union(&u), &ShapleyOptions::auto()).unwrap();
        assert_eq!(session.strategy(), Some(ResolvedStrategy::Hierarchical));
        let f = session
            .insert_fact("Asst", &["l1", "b"], Provenance::Endogenous)
            .unwrap();
        let closed = session.database().find_fact("Closed", &["l1"]).unwrap();
        session.set_exogenous(closed, true).unwrap();
        let fresh = ShapleySession::prepare(
            session.database(),
            AnyQuery::Union(&u),
            &ShapleyOptions::auto(),
        )
        .unwrap();
        let (a, b) = (session.report().unwrap(), fresh.report().unwrap());
        assert!(a.efficiency_holds());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.value, y.value, "{}", x.rendered);
        }
        assert!(session.value(f).is_ok());
    }

    #[test]
    fn aggregate_session_reports_and_counts_pruning() {
        let db = Database::parse(
            "endo Farmer(miller)\nendo Farmer(smith)\n\
             exo Export(miller, wheat, norway)\n\
             exo Export(miller, rice, egypt)\n\
             exo Export(smith, rice, norway)\n\
             endo Grows(norway, wheat)\nendo Grows(egypt, rice)\n",
        )
        .unwrap();
        let q = parse_cq("q(c) :- Farmer(m), Export(m, p, c), !Grows(c, p)").unwrap();
        let session = ShapleySession::prepare_aggregate(
            &db,
            &q,
            AggregateFunction::Count,
            &ShapleyOptions::auto(),
        )
        .unwrap();
        assert!(session.strategy().is_none());
        let report = session.aggregate_report().unwrap();
        assert!(report.efficiency_holds());
        assert_eq!(report.stats.aggregate_candidates, 2);
        // Boolean sessions refuse aggregate_report.
        let q1 = parse_cq("q1() :- Farmer(m)").unwrap();
        let boolean =
            ShapleySession::prepare(&db, AnyQuery::Cq(&q1), &ShapleyOptions::auto()).unwrap();
        assert!(matches!(
            boolean.aggregate_report(),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn aggregate_pruning_skips_zero_candidates() {
        // The egypt candidate of the exports scenario depends only on
        // exogenous facts once Grows(egypt, rice) is exogenous: its
        // whole value vector is zero and the engine is never compiled.
        let db = Database::parse(
            "endo Farmer(miller)\n\
             exo Export(miller, wheat, norway)\n\
             exo Export(miller, rice, egypt)\n\
             exo Grows(egypt, rice)\n\
             endo Grows(norway, wheat)\n",
        )
        .unwrap();
        let q = parse_cq("q(c) :- Farmer(m), Export(m, p, c), !Grows(c, p)").unwrap();
        let report = crate::aggregates::aggregate_report(
            &db,
            &q,
            &AggregateFunction::Count,
            &ShapleyOptions::auto(),
        )
        .unwrap();
        assert!(report.efficiency_holds());
        assert_eq!(report.stats.aggregate_candidates, 2);
        assert_eq!(report.stats.pruned_candidates, 1, "{report:?}");
    }

    #[test]
    fn failed_rebuild_poisons_the_session() {
        // A self-join routes Auto to brute force; pushing |Dn| past the
        // limit makes the post-update rebuild fail, and reads must
        // error instead of serving stale answers.
        let mut db = Database::new();
        for i in 0..3 {
            db.add_endo("R", &[&format!("a{i}"), &format!("b{i}")])
                .unwrap();
        }
        let q = parse_cq("q() :- R(x, y), R(y, x)").unwrap();
        let opts = ShapleyOptions::auto().brute_force_limit(3);
        let mut session = ShapleySession::prepare(&db, AnyQuery::Cq(&q), &opts).unwrap();
        let f = session.database().endo_facts()[0];
        assert!(session.value(f).is_ok());
        let err = session
            .insert_fact("R", &["c", "d"], Provenance::Endogenous)
            .unwrap_err();
        assert!(matches!(err, CoreError::TooManyEndogenousFacts { .. }));
        assert!(matches!(session.value(f), Err(CoreError::Unsupported(_))));
        // Retracting back under the limit restores a working engine.
        let ids: Vec<FactId> = session.database().fact_ids().collect();
        session.retract_fact(ids[ids.len() - 1]).unwrap();
        assert!(session.value(f).is_ok());
    }

    fn rat(p: i64, q: i64) -> BigRational {
        BigRational::from_i64_ratio(p, q)
    }

    #[test]
    fn session_probability_matches_enumeration() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let mut session =
            ShapleySession::prepare(&db, AnyQuery::Cq(&q1), &ShapleyOptions::auto()).unwrap();
        let adam = db.find_fact("TA", &["Adam"]).unwrap();
        session.set_probability(adam, rat(1, 10)).unwrap();
        session.set_default_probability(rat(2, 5)).unwrap();
        let want =
            probability_by_enumeration(&db, AnyQuery::Cq(&q1), session.probabilities(), None, 26)
                .unwrap();
        assert_eq!(session.probability().unwrap(), want);
        // Expected marginals agree with forced enumeration too.
        for &f in db.endo_facts() {
            let present = probability_by_enumeration(
                &db,
                AnyQuery::Cq(&q1),
                session.probabilities(),
                Some((f, true)),
                26,
            )
            .unwrap();
            let absent = probability_by_enumeration(
                &db,
                AnyQuery::Cq(&q1),
                session.probabilities(),
                Some((f, false)),
                26,
            )
            .unwrap();
            assert_eq!(
                session.expected_shapley(f).unwrap(),
                present - absent,
                "{}",
                db.render_fact(f)
            );
        }
    }

    #[test]
    fn union_session_probability_matches_enumeration() {
        let db = Database::parse(
            "exo Stud(a)\nexo Stud(b)\n\
             endo TA(a)\nendo Reg(a, c1)\nendo Reg(b, c2)\n\
             exo Lab(l1)\nendo Asst(l1, a)\nendo Closed(l1)\n",
        )
        .unwrap();
        let u = parse_ucq(
            "q1() :- Stud(x), !TA(x), Reg(x, y)\n\
             q2() :- Lab(l), Asst(l, a), !Closed(l)\n",
        )
        .unwrap();
        let mut session =
            ShapleySession::prepare(&db, AnyQuery::Union(&u), &ShapleyOptions::auto()).unwrap();
        session.set_default_probability(rat(3, 10)).unwrap();
        let want =
            probability_by_enumeration(&db, AnyQuery::Union(&u), session.probabilities(), None, 26)
                .unwrap();
        assert_eq!(session.probability().unwrap(), want);
        let asst = db.find_fact("Asst", &["l1", "a"]).unwrap();
        let present = probability_by_enumeration(
            &db,
            AnyQuery::Union(&u),
            session.probabilities(),
            Some((asst, true)),
            26,
        )
        .unwrap();
        let absent = probability_by_enumeration(
            &db,
            AnyQuery::Union(&u),
            session.probabilities(),
            Some((asst, false)),
            26,
        )
        .unwrap();
        assert_eq!(session.expected_shapley(asst).unwrap(), present - absent);
    }

    #[test]
    fn session_probability_survives_updates() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let mut session =
            ShapleySession::prepare(&db, AnyQuery::Cq(&q1), &ShapleyOptions::auto()).unwrap();
        session.set_default_probability(rat(1, 4)).unwrap();
        let _ = session.probability().unwrap();
        // Drive the same update mix the Shapley maintenance tests use
        // and pin the maintained probability against a fresh prepare.
        let f = session
            .insert_fact("Reg", &["Ben", "AI"], Provenance::Endogenous)
            .unwrap();
        let ben = session.database().find_fact("TA", &["Ben"]).unwrap();
        session.set_exogenous(ben, true).unwrap();
        session.retract_fact(f).unwrap();
        session.set_exogenous(ben, false).unwrap();
        let got = session.probability().unwrap();
        let mut fresh = ShapleySession::prepare(
            session.database(),
            AnyQuery::Cq(&q1),
            &ShapleyOptions::auto(),
        )
        .unwrap();
        fresh.set_default_probability(rat(1, 4)).unwrap();
        assert_eq!(got, fresh.probability().unwrap());
        for &f in session.database().endo_facts().to_vec().iter() {
            assert_eq!(
                session.expected_shapley(f).unwrap(),
                fresh.expected_shapley(f).unwrap()
            );
        }
    }

    #[test]
    fn non_hierarchical_session_probability_routes_to_enumeration() {
        // A self-join leaves the compiled fragment and ExoShap: the
        // ladder lands on exact enumeration.
        let db = Database::parse("endo R(a, b)\nendo R(b, a)\nendo R(a, c)\n").unwrap();
        let q = parse_cq("q() :- R(x, y), R(y, x)").unwrap();
        let mut session =
            ShapleySession::prepare(&db, AnyQuery::Cq(&q), &ShapleyOptions::auto()).unwrap();
        let want =
            probability_by_enumeration(&db, AnyQuery::Cq(&q), session.probabilities(), None, 26)
                .unwrap();
        assert_eq!(session.probability().unwrap(), want);
    }

    #[test]
    fn probability_rejects_bad_inputs() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let mut session =
            ShapleySession::prepare(&db, AnyQuery::Cq(&q1), &ShapleyOptions::auto()).unwrap();
        assert!(session.set_default_probability(rat(3, 2)).is_err());
        assert!(session.set_default_probability(rat(-1, 2)).is_err());
        let stud = db.find_fact("Stud", &["Adam"]).unwrap();
        assert!(matches!(
            session.set_probability(stud, rat(1, 2)),
            Err(CoreError::FactNotEndogenous { .. })
        ));
        // Aggregate sessions have no probabilistic semantics.
        let qa = parse_cq("q(y) :- Reg(x, y)").unwrap();
        let mut agg = ShapleySession::prepare_aggregate(
            &db,
            &qa,
            AggregateFunction::Count,
            &ShapleyOptions::auto(),
        )
        .unwrap();
        assert!(matches!(agg.probability(), Err(CoreError::Unsupported(_))));
    }

    #[test]
    fn sampled_estimates_from_the_session() {
        let db = Database::parse("exo Stud(a)\nendo TA(a)\nendo Reg(a, c)\n").unwrap();
        let q = parse_cq("q() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let session =
            ShapleySession::prepare(&db, AnyQuery::Cq(&q), &ShapleyOptions::auto()).unwrap();
        let ta = db.find_fact("TA", &["a"]).unwrap();
        let est = session
            .sampled(
                ta,
                &SampleParams {
                    epsilon: 0.1,
                    delta: 0.05,
                    seed: 7,
                    threads: 1,
                },
            )
            .unwrap();
        assert!(
            (est.estimate + 0.5).abs() < 0.1,
            "estimate {}",
            est.estimate
        );
    }
}
