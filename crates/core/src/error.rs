//! Error type for the Shapley algorithms.

use std::fmt;

use cqshap_db::DbError;
use cqshap_numeric::BigRational;
use cqshap_query::QueryError;

/// Progress a batched phase salvaged before its budget tripped.
///
/// Batched engines finish one fact at a time, so a deadline mid-batch
/// leaves real, exact answers behind. They ride along on
/// [`CoreError::DeadlineExceeded`] so a caller can keep them (seed a
/// retry, report the finished facts) instead of recomputing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartialProgress {
    /// How many per-item units (facts, union terms, candidate engines)
    /// completed before the trip.
    pub completed: usize,
    /// The completed per-fact answers themselves, as `(fact index,
    /// Shapley value)` pairs — empty for phases whose units are not
    /// per-fact answers (compilation, plan preparation).
    pub answers: Vec<(usize, BigRational)>,
}

/// Errors raised by the Shapley computation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The algorithm requires a self-join-free query.
    NotSelfJoinFree {
        /// The query, rendered.
        query: String,
    },
    /// The exact polynomial algorithm requires a hierarchical query
    /// (Theorem 3.1); this one is not, and no rewriting was requested.
    NotHierarchical {
        /// The query, rendered.
        query: String,
    },
    /// The query has a non-hierarchical path, so by Theorem 4.3 exact
    /// computation is `FP^{#P}`-complete; only the brute-force or
    /// approximate strategies apply.
    HasNonHierarchicalPath {
        /// Witness description.
        witness: String,
    },
    /// A relevance algorithm requires a polarity-consistent query
    /// (Proposition 5.7) or union (Section 5.2).
    NotPolarityConsistent {
        /// The query, rendered.
        query: String,
    },
    /// The requested fact is not endogenous (only endogenous facts are
    /// players of the Shapley game).
    FactNotEndogenous {
        /// The fact, rendered.
        fact: String,
    },
    /// Brute-force enumeration was requested but `|Dn|` exceeds the limit.
    TooManyEndogenousFacts {
        /// `|Dn|` of the input.
        count: usize,
        /// The configured limit.
        limit: usize,
    },
    /// A subset of a union's disjuncts conjoins into a query outside the
    /// compiled tractable fragment (self-join induced across disjuncts,
    /// non-hierarchical conjunction, or a failed `ExoShap` rewriting),
    /// so the inclusion–exclusion engine cannot serve the union.
    IntractableIntersection {
        /// The offending disjunct intersection, e.g. `q1 ∧ q3`.
        intersection: String,
        /// Why that conjunction is out of reach.
        reason: String,
    },
    /// A precondition of the Theorem 5.1 construction failed (the query
    /// must be satisfiable, constant-free, positively connected, and
    /// contain a negated atom).
    GapConstruction(String),
    /// A caller-supplied [`crate::Budget`] ran out before the exact
    /// computation finished. The work already done is consistent — the
    /// caller can retry with a bigger budget, or degrade to the sampled
    /// or WSMS tier (see `ShapleySession::report_tiered`).
    DeadlineExceeded {
        /// Which phase of the pipeline hit the budget (e.g. `compile`,
        /// `evaluate`, `report`, `brute-force`, `permutations`).
        phase: String,
        /// Wall-clock time spent when the budget tripped.
        elapsed: std::time::Duration,
        /// What the batched phase completed before the trip, including
        /// the finished per-fact answers themselves (`None` when the
        /// phase has no per-item granularity).
        partial: Option<PartialProgress>,
    },
    /// Propagated database error.
    Db(DbError),
    /// Propagated query error.
    Query(QueryError),
    /// Anything else (internal invariants, unsupported combinations).
    Unsupported(String),
}

impl CoreError {
    /// Attaches salvaged per-fact `answers` to a
    /// [`CoreError::DeadlineExceeded`]; every other error passes
    /// through untouched.
    #[must_use]
    pub fn with_partial_answers(self, answers: Vec<(usize, BigRational)>) -> CoreError {
        match self {
            CoreError::DeadlineExceeded {
                phase,
                elapsed,
                partial,
            } => {
                let mut p = partial.unwrap_or_default();
                p.completed = p.completed.max(answers.len());
                p.answers = answers;
                CoreError::DeadlineExceeded {
                    phase,
                    elapsed,
                    partial: Some(p),
                }
            }
            other => other,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotSelfJoinFree { query } => {
                write!(f, "query is not self-join-free: {query}")
            }
            CoreError::NotHierarchical { query } => {
                write!(f, "query is not hierarchical: {query}")
            }
            CoreError::HasNonHierarchicalPath { witness } => {
                write!(f, "query has a non-hierarchical path ({witness}); exact computation is FP#P-complete")
            }
            CoreError::NotPolarityConsistent { query } => {
                write!(f, "query is not polarity-consistent: {query}")
            }
            CoreError::FactNotEndogenous { fact } => {
                write!(f, "fact {fact} is not endogenous")
            }
            CoreError::TooManyEndogenousFacts { count, limit } => {
                write!(f, "|Dn| = {count} exceeds the brute-force limit {limit}")
            }
            CoreError::IntractableIntersection {
                intersection,
                reason,
            } => {
                write!(
                    f,
                    "disjunct intersection {intersection} is outside the compiled fragment: {reason}"
                )
            }
            CoreError::GapConstruction(msg) => write!(f, "gap construction: {msg}"),
            CoreError::DeadlineExceeded {
                phase,
                elapsed,
                partial,
            } => {
                write!(
                    f,
                    "deadline exceeded in the {phase} phase after {:.1} ms",
                    elapsed.as_secs_f64() * 1e3
                )?;
                if let Some(p) = partial {
                    write!(f, " ({} fact(s) completed", p.completed)?;
                    if !p.answers.is_empty() {
                        write!(f, ", {} answer(s) retained", p.answers.len())?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            CoreError::Db(e) => write!(f, "database error: {e}"),
            CoreError::Query(e) => write!(f, "query error: {e}"),
            CoreError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<DbError> for CoreError {
    fn from(e: DbError) -> Self {
        CoreError::Db(e)
    }
}

impl From<QueryError> for CoreError {
    fn from(e: QueryError) -> Self {
        CoreError::Query(e)
    }
}
