//! The relevance problem (Section 5.2).
//!
//! A fact `f ∈ Dn` is *relevant* to `q` when `q(Dx ∪ E) ≠ q(Dx ∪ E ∪ {f})`
//! for some `E ⊆ Dn` (Definition 5.2) — positively relevant when adding
//! `f` turns the answer true, negatively when it turns it false.
//!
//! Relevance is the gateway to multiplicative approximation: for a fact
//! over a *polarity-consistent* relation, the Shapley value is nonzero
//! iff the fact is relevant, so NP-hardness of relevance (Propositions
//! 5.5 and 5.8) kills multiplicative FPRASes. Conversely, Proposition
//! 5.7 gives polynomial algorithms — `IsPosRelevant` (Algorithm 2) and
//! `IsNegRelevant` (Algorithm 3) — for polarity-consistent CQ¬s, and
//! Section 5.2 extends them to polarity-consistent UCQ¬s; both are
//! implemented here, together with brute-force relevance for
//! cross-validation.

use std::collections::BTreeSet;

use cqshap_db::{Database, FactId, World};
use cqshap_engine::{for_each_positive_homomorphism, CompiledQuery, CompiledTerm, FactScope};
use cqshap_query::analysis::{polarity_map, polarity_map_union, Polarity};
use cqshap_query::ConjunctiveQuery;

use crate::anyquery::AnyQuery;
use crate::error::CoreError;

/// `Neg_q(Dn)`: the endogenous facts whose relation occurs negatively in
/// the (polarity-consistent) query.
fn negq_endo_facts(db: &Database, q: AnyQuery<'_>) -> Vec<FactId> {
    let map = match q {
        AnyQuery::Cq(cq) => polarity_map(cq),
        AnyQuery::Union(u) => polarity_map_union(u),
    };
    let mut out = Vec::new();
    for (rel_name, pol) in map {
        if pol != Polarity::Negative {
            continue;
        }
        if let Some(rel) = db.schema().id(&rel_name) {
            out.extend(
                db.relation_facts(rel)
                    .iter()
                    .copied()
                    .filter(|&f| db.fact(f).provenance.is_endogenous()),
            );
        }
    }
    out
}

fn check_polarity_consistent(q: AnyQuery<'_>) -> Result<(), CoreError> {
    let consistent = match q {
        AnyQuery::Cq(cq) => cqshap_query::is_polarity_consistent(cq),
        AnyQuery::Union(u) => cqshap_query::analysis::is_polarity_consistent_union(u),
    };
    if consistent {
        Ok(())
    } else {
        Err(CoreError::NotPolarityConsistent {
            query: match q {
                AnyQuery::Cq(cq) => cq.to_string(),
                AnyQuery::Union(u) => u.to_string(),
            },
        })
    }
}

fn disjuncts_of(q: AnyQuery<'_>) -> Vec<&ConjunctiveQuery> {
    match q {
        AnyQuery::Cq(cq) => vec![cq],
        AnyQuery::Union(u) => u.disjuncts().iter().collect(),
    }
}

/// Grounds the negative atoms of `cq` under a homomorphism's assignment.
/// Returns `None` when some negative atom maps to an *exogenous* fact
/// (the homomorphism can never witness satisfaction); otherwise the set
/// `N` of endogenous facts hit by negative atoms.
fn negative_hits(
    db: &Database,
    compiled: &CompiledQuery,
    assignment: &[Option<cqshap_db::ConstId>],
) -> Option<BTreeSet<FactId>> {
    let mut n = BTreeSet::new();
    for atom in &compiled.negatives {
        let Some(rel) = atom.rel else { continue };
        let mut vals = Vec::with_capacity(atom.terms.len());
        let mut exists = true;
        for t in &atom.terms {
            match t {
                CompiledTerm::Const(c) => vals.push(*c),
                CompiledTerm::UnknownConst => {
                    exists = false;
                    break;
                }
                // cqshap-lint: allow(no-panic-index) -- assignment is sized to the query's variable count and v is a compiled variable id
                CompiledTerm::Var(v) => match assignment[*v as usize] {
                    Some(c) => vals.push(c),
                    None => {
                        exists = false;
                        break;
                    }
                },
            }
        }
        if !exists {
            continue;
        }
        if let Some(fid) = db.lookup(rel, &cqshap_db::Tuple::from(vals)) {
            if db.fact(fid).provenance.is_endogenous() {
                n.insert(fid);
            } else {
                return None;
            }
        }
    }
    Some(n)
}

/// `IsPosRelevant` (Algorithm 2), generalized to polarity-consistent
/// unions: is there `E ⊆ Dn` with `Dx ∪ E ⊭ q` and `Dx ∪ E ∪ {f} ⊨ q`?
///
/// # Errors
/// [`CoreError::NotPolarityConsistent`] /
/// [`CoreError::FactNotEndogenous`] on violated preconditions.
pub fn is_positively_relevant(
    db: &Database,
    q: AnyQuery<'_>,
    f: FactId,
) -> Result<bool, CoreError> {
    check_polarity_consistent(q)?;
    if db.endo_index(f).is_none() {
        return Err(CoreError::FactNotEndogenous {
            fact: db.render_fact(f),
        });
    }
    let negq: Vec<FactId> = negq_endo_facts(db, q);
    let whole = q.compile(db);
    let mut relevant = false;
    for d in disjuncts_of(q) {
        let compiled = CompiledQuery::compile(db, d);
        for_each_positive_homomorphism(db, FactScope::All, &compiled, &mut |m| {
            if !m.matched_facts.contains(&f) {
                return true;
            }
            let Some(n) = negative_hits(db, &compiled, m.assignment) else {
                return true;
            };
            // E = (P ∖ {f}) ∪ (Neg_q(Dn) ∖ N)
            let mut world = World::empty(db);
            for &p in m.matched_facts {
                if p != f && db.fact(p).provenance.is_endogenous() {
                    world.insert(db, p);
                }
            }
            for &g in &negq {
                if !n.contains(&g) && g != f {
                    world.insert(db, g);
                }
            }
            if !whole.satisfied(db, &world) {
                relevant = true;
                return false;
            }
            true
        });
        if relevant {
            return Ok(true);
        }
    }
    Ok(false)
}

/// `IsNegRelevant` (Algorithm 3), generalized to polarity-consistent
/// unions: is there `E ⊆ Dn` with `Dx ∪ E ⊨ q` and `Dx ∪ E ∪ {f} ⊭ q`?
///
/// # Errors
/// Same preconditions as [`is_positively_relevant`].
pub fn is_negatively_relevant(
    db: &Database,
    q: AnyQuery<'_>,
    f: FactId,
) -> Result<bool, CoreError> {
    check_polarity_consistent(q)?;
    if db.endo_index(f).is_none() {
        return Err(CoreError::FactNotEndogenous {
            fact: db.render_fact(f),
        });
    }
    let negq: Vec<FactId> = negq_endo_facts(db, q);
    let whole = q.compile(db);
    let mut relevant = false;
    for d in disjuncts_of(q) {
        let compiled = CompiledQuery::compile(db, d);
        for_each_positive_homomorphism(db, FactScope::All, &compiled, &mut |m| {
            if m.matched_facts.contains(&f) {
                return true;
            }
            let Some(n) = negative_hits(db, &compiled, m.assignment) else {
                return true;
            };
            // E' = P ∪ (Neg_q(Dn) ∖ N) ∪ {f}; witness E = E' ∖ {f}.
            let mut world = World::empty(db);
            for &p in m.matched_facts {
                if db.fact(p).provenance.is_endogenous() {
                    world.insert(db, p);
                }
            }
            for &g in &negq {
                if !n.contains(&g) {
                    world.insert(db, g);
                }
            }
            world.insert(db, f);
            if !whole.satisfied(db, &world) {
                relevant = true;
                return false;
            }
            true
        });
        if relevant {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Is `f` relevant to the (polarity-consistent) query?
pub fn is_relevant(db: &Database, q: AnyQuery<'_>, f: FactId) -> Result<bool, CoreError> {
    Ok(is_positively_relevant(db, q, f)? || is_negatively_relevant(db, q, f)?)
}

/// Is `Shapley(D, q, f) = 0`? Polynomial for polarity-consistent
/// queries, where zeroness coincides with irrelevance (Section 5.2).
pub fn shapley_is_zero(db: &Database, q: AnyQuery<'_>, f: FactId) -> Result<bool, CoreError> {
    Ok(!is_relevant(db, q, f)?)
}

/// Brute-force relevance: enumerates all `E ⊆ Dn ∖ {f}`. Returns
/// `(positively, negatively)` relevant flags. The ground truth for
/// tests, and the only exact option for non-polarity-consistent queries
/// (where the problem is NP-hard by Proposition 5.5).
///
/// # Errors
/// [`CoreError::TooManyEndogenousFacts`] when `|Dn| - 1 > limit`.
pub fn brute_force_relevance(
    db: &Database,
    q: AnyQuery<'_>,
    f: FactId,
    limit: usize,
) -> Result<(bool, bool), CoreError> {
    let target = db
        .endo_index(f)
        .ok_or_else(|| CoreError::FactNotEndogenous {
            fact: db.render_fact(f),
        })?;
    let m = db.endo_count();
    if m - 1 > limit {
        return Err(CoreError::TooManyEndogenousFacts {
            count: m - 1,
            limit,
        });
    }
    let compiled = q.compile(db);
    let others: Vec<usize> = (0..m).filter(|&p| p != target).collect();
    let (mut pos, mut neg) = (false, false);
    for mask in 0u64..(1u64 << others.len()) {
        let mut world = World::empty(db);
        for (bit, &p) in others.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                // cqshap-lint: allow(no-panic-index) -- p enumerates positions of the endo-fact list itself
                world.insert(db, db.endo_facts()[p]);
            }
        }
        let before = compiled.satisfied(db, &world);
        world.insert(db, f);
        let after = compiled.satisfied(db, &world);
        pos |= !before && after;
        neg |= before && !after;
        if pos && neg {
            break;
        }
    }
    Ok((pos, neg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqshap_query::{parse_cq, parse_ucq};

    fn university() -> Database {
        Database::parse(
            "exo Stud(Adam)\nexo Stud(Ben)\nexo Stud(Caroline)\nexo Stud(David)\n\
             endo TA(Adam)\nendo TA(Ben)\nendo TA(David)\n\
             exo Course(OS, EE)\nexo Course(IC, EE)\nexo Course(DB, CS)\nexo Course(AI, CS)\n\
             endo Reg(Adam, OS)\nendo Reg(Adam, AI)\nendo Reg(Ben, OS)\n\
             endo Reg(Caroline, DB)\nendo Reg(Caroline, IC)\n\
             exo Adv(Michael, Adam)\nexo Adv(Michael, Ben)\nexo Adv(Naomi, Caroline)\n\
             exo Adv(Michael, David)\n",
        )
        .unwrap()
    }

    /// Cross-checks the polynomial algorithms against brute force for
    /// every endogenous fact.
    fn cross_check(db: &Database, q: AnyQuery<'_>) {
        for &f in db.endo_facts() {
            let fast_pos = is_positively_relevant(db, q, f).unwrap();
            let fast_neg = is_negatively_relevant(db, q, f).unwrap();
            let (bf_pos, bf_neg) = brute_force_relevance(db, q, f, 24).unwrap();
            assert_eq!(
                fast_pos,
                bf_pos,
                "positive relevance of {}",
                db.render_fact(f)
            );
            assert_eq!(
                fast_neg,
                bf_neg,
                "negative relevance of {}",
                db.render_fact(f)
            );
        }
    }

    #[test]
    fn running_example_q1() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        cross_check(&db, AnyQuery::Cq(&q1));
        // f_t3 = TA(David) is irrelevant (David never registers).
        let ft3 = db.find_fact("TA", &["David"]).unwrap();
        assert!(shapley_is_zero(&db, AnyQuery::Cq(&q1), ft3).unwrap());
        // f_t1 = TA(Adam) is negatively but not positively relevant.
        let ft1 = db.find_fact("TA", &["Adam"]).unwrap();
        assert!(!is_positively_relevant(&db, AnyQuery::Cq(&q1), ft1).unwrap());
        assert!(is_negatively_relevant(&db, AnyQuery::Cq(&q1), ft1).unwrap());
        // f_r4 = Reg(Caroline, DB) is positively relevant.
        let fr4 = db.find_fact("Reg", &["Caroline", "DB"]).unwrap();
        assert!(is_positively_relevant(&db, AnyQuery::Cq(&q1), fr4).unwrap());
        assert!(!is_negatively_relevant(&db, AnyQuery::Cq(&q1), fr4).unwrap());
    }

    #[test]
    fn running_example_q2_and_q3() {
        let db = university();
        let q2 = parse_cq("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')").unwrap();
        cross_check(&db, AnyQuery::Cq(&q2));
        let q3 =
            parse_cq("q3() :- Adv(x, y), Adv(x, z), !TA(y), !TA(z), Reg(y, 'IC'), Reg(z, 'DB')")
                .unwrap();
        // q3 has self-joins but is polarity consistent — the algorithms
        // still apply (Prop. 5.7 needs only polarity consistency).
        cross_check(&db, AnyQuery::Cq(&q3));
    }

    #[test]
    fn non_polarity_consistent_rejected() {
        let db = university();
        let q4 =
            parse_cq("q4() :- Adv(x, y), Adv(x, z), TA(y), !TA(z), Reg(z, w), !Reg(y, w)").unwrap();
        let f = db.find_fact("TA", &["Adam"]).unwrap();
        assert!(matches!(
            is_relevant(&db, AnyQuery::Cq(&q4), f),
            Err(CoreError::NotPolarityConsistent { .. })
        ));
        // Brute force still works.
        let _ = brute_force_relevance(&db, AnyQuery::Cq(&q4), f, 24).unwrap();
    }

    #[test]
    fn example_5_3_relevant_but_zero_shapley() {
        // q() :- R(x,y), ¬R(y,x): R(1,2) is both positively and
        // negatively relevant, and its Shapley value is 0.
        let db = Database::parse("endo R(1, 2)\nendo R(2, 1)\n").unwrap();
        let q = parse_cq("q() :- R(x, y), !R(y, x)").unwrap();
        let f = db.find_fact("R", &["1", "2"]).unwrap();
        let (pos, neg) = brute_force_relevance(&db, AnyQuery::Cq(&q), f, 24).unwrap();
        assert!(pos && neg);
        let v = crate::shapley::shapley_by_permutations(&db, AnyQuery::Cq(&q), f, 9).unwrap();
        assert!(v.is_zero());
        // The polynomial algorithms refuse (R is not polarity consistent).
        assert!(is_relevant(&db, AnyQuery::Cq(&q), f).is_err());
    }

    #[test]
    fn polarity_consistent_union() {
        // Whole-union polarity consistent: R positive in both disjuncts,
        // S negative in the second.
        let db = Database::parse("endo R(a)\nendo R(b)\nendo S(a)\nexo T(a)\n").unwrap();
        let u = parse_ucq("q() :- R(x), !S(x); q() :- R(x), T(x)").unwrap();
        for &f in db.endo_facts() {
            let fast = is_relevant(&db, AnyQuery::Union(&u), f).unwrap();
            let (bp, bn) = brute_force_relevance(&db, AnyQuery::Union(&u), f, 24).unwrap();
            assert_eq!(fast, bp || bn, "{}", db.render_fact(f));
        }
    }

    #[test]
    fn qsat_union_not_polarity_consistent() {
        let db = Database::parse("endo R(0)\n").unwrap();
        let u = parse_ucq(
            "q1() :- C(x1, x2, x3, v1, v2, v3), T(x1, v1), T(x2, v2), T(x3, v3)\n\
             q2() :- V(x), !T(x, 1), !T(x, 0)\n\
             q3() :- T(x, 1), T(x, 0)\n\
             q4() :- R(0)\n",
        )
        .unwrap();
        let f = db.find_fact("R", &["0"]).unwrap();
        assert!(matches!(
            is_relevant(&db, AnyQuery::Union(&u), f),
            Err(CoreError::NotPolarityConsistent { .. })
        ));
    }

    #[test]
    fn zeroness_matches_exact_shapley() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        for &f in db.endo_facts() {
            let zero = shapley_is_zero(&db, AnyQuery::Cq(&q1), f).unwrap();
            let v = crate::shapley::shapley_value(
                &db,
                &q1,
                f,
                &crate::shapley::ShapleyOptions::default(),
            )
            .unwrap();
            assert_eq!(zero, v.is_zero(), "{}", db.render_fact(f));
        }
    }
}
