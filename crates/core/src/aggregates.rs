//! Shapley values for aggregate queries over CQ¬s.
//!
//! The "Remarks" of Section 3: the dichotomy extends to summations over
//! CQ¬s by linearity of expectation. An aggregate `Sum{w | φ(…)}` (or
//! `Count`) decomposes over the candidate answer tuples `a`:
//!
//! ```text
//! Shapley_agg(D, q, f) = Σ_a  weight(a) · Shapley(D, q[head ↦ a], f)
//! ```
//!
//! where `q[head ↦ a]` is the Boolean query with the head variables
//! substituted by `a`'s constants. With negation, a tuple may be an
//! answer in a sub-world but not in the full one, so candidates are the
//! head-projections of homomorphisms of the *positive part* into all of
//! `D` — a superset of the answers in any world.
//!
//! ## Shared plans instead of per-tuple dispatch
//!
//! Head substitution only replaces variables by constants, so every
//! candidate's residual query has the *same structure* — the same
//! atoms, polarities, and variable co-occurrences. Strategy resolution
//! (hierarchy, self-joins, non-hierarchical paths) depends on exactly
//! that structure, never on the constants, so the internal
//! `AggregatePlan` groups
//! the candidates by residual shape and resolves the strategy **once
//! per group** instead of re-classifying per tuple. On top of the plan:
//!
//! * [`aggregate_shapley`] answers one fact with one pair of masked
//!   counting runs per candidate — no per-tuple re-classification, no
//!   database clones;
//! * [`aggregate_report`] answers *all* facts, compiling one batched
//!   [`CompiledCount`] engine per candidate (shared by every fact's
//!   recount) and accumulating the weighted values fact-wise — the
//!   aggregate analogue of [`crate::shapley::shapley_report`].
// cqshap-lint: allow-file(no-panic-index) -- group tables are indexed by ids assigned during prepare

use std::collections::{BTreeSet, HashMap};

use cqshap_db::{ConstId, Database, FactId, World};
use cqshap_engine::{answers, for_each_positive_homomorphism, CompiledQuery, FactScope};
use cqshap_numeric::{BigInt, BigRational};
use cqshap_obs::{phase as obs_phase, Counter, Span};
use cqshap_query::{ConjunctiveQuery, QueryBuilder, Term, Var};

use crate::anyquery::AnyQuery;
use crate::budget::{self, CancelToken};
use crate::compiled::CompiledCount;
use crate::error::CoreError;
use crate::exoshap;
use crate::satcount::{BruteForceCounter, HierarchicalCounter};
use crate::shapley::{
    engine_values, resolve_strategy, shapley_by_permutations_cancel, shapley_via_counts,
    ReportStats, ResolvedStrategy, ShapleyOptions, ShapleyReport,
};

/// The supported aggregate functions.
#[derive(Debug, Clone)]
pub enum AggregateFunction {
    /// `Count{ head | φ }` — each answer weighs 1.
    Count,
    /// `Sum{ w | φ }` — each answer weighs the integer value bound to
    /// the named head variable.
    Sum {
        /// Name of the head variable carrying the weight.
        weight_var: String,
    },
}

impl AggregateFunction {
    fn weight(
        &self,
        db: &Database,
        q: &ConjunctiveQuery,
        tuple: &[ConstId],
    ) -> Result<BigRational, CoreError> {
        match self {
            AggregateFunction::Count => Ok(BigRational::one()),
            AggregateFunction::Sum { weight_var } => {
                let var = q.var_by_name(weight_var).ok_or_else(|| {
                    CoreError::Unsupported(format!("unknown variable {weight_var}"))
                })?;
                let pos = q.head().iter().position(|&h| h == var).ok_or_else(|| {
                    CoreError::Unsupported(format!("{weight_var} is not a head variable"))
                })?;
                let name = db.interner().resolve(tuple[pos]);
                // Parse straight into the arbitrary-precision integer:
                // weight constants are not bounded by any machine width.
                let value: BigInt = name.parse().map_err(|_| {
                    CoreError::Unsupported(format!("weight constant {name:?} is not an integer"))
                })?;
                Ok(BigRational::from_int(value))
            }
        }
    }
}

/// Substitutes the head variables of `q` by the constants of `tuple`,
/// producing the Boolean query `q[head ↦ a]`.
///
/// Constants are injected through [`Term::constant`], which takes the
/// interned name *verbatim* — no datalog quoting or re-tokenization —
/// so database constants whose names collide with parser syntax (a name
/// like `'CS'`, quote characters included) substitute and re-resolve to
/// exactly the same [`ConstId`].
fn substitute_head(
    db: &Database,
    q: &ConjunctiveQuery,
    tuple: &[ConstId],
) -> Result<ConjunctiveQuery, CoreError> {
    let mut builder = QueryBuilder::new(format!("{}_ans", q.name()));
    let subst = |v: Var| -> Option<&str> {
        q.head()
            .iter()
            .position(|&h| h == v)
            .map(|i| db.interner().resolve(tuple[i]))
    };
    for atom in q.atoms() {
        let terms: Vec<Term> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => Term::constant(c),
                Term::Var(v) => match subst(*v) {
                    Some(c) => Term::constant(c),
                    None => Term::Var(builder.var(q.var_name(*v))),
                },
            })
            .collect();
        if atom.negated {
            builder.neg(&atom.relation, terms);
        } else {
            builder.pos(&atom.relation, terms);
        }
    }
    Ok(builder.build()?)
}

/// The candidate answers: head projections of positive-part
/// homomorphisms into all of `D`.
pub fn candidate_answers(db: &Database, q: &ConjunctiveQuery) -> Vec<Vec<ConstId>> {
    let compiled = CompiledQuery::compile(db, q);
    let mut set: BTreeSet<Vec<ConstId>> = BTreeSet::new();
    for_each_positive_homomorphism(db, FactScope::All, &compiled, &mut |m| {
        if let Some(tuple) = compiled
            .head
            .iter()
            .map(|&v| m.assignment[v as usize])
            .collect::<Option<Vec<_>>>()
        {
            set.insert(tuple);
        }
        true
    });
    set.into_iter().collect()
}

/// The aggregate's value over one world (for efficiency checks and
/// end-to-end tests).
pub fn aggregate_value(
    db: &Database,
    world: &World,
    q: &ConjunctiveQuery,
    agg: &AggregateFunction,
) -> Result<BigRational, CoreError> {
    let mut acc = BigRational::zero();
    for a in answers(db, world, q) {
        acc += &agg.weight(db, q, &a)?;
    }
    Ok(acc)
}

/// One weighted candidate of an aggregate decomposition.
pub(crate) struct Candidate {
    pub(crate) weight: BigRational,
    pub(crate) query: ConjunctiveQuery,
}

/// Candidates sharing one residual query shape and therefore one
/// resolved strategy.
pub(crate) struct ShapeGroup {
    pub(crate) resolved: ResolvedStrategy,
    pub(crate) candidates: Vec<Candidate>,
}

/// The shared decomposition of an aggregate query: weighted residual
/// Boolean queries grouped by shape, each group classified once, with
/// provably-zero candidates pruned up front.
pub(crate) struct AggregatePlan {
    pub(crate) groups: Vec<ShapeGroup>,
    /// Candidates with nonzero weight before pruning — an obs counter,
    /// so the tally is locally readable (for [`ReportStats`]) *and*
    /// forwarded to the installed recorder under
    /// `aggregate.candidates`.
    pub(crate) candidates_total: Counter,
    /// Candidates skipped because their value vector is identically
    /// zero (no endogenous support, or every supported fact irrelevant).
    /// Reported under `aggregate.pruned`.
    pub(crate) candidates_pruned: Counter,
}

/// One atom of a [`ShapeKey`]: relation, polarity, and per-position
/// variable index (`None` for constants).
type AtomShape = (String, bool, Vec<Option<u32>>);

/// The shape signature of a residual query: every structural input of
/// strategy resolution (relations, polarities, variable positions,
/// which positions are constants) with the constant *values* abstracted
/// away. Candidates of one aggregate query always share it — kept as an
/// explicit key so grouping stays correct if substitution ever becomes
/// shape-dependent.
type ShapeKey = Vec<AtomShape>;

fn shape_key(q: &ConjunctiveQuery) -> ShapeKey {
    q.atoms()
        .iter()
        .map(|a| {
            (
                a.relation.clone(),
                a.negated,
                a.terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => Some(v.0),
                        Term::Const(_) => None,
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Cap on the endogenous scope size for the per-fact relevance
/// pre-pass: beyond it, checking every fact costs more than compiling
/// the candidate's engine, so only the free no-endogenous-support test
/// applies.
const RELEVANCE_PRUNE_LIMIT: usize = 16;

/// Is the candidate's whole value vector provably zero? Two sound
/// tests (the aggregate-candidate-pruning pass of the ROADMAP):
///
/// 1. *No endogenous support*: the residual query's scopes contain no
///    endogenous fact (or a positive atom can never match), so its
///    answer is the same in every world and every Shapley value is 0.
/// 2. *All supported facts irrelevant*: for polarity-consistent
///    residuals, zero Shapley coincides with irrelevance (Section 5.2),
///    so [`crate::relevance::is_relevant`] over the scoped endogenous
///    facts decides zeroness exactly.
fn candidate_is_zero(db: &Database, qa: &ConjunctiveQuery) -> bool {
    // Endogenous facts matching some atom pattern — the only facts that
    // can influence the residual's answer. Unlike the counting layer's
    // query resolution, this makes no structural demands (candidates
    // may be non-hierarchical).
    let mut endo: Vec<FactId> = Vec::new();
    for atom in qa.atoms() {
        let Some(rel) = db.schema().id(&atom.relation) else {
            if atom.negated {
                continue; // the negation can never fire
            }
            return true; // a positive atom can never match: always false
        };
        if db.schema().arity(rel) != atom.terms.len() {
            return false; // malformed: let the engine raise its error
        }
        let mut unknown_const = false;
        let consts: Vec<Option<ConstId>> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(name) => {
                    let c = db.interner().get(name);
                    unknown_const |= c.is_none();
                    c
                }
                Term::Var(_) => None,
            })
            .collect();
        if unknown_const {
            if atom.negated {
                continue;
            }
            return true;
        }
        'facts: for &f in db.relation_facts(rel) {
            if !db.fact(f).provenance.is_endogenous() {
                continue;
            }
            let values = db.fact(f).tuple.values();
            let mut bound: Vec<(u32, ConstId)> = Vec::new();
            for (i, t) in atom.terms.iter().enumerate() {
                match t {
                    Term::Const(_) => {
                        if consts[i] != Some(values[i]) {
                            continue 'facts;
                        }
                    }
                    Term::Var(v) => match bound.iter().find(|(bv, _)| *bv == v.0) {
                        Some((_, bval)) => {
                            if *bval != values[i] {
                                continue 'facts;
                            }
                        }
                        None => bound.push((v.0, values[i])),
                    },
                }
            }
            endo.push(f);
        }
    }
    if endo.is_empty() {
        return true;
    }
    endo.len() <= RELEVANCE_PRUNE_LIMIT
        && cqshap_query::is_polarity_consistent(qa)
        && endo.iter().all(|&f| {
            matches!(
                crate::relevance::is_relevant(db, AnyQuery::Cq(qa), f),
                Ok(false)
            )
        })
}

impl AggregatePlan {
    pub(crate) fn prepare(
        db: &Database,
        q: &ConjunctiveQuery,
        agg: &AggregateFunction,
        options: &ShapleyOptions,
    ) -> Result<AggregatePlan, CoreError> {
        if q.head().is_empty() {
            return Err(CoreError::Unsupported(
                "aggregate queries need head variables; use shapley_value for Boolean queries"
                    .into(),
            ));
        }
        let mut keys: HashMap<ShapeKey, usize> = HashMap::new();
        let mut groups: Vec<(ConjunctiveQuery, Vec<Candidate>)> = Vec::new();
        let candidates_total = Counter::new(obs_phase::CTR_AGG_CANDIDATES);
        let candidates_pruned = Counter::new(obs_phase::CTR_AGG_PRUNED);
        for a in candidate_answers(db, q) {
            let weight = agg.weight(db, q, &a)?;
            if weight.is_zero() {
                continue;
            }
            candidates_total.incr();
            let qa = substitute_head(db, q, &a)?;
            if candidate_is_zero(db, &qa) {
                candidates_pruned.incr();
                continue;
            }
            let next = groups.len();
            let slot = *keys.entry(shape_key(&qa)).or_insert(next);
            if slot == groups.len() {
                groups.push((qa.clone(), Vec::new()));
            }
            groups[slot].1.push(Candidate { weight, query: qa });
        }
        let groups = groups
            .into_iter()
            .map(|(representative, candidates)| {
                // One classification per shape: resolution inspects only
                // the structure the key captures, so it holds for every
                // candidate of the group.
                let resolved = resolve_strategy(db, &representative, options)?;
                Ok(ShapeGroup {
                    resolved,
                    candidates,
                })
            })
            .collect::<Result<Vec<_>, CoreError>>()?;
        Ok(AggregatePlan {
            groups,
            candidates_total,
            candidates_pruned,
        })
    }

    /// The pruning counters as report stats — a view over the same obs
    /// counters the trace aggregates, so there is one stats mechanism.
    pub(crate) fn stats(&self) -> ReportStats {
        ReportStats {
            aggregate_candidates: self.candidates_total.get() as usize,
            pruned_candidates: self.candidates_pruned.get() as usize,
        }
    }
}

/// One candidate's Shapley value for one fact, under an
/// already-resolved strategy.
pub(crate) fn candidate_value(
    db: &Database,
    resolved: ResolvedStrategy,
    query: &ConjunctiveQuery,
    f: FactId,
    options: &ShapleyOptions,
    cancel: Option<&CancelToken>,
) -> Result<BigRational, CoreError> {
    match resolved {
        ResolvedStrategy::Hierarchical => {
            shapley_via_counts(db, AnyQuery::Cq(query), f, &HierarchicalCounter)
        }
        ResolvedStrategy::ExoShap => {
            let outcome = exoshap::rewrite(db, query, options.tuple_budget)?;
            if outcome.always_false {
                return Ok(BigRational::zero());
            }
            shapley_via_counts(
                &outcome.db,
                AnyQuery::Cq(&outcome.query),
                f,
                &HierarchicalCounter,
            )
        }
        ResolvedStrategy::BruteForce => {
            let counter = BruteForceCounter::with_limit(options.brute_force_limit)
                .with_threads(options.threads);
            let counter = match cancel {
                Some(token) => counter.with_cancel(token.clone()),
                None => counter,
            };
            shapley_via_counts(db, AnyQuery::Cq(query), f, &counter)
        }
        ResolvedStrategy::Permutations => shapley_by_permutations_cancel(
            db,
            AnyQuery::Cq(query),
            f,
            options.permutation_limit,
            cancel,
        ),
    }
}

/// `Shapley_agg(D, q, f)` by linearity over candidate answers, through
/// the shared `AggregatePlan` (strategy resolved once per residual
/// shape, not once per tuple).
///
/// # Errors
/// Anything the counting layer raises for a substituted Boolean query,
/// plus [`CoreError::Unsupported`] for malformed aggregate specs.
pub fn aggregate_shapley(
    db: &Database,
    q: &ConjunctiveQuery,
    agg: &AggregateFunction,
    f: FactId,
    options: &ShapleyOptions,
) -> Result<BigRational, CoreError> {
    let plan = AggregatePlan::prepare(db, q, agg, options)?;
    // One armed token for the whole call: the deadline bounds the sum
    // over candidates, not each candidate.
    let cancel = options.cancel_token();
    let mut acc = BigRational::zero();
    for group in &plan.groups {
        for c in &group.candidates {
            if let Some(token) = &cancel {
                budget::check(token, cqshap_obs::phase::AGGREGATE)?;
            }
            let v = candidate_value(db, group.resolved, &c.query, f, options, cancel.as_ref())?;
            acc += &(&c.weight * &v);
        }
    }
    Ok(acc)
}

/// How one prepared candidate is served: a compiled engine (possibly
/// against its own rewritten database), a constant zero, or per-fact
/// enumeration.
pub(crate) enum CandidateEngine {
    /// Hierarchical residual: the engine runs against the session's db.
    Direct(CompiledCount),
    /// `ExoShap` residual: the engine runs against the rewritten db.
    Rewritten {
        db: Box<Database>,
        engine: CompiledCount,
    },
    /// The rewriting proved the residual always false.
    AlwaysFalse,
    /// Brute-force strategies: evaluated per fact, no compiled state.
    PerFact,
}

/// A candidate with its prepared engine.
pub(crate) struct PreparedCandidate {
    pub(crate) weight: BigRational,
    pub(crate) query: ConjunctiveQuery,
    pub(crate) engine: CandidateEngine,
}

/// An [`AggregatePlan`] with every tractable candidate's batched
/// engine compiled once — the aggregate state behind
/// [`crate::session::ShapleySession::prepare_aggregate`].
pub(crate) struct AggregateEngines {
    pub(crate) groups: Vec<(ResolvedStrategy, Vec<PreparedCandidate>)>,
    pub(crate) stats: ReportStats,
}

impl AggregateEngines {
    pub(crate) fn prepare(
        db: &Database,
        q: &ConjunctiveQuery,
        agg: &AggregateFunction,
        options: &ShapleyOptions,
        cancel: Option<&CancelToken>,
    ) -> Result<Self, CoreError> {
        let _span = Span::enter(obs_phase::AGGREGATE_PREPARE);
        let compile = |target: &Database, query: &ConjunctiveQuery| match cancel {
            Some(token) => {
                CompiledCount::compile_with_cancel(target, query, options.threads, token.clone())
            }
            None => CompiledCount::compile_with_threads(target, query, options.threads),
        };
        let plan = AggregatePlan::prepare(db, q, agg, options)?;
        let stats = plan.stats();
        let mut groups = Vec::with_capacity(plan.groups.len());
        for group in plan.groups {
            let mut prepared = Vec::with_capacity(group.candidates.len());
            for c in group.candidates {
                if let Some(token) = cancel {
                    budget::check_partial(
                        token,
                        cqshap_obs::phase::AGGREGATE_PREPARE,
                        Some(prepared.len()),
                    )?;
                }
                let engine = match group.resolved {
                    ResolvedStrategy::Hierarchical => {
                        CandidateEngine::Direct(compile(db, &c.query)?)
                    }
                    ResolvedStrategy::ExoShap => {
                        let outcome = exoshap::rewrite(db, &c.query, options.tuple_budget)?;
                        if outcome.always_false {
                            CandidateEngine::AlwaysFalse
                        } else {
                            let engine = compile(&outcome.db, &outcome.query)?;
                            CandidateEngine::Rewritten {
                                db: Box::new(outcome.db),
                                engine,
                            }
                        }
                    }
                    ResolvedStrategy::BruteForce | ResolvedStrategy::Permutations => {
                        CandidateEngine::PerFact
                    }
                };
                prepared.push(PreparedCandidate {
                    weight: c.weight,
                    query: c.query,
                    engine,
                });
            }
            groups.push((group.resolved, prepared));
        }
        Ok(AggregateEngines { groups, stats })
    }

    /// The weighted per-fact value vector over `facts`, engine-backed
    /// wherever an engine was prepared.
    pub(crate) fn values(
        &self,
        db: &Database,
        facts: &[FactId],
        options: &ShapleyOptions,
        cancel: Option<&CancelToken>,
    ) -> Result<Vec<BigRational>, CoreError> {
        let mut acc = vec![BigRational::zero(); facts.len()];
        for (resolved, candidates) in &self.groups {
            match resolved {
                ResolvedStrategy::Hierarchical | ResolvedStrategy::ExoShap => {
                    for c in candidates {
                        if let Some(token) = cancel {
                            budget::check(token, cqshap_obs::phase::AGGREGATE)?;
                        }
                        match &c.engine {
                            CandidateEngine::Direct(engine) => weighted_add(
                                &mut acc,
                                &c.weight,
                                engine_values(db, engine, facts, options.threads)?,
                            ),
                            CandidateEngine::Rewritten { db: rw_db, engine } => weighted_add(
                                &mut acc,
                                &c.weight,
                                engine_values(rw_db, engine, facts, options.threads)?,
                            ),
                            CandidateEngine::AlwaysFalse => {}
                            // cqshap-lint: allow(no-panic) -- per-fact candidates were routed away by the dispatch above
                            CandidateEngine::PerFact => unreachable!("tractable group"),
                        }
                    }
                }
                ResolvedStrategy::BruteForce | ResolvedStrategy::Permutations => {
                    let values = crate::parallel::par_map_with(options.threads, facts.len(), |i| {
                        let mut v = BigRational::zero();
                        for c in candidates {
                            let cv = candidate_value(
                                db, *resolved, &c.query, facts[i], options, cancel,
                            )?;
                            v += &(&c.weight * &cv);
                        }
                        Ok::<BigRational, CoreError>(v)
                    })
                    .into_iter()
                    .collect::<Result<Vec<_>, _>>()?;
                    weighted_add(&mut acc, &BigRational::one(), values);
                }
            }
        }
        Ok(acc)
    }
}

/// `agg(D) − agg(Dx)` — the expected total of an aggregate report.
pub(crate) fn aggregate_efficiency_target(
    db: &Database,
    q: &ConjunctiveQuery,
    agg: &AggregateFunction,
) -> Result<BigRational, CoreError> {
    let full = aggregate_value(db, &World::full(db), q, agg)?;
    let empty = aggregate_value(db, &World::empty(db), q, agg)?;
    Ok(full - empty)
}

/// `Shapley_agg(D, q, f)` for *every* endogenous fact at once: one
/// batched [`CompiledCount`] engine per candidate (compiled once,
/// shared by every fact's recount) on the tractable strategies, with
/// the weighted values accumulated fact-wise. The report's expected
/// total is `agg(D) − agg(Dx)`, which the value total must equal by
/// linearity of the efficiency axiom; its
/// [`ShapleyReport::stats`] carry the candidate-pruning counters.
///
/// A thin compatibility wrapper over
/// [`crate::session::ShapleySession::prepare_aggregate`].
pub fn aggregate_report(
    db: &Database,
    q: &ConjunctiveQuery,
    agg: &AggregateFunction,
    options: &ShapleyOptions,
) -> Result<ShapleyReport, CoreError> {
    crate::session::ShapleySession::prepare_aggregate(db, q, agg.clone(), options)?.report()
}

/// `acc[i] += weight · values[i]`.
fn weighted_add(acc: &mut [BigRational], weight: &BigRational, values: Vec<BigRational>) {
    for (a, v) in acc.iter_mut().zip(values) {
        if !v.is_zero() {
            *a += &(weight * &v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqshap_query::parse_cq;

    /// The introduction's exports scenario:
    /// Count{c | Farmer(m), Export(m,p,c), ¬Grows(c,p)}.
    fn exports() -> Database {
        Database::parse(
            "endo Farmer(miller)\nendo Farmer(smith)\n\
             exo Export(miller, wheat, norway)\n\
             exo Export(miller, rice, egypt)\n\
             exo Export(smith, rice, norway)\n\
             endo Grows(norway, wheat)\nendo Grows(egypt, rice)\n",
        )
        .unwrap()
    }

    #[test]
    fn count_aggregate_decomposes() {
        let db = exports();
        let q = parse_cq("q(c) :- Farmer(m), Export(m, p, c), !Grows(c, p)").unwrap();
        let agg = AggregateFunction::Count;
        let opts = ShapleyOptions::default();

        // Efficiency by linearity: Σ_f Shapley_agg(f) = agg(D) − agg(Dx).
        let full = aggregate_value(&db, &World::full(&db), &q, &agg).unwrap();
        let empty = aggregate_value(&db, &World::empty(&db), &q, &agg).unwrap();
        let mut total = BigRational::zero();
        for &f in db.endo_facts() {
            total += &aggregate_shapley(&db, &q, &agg, f, &opts).unwrap();
        }
        assert_eq!(total, &full - &empty);

        // The batched report computes the same values and checks the
        // same identity internally.
        let report = aggregate_report(&db, &q, &agg, &opts).unwrap();
        assert!(report.efficiency_holds());
        assert_eq!(report.expected_total, full - empty);
        for &f in db.endo_facts() {
            assert_eq!(
                report.entry(f).unwrap().value,
                aggregate_shapley(&db, &q, &agg, f, &opts).unwrap(),
                "{}",
                db.render_fact(f)
            );
        }
    }

    #[test]
    fn count_candidates_include_sub_world_answers() {
        let db = exports();
        let q = parse_cq("q(c) :- Farmer(m), Export(m, p, c), !Grows(c, p)").unwrap();
        let candidates = candidate_answers(&db, &q);
        // Norway and Egypt both appear as candidates (Egypt only answers
        // in worlds where Grows(egypt, rice) is absent).
        let mut names: Vec<&str> = candidates
            .iter()
            .map(|t| db.interner().resolve(t[0]))
            .collect();
        names.sort();
        assert_eq!(names, vec!["egypt", "norway"]);
    }

    #[test]
    fn sum_aggregate_weights() {
        // Sum of profits r over exports to countries not growing p:
        // Sum{r | Export(p,c), ¬Grows(c,p), Profit(c,p,r)}.
        let db = Database::parse(
            "exo Export(wheat, norway)\nexo Export(rice, egypt)\n\
             endo Grows(egypt, rice)\n\
             exo Profit(norway, wheat, 10)\nexo Profit(egypt, rice, 5)\n",
        )
        .unwrap();
        let q = parse_cq("q(r) :- Export(p, c), !Grows(c, p), Profit(c, p, r)").unwrap();
        let agg = AggregateFunction::Sum {
            weight_var: "r".into(),
        };
        let full = aggregate_value(&db, &World::full(&db), &q, &agg).unwrap();
        let empty = aggregate_value(&db, &World::empty(&db), &q, &agg).unwrap();
        assert_eq!(full, BigRational::from(10i64));
        assert_eq!(empty, BigRational::from(15i64));
        // The single endogenous fact Grows(egypt, rice) carries the whole
        // difference: Shapley = -5.
        let f = db.find_fact("Grows", &["egypt", "rice"]).unwrap();
        let v = aggregate_shapley(&db, &q, &agg, f, &ShapleyOptions::default()).unwrap();
        assert_eq!(v, BigRational::from(-5i64));
    }

    #[test]
    fn sum_weights_beyond_i64() {
        // A 20-digit weight constant (> 2^63): the weight must flow
        // through BigInt, not a machine integer.
        let db = Database::parse(
            "exo Export(wheat, norway)\n\
             endo Grows(norway, wheat)\n\
             exo Profit(norway, wheat, 12345678901234567890)\n",
        )
        .unwrap();
        let q = parse_cq("q(r) :- Export(p, c), !Grows(c, p), Profit(c, p, r)").unwrap();
        let agg = AggregateFunction::Sum {
            weight_var: "r".into(),
        };
        let empty = aggregate_value(&db, &World::empty(&db), &q, &agg).unwrap();
        assert_eq!(empty.to_string(), "12345678901234567890");
        let f = db.find_fact("Grows", &["norway", "wheat"]).unwrap();
        let v = aggregate_shapley(&db, &q, &agg, f, &ShapleyOptions::default()).unwrap();
        assert_eq!(v.to_string(), "-12345678901234567890");
        // Negative weights round-trip too.
        let db2 = Database::parse(
            "exo Export(wheat, norway)\n\
             endo Grows(norway, wheat)\n\
             exo Profit(norway, wheat, -98765432109876543210)\n",
        )
        .unwrap();
        let f2 = db2.find_fact("Grows", &["norway", "wheat"]).unwrap();
        let v2 = aggregate_shapley(&db2, &q, &agg, f2, &ShapleyOptions::default()).unwrap();
        assert_eq!(v2.to_string(), "98765432109876543210");
    }

    #[test]
    fn quoted_constant_names_substitute_verbatim() {
        // A database constant whose *name* contains quote characters is
        // legal ('CS' here — the db parser treats quotes as ordinary
        // token characters, while the query parser would strip them).
        // Head substitution must round-trip it to the same ConstId, so
        // the substituted query counts exactly like the world-level
        // aggregate says.
        let mut db = Database::new();
        db.add_exo("Course", &["db", "'CS'"]).unwrap();
        db.add_exo("Course", &["os", "EE"]).unwrap();
        db.add_endo("Reg", &["alice", "db"]).unwrap();
        db.add_endo("Reg", &["bob", "os"]).unwrap();
        let q = parse_cq("q(f) :- Reg(s, c), Course(c, f)").unwrap();
        let agg = AggregateFunction::Count;
        let opts = ShapleyOptions::default();
        let report = aggregate_report(&db, &q, &agg, &opts).unwrap();
        assert!(report.efficiency_holds());
        // Reg(alice, db) is the only fact driving the 'CS' candidate:
        // its aggregate Shapley value is exactly 1 (one answer gained).
        let f = db.find_fact("Reg", &["alice", "db"]).unwrap();
        assert_eq!(
            aggregate_shapley(&db, &q, &agg, f, &opts).unwrap(),
            BigRational::one()
        );
        // The substituted queries resolve the quoted name verbatim: the
        // candidate set contains the interned 'CS' constant itself.
        let candidates = candidate_answers(&db, &q);
        let names: Vec<&str> = candidates
            .iter()
            .map(|t| db.interner().resolve(t[0]))
            .collect();
        assert!(names.contains(&"'CS'"), "{names:?}");
    }

    #[test]
    fn boolean_query_rejected() {
        let db = exports();
        let q = parse_cq("q() :- Farmer(m)").unwrap();
        let f = db.find_fact("Farmer", &["miller"]).unwrap();
        assert!(matches!(
            aggregate_shapley(&db, &q, &AggregateFunction::Count, f, &Default::default()),
            Err(CoreError::Unsupported(_))
        ));
        assert!(matches!(
            aggregate_report(&db, &q, &AggregateFunction::Count, &Default::default()),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn bad_weight_specs_rejected() {
        let db = exports();
        let q = parse_cq("q(c) :- Farmer(m), Export(m, p, c), !Grows(c, p)").unwrap();
        let f = db.find_fact("Farmer", &["miller"]).unwrap();
        for bad in ["nope", "m"] {
            let agg = AggregateFunction::Sum {
                weight_var: bad.into(),
            };
            assert!(matches!(
                aggregate_shapley(&db, &q, &agg, f, &Default::default()),
                Err(CoreError::Unsupported(_))
            ));
        }
        // Non-integer weights.
        let agg = AggregateFunction::Sum {
            weight_var: "c".into(),
        };
        assert!(matches!(
            aggregate_shapley(&db, &q, &agg, f, &Default::default()),
            Err(CoreError::Unsupported(_))
        ));
    }
}
