//! Shapley values for aggregate queries over CQ¬s.
//!
//! The "Remarks" of Section 3: the dichotomy extends to summations over
//! CQ¬s by linearity of expectation. An aggregate `Sum{w | φ(…)}` (or
//! `Count`) decomposes over the candidate answer tuples `a`:
//!
//! ```text
//! Shapley_agg(D, q, f) = Σ_a  weight(a) · Shapley(D, q[head ↦ a], f)
//! ```
//!
//! where `q[head ↦ a]` is the Boolean query with the head variables
//! substituted by `a`'s constants. With negation, a tuple may be an
//! answer in a sub-world but not in the full one, so candidates are the
//! head-projections of homomorphisms of the *positive part* into all of
//! `D` — a superset of the answers in any world.
//!
//! ## Shared plans instead of per-tuple dispatch
//!
//! Head substitution only replaces variables by constants, so every
//! candidate's residual query has the *same structure* — the same
//! atoms, polarities, and variable co-occurrences. Strategy resolution
//! (hierarchy, self-joins, non-hierarchical paths) depends on exactly
//! that structure, never on the constants, so [`AggregatePlan`] groups
//! the candidates by residual shape and resolves the strategy **once
//! per group** instead of re-classifying per tuple. On top of the plan:
//!
//! * [`aggregate_shapley`] answers one fact with one pair of masked
//!   counting runs per candidate — no per-tuple re-classification, no
//!   database clones;
//! * [`aggregate_report`] answers *all* facts, compiling one batched
//!   [`CompiledCount`] engine per candidate (shared by every fact's
//!   recount) and accumulating the weighted values fact-wise — the
//!   aggregate analogue of [`crate::shapley::shapley_report`].

use std::collections::{BTreeSet, HashMap};

use cqshap_db::{ConstId, Database, FactId, World};
use cqshap_engine::{answers, for_each_positive_homomorphism, CompiledQuery, FactScope};
use cqshap_numeric::{BigInt, BigRational};
use cqshap_query::{ConjunctiveQuery, QueryBuilder, Term, Var};

use crate::anyquery::AnyQuery;
use crate::error::CoreError;
use crate::exoshap;
use crate::satcount::{BruteForceCounter, HierarchicalCounter};
use crate::shapley::{
    batched_values, resolve_strategy, shapley_by_permutations, shapley_via_counts, Resolved,
    ShapleyOptions, ShapleyReport,
};

/// The supported aggregate functions.
#[derive(Debug, Clone)]
pub enum AggregateFunction {
    /// `Count{ head | φ }` — each answer weighs 1.
    Count,
    /// `Sum{ w | φ }` — each answer weighs the integer value bound to
    /// the named head variable.
    Sum {
        /// Name of the head variable carrying the weight.
        weight_var: String,
    },
}

impl AggregateFunction {
    fn weight(
        &self,
        db: &Database,
        q: &ConjunctiveQuery,
        tuple: &[ConstId],
    ) -> Result<BigRational, CoreError> {
        match self {
            AggregateFunction::Count => Ok(BigRational::one()),
            AggregateFunction::Sum { weight_var } => {
                let var = q.var_by_name(weight_var).ok_or_else(|| {
                    CoreError::Unsupported(format!("unknown variable {weight_var}"))
                })?;
                let pos = q.head().iter().position(|&h| h == var).ok_or_else(|| {
                    CoreError::Unsupported(format!("{weight_var} is not a head variable"))
                })?;
                let name = db.interner().resolve(tuple[pos]);
                // Parse straight into the arbitrary-precision integer:
                // weight constants are not bounded by any machine width.
                let value: BigInt = name.parse().map_err(|_| {
                    CoreError::Unsupported(format!("weight constant {name:?} is not an integer"))
                })?;
                Ok(BigRational::from_int(value))
            }
        }
    }
}

/// Substitutes the head variables of `q` by the constants of `tuple`,
/// producing the Boolean query `q[head ↦ a]`.
///
/// Constants are injected through [`Term::constant`], which takes the
/// interned name *verbatim* — no datalog quoting or re-tokenization —
/// so database constants whose names collide with parser syntax (a name
/// like `'CS'`, quote characters included) substitute and re-resolve to
/// exactly the same [`ConstId`].
fn substitute_head(
    db: &Database,
    q: &ConjunctiveQuery,
    tuple: &[ConstId],
) -> Result<ConjunctiveQuery, CoreError> {
    let mut builder = QueryBuilder::new(format!("{}_ans", q.name()));
    let subst = |v: Var| -> Option<&str> {
        q.head()
            .iter()
            .position(|&h| h == v)
            .map(|i| db.interner().resolve(tuple[i]))
    };
    for atom in q.atoms() {
        let terms: Vec<Term> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => Term::constant(c),
                Term::Var(v) => match subst(*v) {
                    Some(c) => Term::constant(c),
                    None => Term::Var(builder.var(q.var_name(*v))),
                },
            })
            .collect();
        if atom.negated {
            builder.neg(&atom.relation, terms);
        } else {
            builder.pos(&atom.relation, terms);
        }
    }
    Ok(builder.build()?)
}

/// The candidate answers: head projections of positive-part
/// homomorphisms into all of `D`.
pub fn candidate_answers(db: &Database, q: &ConjunctiveQuery) -> Vec<Vec<ConstId>> {
    let compiled = CompiledQuery::compile(db, q);
    let mut set: BTreeSet<Vec<ConstId>> = BTreeSet::new();
    for_each_positive_homomorphism(db, FactScope::All, &compiled, &mut |m| {
        if let Some(tuple) = compiled
            .head
            .iter()
            .map(|&v| m.assignment[v as usize])
            .collect::<Option<Vec<_>>>()
        {
            set.insert(tuple);
        }
        true
    });
    set.into_iter().collect()
}

/// The aggregate's value over one world (for efficiency checks and
/// end-to-end tests).
pub fn aggregate_value(
    db: &Database,
    world: &World,
    q: &ConjunctiveQuery,
    agg: &AggregateFunction,
) -> Result<BigRational, CoreError> {
    let mut acc = BigRational::zero();
    for a in answers(db, world, q) {
        acc += &agg.weight(db, q, &a)?;
    }
    Ok(acc)
}

/// One weighted candidate of an aggregate decomposition.
struct Candidate {
    weight: BigRational,
    query: ConjunctiveQuery,
}

/// Candidates sharing one residual query shape and therefore one
/// resolved strategy.
struct ShapeGroup {
    resolved: Resolved,
    candidates: Vec<Candidate>,
}

/// The shared decomposition of an aggregate query: weighted residual
/// Boolean queries grouped by shape, each group classified once.
struct AggregatePlan {
    groups: Vec<ShapeGroup>,
}

/// One atom of a [`ShapeKey`]: relation, polarity, and per-position
/// variable index (`None` for constants).
type AtomShape = (String, bool, Vec<Option<u32>>);

/// The shape signature of a residual query: every structural input of
/// strategy resolution (relations, polarities, variable positions,
/// which positions are constants) with the constant *values* abstracted
/// away. Candidates of one aggregate query always share it — kept as an
/// explicit key so grouping stays correct if substitution ever becomes
/// shape-dependent.
type ShapeKey = Vec<AtomShape>;

fn shape_key(q: &ConjunctiveQuery) -> ShapeKey {
    q.atoms()
        .iter()
        .map(|a| {
            (
                a.relation.clone(),
                a.negated,
                a.terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => Some(v.0),
                        Term::Const(_) => None,
                    })
                    .collect(),
            )
        })
        .collect()
}

impl AggregatePlan {
    fn prepare(
        db: &Database,
        q: &ConjunctiveQuery,
        agg: &AggregateFunction,
        options: &ShapleyOptions,
    ) -> Result<AggregatePlan, CoreError> {
        if q.head().is_empty() {
            return Err(CoreError::Unsupported(
                "aggregate queries need head variables; use shapley_value for Boolean queries"
                    .into(),
            ));
        }
        let mut keys: HashMap<ShapeKey, usize> = HashMap::new();
        let mut groups: Vec<(ConjunctiveQuery, Vec<Candidate>)> = Vec::new();
        for a in candidate_answers(db, q) {
            let weight = agg.weight(db, q, &a)?;
            if weight.is_zero() {
                continue;
            }
            let qa = substitute_head(db, q, &a)?;
            let next = groups.len();
            let slot = *keys.entry(shape_key(&qa)).or_insert(next);
            if slot == groups.len() {
                groups.push((qa.clone(), Vec::new()));
            }
            groups[slot].1.push(Candidate { weight, query: qa });
        }
        let groups = groups
            .into_iter()
            .map(|(representative, candidates)| {
                // One classification per shape: resolution inspects only
                // the structure the key captures, so it holds for every
                // candidate of the group.
                let resolved = resolve_strategy(db, &representative, options)?;
                Ok(ShapeGroup {
                    resolved,
                    candidates,
                })
            })
            .collect::<Result<Vec<_>, CoreError>>()?;
        Ok(AggregatePlan { groups })
    }
}

/// One candidate's Shapley value for one fact, under an
/// already-resolved strategy.
fn candidate_value(
    db: &Database,
    resolved: Resolved,
    c: &Candidate,
    f: FactId,
    options: &ShapleyOptions,
) -> Result<BigRational, CoreError> {
    match resolved {
        Resolved::Hierarchical => {
            shapley_via_counts(db, AnyQuery::Cq(&c.query), f, &HierarchicalCounter)
        }
        Resolved::ExoShap => {
            let outcome = exoshap::rewrite(db, &c.query, options.tuple_budget)?;
            if outcome.always_false {
                return Ok(BigRational::zero());
            }
            shapley_via_counts(
                &outcome.db,
                AnyQuery::Cq(&outcome.query),
                f,
                &HierarchicalCounter,
            )
        }
        Resolved::BruteForce => shapley_via_counts(
            db,
            AnyQuery::Cq(&c.query),
            f,
            &BruteForceCounter {
                limit: options.brute_force_limit,
            },
        ),
        Resolved::Permutations => {
            shapley_by_permutations(db, AnyQuery::Cq(&c.query), f, options.permutation_limit)
        }
    }
}

/// `Shapley_agg(D, q, f)` by linearity over candidate answers, through
/// the shared [`AggregatePlan`] (strategy resolved once per residual
/// shape, not once per tuple).
///
/// # Errors
/// Anything the counting layer raises for a substituted Boolean query,
/// plus [`CoreError::Unsupported`] for malformed aggregate specs.
pub fn aggregate_shapley(
    db: &Database,
    q: &ConjunctiveQuery,
    agg: &AggregateFunction,
    f: FactId,
    options: &ShapleyOptions,
) -> Result<BigRational, CoreError> {
    let plan = AggregatePlan::prepare(db, q, agg, options)?;
    let mut acc = BigRational::zero();
    for group in &plan.groups {
        for c in &group.candidates {
            let v = candidate_value(db, group.resolved, c, f, options)?;
            acc += &(&c.weight * &v);
        }
    }
    Ok(acc)
}

/// `Shapley_agg(D, q, f)` for *every* endogenous fact at once: one
/// batched [`CompiledCount`] engine per candidate (compiled once,
/// shared by every fact's recount) on the tractable strategies, with
/// the weighted values accumulated fact-wise. The report's expected
/// total is `agg(D) − agg(Dx)`, which the value total must equal by
/// linearity of the efficiency axiom.
///
/// [`CompiledCount`]: crate::compiled::CompiledCount
pub fn aggregate_report(
    db: &Database,
    q: &ConjunctiveQuery,
    agg: &AggregateFunction,
    options: &ShapleyOptions,
) -> Result<ShapleyReport, CoreError> {
    let plan = AggregatePlan::prepare(db, q, agg, options)?;
    let facts = db.endo_facts();
    let mut acc = vec![BigRational::zero(); facts.len()];
    for group in &plan.groups {
        match group.resolved {
            Resolved::Hierarchical => {
                for c in &group.candidates {
                    weighted_add(&mut acc, &c.weight, batched_values(db, &c.query, facts)?);
                }
            }
            Resolved::ExoShap => {
                for c in &group.candidates {
                    let outcome = exoshap::rewrite(db, &c.query, options.tuple_budget)?;
                    if outcome.always_false {
                        continue;
                    }
                    weighted_add(
                        &mut acc,
                        &c.weight,
                        batched_values(&outcome.db, &outcome.query, facts)?,
                    );
                }
            }
            Resolved::BruteForce | Resolved::Permutations => {
                let values = crate::parallel::par_map(facts.len(), |i| {
                    let mut v = BigRational::zero();
                    for c in &group.candidates {
                        let cv = candidate_value(db, group.resolved, c, facts[i], options)?;
                        v += &(&c.weight * &cv);
                    }
                    Ok::<BigRational, CoreError>(v)
                })
                .into_iter()
                .collect::<Result<Vec<_>, _>>()?;
                weighted_add(&mut acc, &BigRational::one(), values);
            }
        }
    }
    let full = aggregate_value(db, &World::full(db), q, agg)?;
    let empty = aggregate_value(db, &World::empty(db), q, agg)?;
    let entries = facts
        .iter()
        .zip(acc)
        .map(|(&f, value)| crate::shapley::ShapleyEntry {
            fact: f,
            rendered: db.render_fact(f),
            value,
        })
        .collect();
    Ok(ShapleyReport::new(entries, full - empty))
}

/// `acc[i] += weight · values[i]`.
fn weighted_add(acc: &mut [BigRational], weight: &BigRational, values: Vec<BigRational>) {
    for (a, v) in acc.iter_mut().zip(values) {
        if !v.is_zero() {
            *a += &(weight * &v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqshap_query::parse_cq;

    /// The introduction's exports scenario:
    /// Count{c | Farmer(m), Export(m,p,c), ¬Grows(c,p)}.
    fn exports() -> Database {
        Database::parse(
            "endo Farmer(miller)\nendo Farmer(smith)\n\
             exo Export(miller, wheat, norway)\n\
             exo Export(miller, rice, egypt)\n\
             exo Export(smith, rice, norway)\n\
             endo Grows(norway, wheat)\nendo Grows(egypt, rice)\n",
        )
        .unwrap()
    }

    #[test]
    fn count_aggregate_decomposes() {
        let db = exports();
        let q = parse_cq("q(c) :- Farmer(m), Export(m, p, c), !Grows(c, p)").unwrap();
        let agg = AggregateFunction::Count;
        let opts = ShapleyOptions::default();

        // Efficiency by linearity: Σ_f Shapley_agg(f) = agg(D) − agg(Dx).
        let full = aggregate_value(&db, &World::full(&db), &q, &agg).unwrap();
        let empty = aggregate_value(&db, &World::empty(&db), &q, &agg).unwrap();
        let mut total = BigRational::zero();
        for &f in db.endo_facts() {
            total += &aggregate_shapley(&db, &q, &agg, f, &opts).unwrap();
        }
        assert_eq!(total, &full - &empty);

        // The batched report computes the same values and checks the
        // same identity internally.
        let report = aggregate_report(&db, &q, &agg, &opts).unwrap();
        assert!(report.efficiency_holds());
        assert_eq!(report.expected_total, full - empty);
        for &f in db.endo_facts() {
            assert_eq!(
                report.entry(f).unwrap().value,
                aggregate_shapley(&db, &q, &agg, f, &opts).unwrap(),
                "{}",
                db.render_fact(f)
            );
        }
    }

    #[test]
    fn count_candidates_include_sub_world_answers() {
        let db = exports();
        let q = parse_cq("q(c) :- Farmer(m), Export(m, p, c), !Grows(c, p)").unwrap();
        let candidates = candidate_answers(&db, &q);
        // Norway and Egypt both appear as candidates (Egypt only answers
        // in worlds where Grows(egypt, rice) is absent).
        let mut names: Vec<&str> = candidates
            .iter()
            .map(|t| db.interner().resolve(t[0]))
            .collect();
        names.sort();
        assert_eq!(names, vec!["egypt", "norway"]);
    }

    #[test]
    fn sum_aggregate_weights() {
        // Sum of profits r over exports to countries not growing p:
        // Sum{r | Export(p,c), ¬Grows(c,p), Profit(c,p,r)}.
        let db = Database::parse(
            "exo Export(wheat, norway)\nexo Export(rice, egypt)\n\
             endo Grows(egypt, rice)\n\
             exo Profit(norway, wheat, 10)\nexo Profit(egypt, rice, 5)\n",
        )
        .unwrap();
        let q = parse_cq("q(r) :- Export(p, c), !Grows(c, p), Profit(c, p, r)").unwrap();
        let agg = AggregateFunction::Sum {
            weight_var: "r".into(),
        };
        let full = aggregate_value(&db, &World::full(&db), &q, &agg).unwrap();
        let empty = aggregate_value(&db, &World::empty(&db), &q, &agg).unwrap();
        assert_eq!(full, BigRational::from(10i64));
        assert_eq!(empty, BigRational::from(15i64));
        // The single endogenous fact Grows(egypt, rice) carries the whole
        // difference: Shapley = -5.
        let f = db.find_fact("Grows", &["egypt", "rice"]).unwrap();
        let v = aggregate_shapley(&db, &q, &agg, f, &ShapleyOptions::default()).unwrap();
        assert_eq!(v, BigRational::from(-5i64));
    }

    #[test]
    fn sum_weights_beyond_i64() {
        // A 20-digit weight constant (> 2^63): the weight must flow
        // through BigInt, not a machine integer.
        let db = Database::parse(
            "exo Export(wheat, norway)\n\
             endo Grows(norway, wheat)\n\
             exo Profit(norway, wheat, 12345678901234567890)\n",
        )
        .unwrap();
        let q = parse_cq("q(r) :- Export(p, c), !Grows(c, p), Profit(c, p, r)").unwrap();
        let agg = AggregateFunction::Sum {
            weight_var: "r".into(),
        };
        let empty = aggregate_value(&db, &World::empty(&db), &q, &agg).unwrap();
        assert_eq!(empty.to_string(), "12345678901234567890");
        let f = db.find_fact("Grows", &["norway", "wheat"]).unwrap();
        let v = aggregate_shapley(&db, &q, &agg, f, &ShapleyOptions::default()).unwrap();
        assert_eq!(v.to_string(), "-12345678901234567890");
        // Negative weights round-trip too.
        let db2 = Database::parse(
            "exo Export(wheat, norway)\n\
             endo Grows(norway, wheat)\n\
             exo Profit(norway, wheat, -98765432109876543210)\n",
        )
        .unwrap();
        let f2 = db2.find_fact("Grows", &["norway", "wheat"]).unwrap();
        let v2 = aggregate_shapley(&db2, &q, &agg, f2, &ShapleyOptions::default()).unwrap();
        assert_eq!(v2.to_string(), "98765432109876543210");
    }

    #[test]
    fn quoted_constant_names_substitute_verbatim() {
        // A database constant whose *name* contains quote characters is
        // legal ('CS' here — the db parser treats quotes as ordinary
        // token characters, while the query parser would strip them).
        // Head substitution must round-trip it to the same ConstId, so
        // the substituted query counts exactly like the world-level
        // aggregate says.
        let mut db = Database::new();
        db.add_exo("Course", &["db", "'CS'"]).unwrap();
        db.add_exo("Course", &["os", "EE"]).unwrap();
        db.add_endo("Reg", &["alice", "db"]).unwrap();
        db.add_endo("Reg", &["bob", "os"]).unwrap();
        let q = parse_cq("q(f) :- Reg(s, c), Course(c, f)").unwrap();
        let agg = AggregateFunction::Count;
        let opts = ShapleyOptions::default();
        let report = aggregate_report(&db, &q, &agg, &opts).unwrap();
        assert!(report.efficiency_holds());
        // Reg(alice, db) is the only fact driving the 'CS' candidate:
        // its aggregate Shapley value is exactly 1 (one answer gained).
        let f = db.find_fact("Reg", &["alice", "db"]).unwrap();
        assert_eq!(
            aggregate_shapley(&db, &q, &agg, f, &opts).unwrap(),
            BigRational::one()
        );
        // The substituted queries resolve the quoted name verbatim: the
        // candidate set contains the interned 'CS' constant itself.
        let candidates = candidate_answers(&db, &q);
        let names: Vec<&str> = candidates
            .iter()
            .map(|t| db.interner().resolve(t[0]))
            .collect();
        assert!(names.contains(&"'CS'"), "{names:?}");
    }

    #[test]
    fn boolean_query_rejected() {
        let db = exports();
        let q = parse_cq("q() :- Farmer(m)").unwrap();
        let f = db.find_fact("Farmer", &["miller"]).unwrap();
        assert!(matches!(
            aggregate_shapley(&db, &q, &AggregateFunction::Count, f, &Default::default()),
            Err(CoreError::Unsupported(_))
        ));
        assert!(matches!(
            aggregate_report(&db, &q, &AggregateFunction::Count, &Default::default()),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn bad_weight_specs_rejected() {
        let db = exports();
        let q = parse_cq("q(c) :- Farmer(m), Export(m, p, c), !Grows(c, p)").unwrap();
        let f = db.find_fact("Farmer", &["miller"]).unwrap();
        for bad in ["nope", "m"] {
            let agg = AggregateFunction::Sum {
                weight_var: bad.into(),
            };
            assert!(matches!(
                aggregate_shapley(&db, &q, &agg, f, &Default::default()),
                Err(CoreError::Unsupported(_))
            ));
        }
        // Non-integer weights.
        let agg = AggregateFunction::Sum {
            weight_var: "c".into(),
        };
        assert!(matches!(
            aggregate_shapley(&db, &q, &agg, f, &Default::default()),
            Err(CoreError::Unsupported(_))
        ));
    }
}
