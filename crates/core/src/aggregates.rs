//! Shapley values for aggregate queries over CQ¬s.
//!
//! The "Remarks" of Section 3: the dichotomy extends to summations over
//! CQ¬s by linearity of expectation. An aggregate `Sum{w | φ(…)}` (or
//! `Count`) decomposes over the candidate answer tuples `a`:
//!
//! ```text
//! Shapley_agg(D, q, f) = Σ_a  weight(a) · Shapley(D, q[head ↦ a], f)
//! ```
//!
//! where `q[head ↦ a]` is the Boolean query with the head variables
//! substituted by `a`'s constants. With negation, a tuple may be an
//! answer in a sub-world but not in the full one, so candidates are the
//! head-projections of homomorphisms of the *positive part* into all of
//! `D` — a superset of the answers in any world.

use std::collections::BTreeSet;

use cqshap_db::{Database, FactId, World};
use cqshap_engine::{answers, for_each_positive_homomorphism, CompiledQuery, FactScope};
use cqshap_numeric::{BigInt, BigRational};
use cqshap_query::{ConjunctiveQuery, QueryBuilder, Term, Var};

use crate::error::CoreError;
use crate::shapley::{shapley_value, ShapleyOptions};

/// The supported aggregate functions.
#[derive(Debug, Clone)]
pub enum AggregateFunction {
    /// `Count{ head | φ }` — each answer weighs 1.
    Count,
    /// `Sum{ w | φ }` — each answer weighs the integer value bound to
    /// the named head variable.
    Sum {
        /// Name of the head variable carrying the weight.
        weight_var: String,
    },
}

impl AggregateFunction {
    fn weight(
        &self,
        db: &Database,
        q: &ConjunctiveQuery,
        tuple: &[cqshap_db::ConstId],
    ) -> Result<BigRational, CoreError> {
        match self {
            AggregateFunction::Count => Ok(BigRational::one()),
            AggregateFunction::Sum { weight_var } => {
                let var = q.var_by_name(weight_var).ok_or_else(|| {
                    CoreError::Unsupported(format!("unknown variable {weight_var}"))
                })?;
                let pos = q.head().iter().position(|&h| h == var).ok_or_else(|| {
                    CoreError::Unsupported(format!("{weight_var} is not a head variable"))
                })?;
                let name = db.interner().resolve(tuple[pos]);
                let value: i64 = name.parse().map_err(|_| {
                    CoreError::Unsupported(format!("weight constant {name:?} is not an integer"))
                })?;
                Ok(BigRational::from_int(BigInt::from_i64(value)))
            }
        }
    }
}

/// Substitutes the head variables of `q` by the constants of `tuple`,
/// producing the Boolean query `q[head ↦ a]`.
fn substitute_head(
    db: &Database,
    q: &ConjunctiveQuery,
    tuple: &[cqshap_db::ConstId],
) -> Result<ConjunctiveQuery, CoreError> {
    let mut builder = QueryBuilder::new(format!("{}_ans", q.name()));
    let subst = |v: Var| -> Option<String> {
        q.head()
            .iter()
            .position(|&h| h == v)
            .map(|i| db.interner().resolve(tuple[i]).to_string())
    };
    for atom in q.atoms() {
        let terms: Vec<Term> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => Term::Const(c.clone()),
                Term::Var(v) => match subst(*v) {
                    Some(c) => Term::Const(c),
                    None => Term::Var(builder.var(q.var_name(*v))),
                },
            })
            .collect();
        if atom.negated {
            builder.neg(&atom.relation, terms);
        } else {
            builder.pos(&atom.relation, terms);
        }
    }
    Ok(builder.build()?)
}

/// The candidate answers: head projections of positive-part
/// homomorphisms into all of `D`.
pub fn candidate_answers(db: &Database, q: &ConjunctiveQuery) -> Vec<Vec<cqshap_db::ConstId>> {
    let compiled = CompiledQuery::compile(db, q);
    let mut set: BTreeSet<Vec<cqshap_db::ConstId>> = BTreeSet::new();
    for_each_positive_homomorphism(db, FactScope::All, &compiled, &mut |m| {
        if let Some(tuple) = compiled
            .head
            .iter()
            .map(|&v| m.assignment[v as usize])
            .collect::<Option<Vec<_>>>()
        {
            set.insert(tuple);
        }
        true
    });
    set.into_iter().collect()
}

/// The aggregate's value over one world (for efficiency checks and
/// end-to-end tests).
pub fn aggregate_value(
    db: &Database,
    world: &World,
    q: &ConjunctiveQuery,
    agg: &AggregateFunction,
) -> Result<BigRational, CoreError> {
    let mut acc = BigRational::zero();
    for a in answers(db, world, q) {
        acc += &agg.weight(db, q, &a)?;
    }
    Ok(acc)
}

/// `Shapley_agg(D, q, f)` by linearity over candidate answers.
///
/// # Errors
/// Anything [`shapley_value`] raises for a substituted Boolean query,
/// plus [`CoreError::Unsupported`] for malformed aggregate specs.
pub fn aggregate_shapley(
    db: &Database,
    q: &ConjunctiveQuery,
    agg: &AggregateFunction,
    f: FactId,
    options: &ShapleyOptions,
) -> Result<BigRational, CoreError> {
    if q.head().is_empty() {
        return Err(CoreError::Unsupported(
            "aggregate queries need head variables; use shapley_value for Boolean queries".into(),
        ));
    }
    let mut acc = BigRational::zero();
    for a in candidate_answers(db, q) {
        let weight = agg.weight(db, q, &a)?;
        if weight.is_zero() {
            continue;
        }
        let qa = substitute_head(db, q, &a)?;
        let v = shapley_value(db, &qa, f, options)?;
        acc += &(weight * v);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqshap_query::parse_cq;

    /// The introduction's exports scenario:
    /// Count{c | Farmer(m), Export(m,p,c), ¬Grows(c,p)}.
    fn exports() -> Database {
        Database::parse(
            "endo Farmer(miller)\nendo Farmer(smith)\n\
             exo Export(miller, wheat, norway)\n\
             exo Export(miller, rice, egypt)\n\
             exo Export(smith, rice, norway)\n\
             endo Grows(norway, wheat)\nendo Grows(egypt, rice)\n",
        )
        .unwrap()
    }

    #[test]
    fn count_aggregate_decomposes() {
        let db = exports();
        let q = parse_cq("q(c) :- Farmer(m), Export(m, p, c), !Grows(c, p)").unwrap();
        let agg = AggregateFunction::Count;
        let opts = ShapleyOptions::default();

        // Efficiency by linearity: Σ_f Shapley_agg(f) = agg(D) − agg(Dx).
        let full = aggregate_value(&db, &World::full(&db), &q, &agg).unwrap();
        let empty = aggregate_value(&db, &World::empty(&db), &q, &agg).unwrap();
        let mut total = BigRational::zero();
        for &f in db.endo_facts() {
            total += &aggregate_shapley(&db, &q, &agg, f, &opts).unwrap();
        }
        assert_eq!(total, full - empty);
    }

    #[test]
    fn count_candidates_include_sub_world_answers() {
        let db = exports();
        let q = parse_cq("q(c) :- Farmer(m), Export(m, p, c), !Grows(c, p)").unwrap();
        let candidates = candidate_answers(&db, &q);
        // Norway and Egypt both appear as candidates (Egypt only answers
        // in worlds where Grows(egypt, rice) is absent).
        let mut names: Vec<&str> = candidates
            .iter()
            .map(|t| db.interner().resolve(t[0]))
            .collect();
        names.sort();
        assert_eq!(names, vec!["egypt", "norway"]);
    }

    #[test]
    fn sum_aggregate_weights() {
        // Sum of profits r over exports to countries not growing p:
        // Sum{r | Export(p,c), ¬Grows(c,p), Profit(c,p,r)}.
        let db = Database::parse(
            "exo Export(wheat, norway)\nexo Export(rice, egypt)\n\
             endo Grows(egypt, rice)\n\
             exo Profit(norway, wheat, 10)\nexo Profit(egypt, rice, 5)\n",
        )
        .unwrap();
        let q = parse_cq("q(r) :- Export(p, c), !Grows(c, p), Profit(c, p, r)").unwrap();
        let agg = AggregateFunction::Sum {
            weight_var: "r".into(),
        };
        let full = aggregate_value(&db, &World::full(&db), &q, &agg).unwrap();
        let empty = aggregate_value(&db, &World::empty(&db), &q, &agg).unwrap();
        assert_eq!(full, BigRational::from(10i64));
        assert_eq!(empty, BigRational::from(15i64));
        // The single endogenous fact Grows(egypt, rice) carries the whole
        // difference: Shapley = -5.
        let f = db.find_fact("Grows", &["egypt", "rice"]).unwrap();
        let v = aggregate_shapley(&db, &q, &agg, f, &ShapleyOptions::default()).unwrap();
        assert_eq!(v, BigRational::from(-5i64));
    }

    #[test]
    fn boolean_query_rejected() {
        let db = exports();
        let q = parse_cq("q() :- Farmer(m)").unwrap();
        let f = db.find_fact("Farmer", &["miller"]).unwrap();
        assert!(matches!(
            aggregate_shapley(&db, &q, &AggregateFunction::Count, f, &Default::default()),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn bad_weight_specs_rejected() {
        let db = exports();
        let q = parse_cq("q(c) :- Farmer(m), Export(m, p, c), !Grows(c, p)").unwrap();
        let f = db.find_fact("Farmer", &["miller"]).unwrap();
        for bad in ["nope", "m"] {
            let agg = AggregateFunction::Sum {
                weight_var: bad.into(),
            };
            assert!(matches!(
                aggregate_shapley(&db, &q, &agg, f, &Default::default()),
                Err(CoreError::Unsupported(_))
            ));
        }
        // Non-integer weights.
        let agg = AggregateFunction::Sum {
            weight_var: "c".into(),
        };
        assert!(matches!(
            aggregate_shapley(&db, &q, &agg, f, &Default::default()),
            Err(CoreError::Unsupported(_))
        ));
    }
}
