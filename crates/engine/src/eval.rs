//! Satisfaction and homomorphism enumeration.

use std::collections::BTreeSet;

use cqshap_db::{ConstId, Database, FactId, Tuple, World};
use cqshap_query::{ConjunctiveQuery, UnionQuery};

use crate::compile::{CompiledAtom, CompiledQuery, CompiledTerm, CompiledUnion};

/// Which facts are visible to matching.
#[derive(Debug, Clone, Copy)]
pub enum FactScope<'a> {
    /// `Dx ∪ E`: exogenous facts plus the world's endogenous facts. This
    /// is the evaluation scope of the Shapley wealth function.
    World(&'a World),
    /// Every fact of `D`, endogenous or not — the scope the relevance
    /// algorithms (Algorithms 2/3) enumerate homomorphisms over.
    All,
}

impl FactScope<'_> {
    #[inline]
    fn visible(&self, db: &Database, id: FactId) -> bool {
        match self {
            FactScope::All => true,
            FactScope::World(w) => {
                let f = db.fact(id);
                !f.provenance.is_endogenous() || w.contains(db, id)
            }
        }
    }
}

/// One homomorphism of the positive part of a query.
#[derive(Debug)]
pub struct PositiveMatch<'a> {
    /// Per-variable constants (every variable of a positive atom is
    /// bound; variables occurring only in the head or nowhere are `None`).
    pub assignment: &'a [Option<ConstId>],
    /// The fact matched by each positive atom, in *evaluation* order.
    pub matched_facts: &'a [FactId],
}

/// Enumerates homomorphisms of the positive atoms of `q` into the facts
/// visible under `scope`, calling `visitor` for each; the visitor returns
/// `false` to abort. Returns `true` when enumeration ran to completion.
///
/// Negative atoms are *not* checked here — callers (satisfaction, the
/// relevance algorithms) apply their own policy to them.
pub fn for_each_positive_homomorphism(
    db: &Database,
    scope: FactScope<'_>,
    q: &CompiledQuery,
    visitor: &mut impl FnMut(PositiveMatch<'_>) -> bool,
) -> bool {
    let mut assignment: Vec<Option<ConstId>> = vec![None; q.var_count];
    let mut matched: Vec<FactId> = Vec::with_capacity(q.positives.len());
    recurse(
        db,
        scope,
        &q.positives,
        0,
        &mut assignment,
        &mut matched,
        visitor,
    )
}

fn recurse(
    db: &Database,
    scope: FactScope<'_>,
    positives: &[CompiledAtom],
    idx: usize,
    assignment: &mut Vec<Option<ConstId>>,
    matched: &mut Vec<FactId>,
    visitor: &mut impl FnMut(PositiveMatch<'_>) -> bool,
) -> bool {
    if idx == positives.len() {
        return visitor(PositiveMatch {
            assignment,
            matched_facts: matched,
        });
    }
    let atom = &positives[idx];
    let Some(rel) = atom.rel else {
        // Relation absent from the database: this positive atom can never
        // match, so the whole query has no homomorphisms.
        return true;
    };
    'facts: for &fid in db.relation_facts(rel) {
        if !scope.visible(db, fid) {
            continue;
        }
        let tuple = &db.fact(fid).tuple;
        let mut trail: Vec<u32> = Vec::new();
        for (t, &val) in atom.terms.iter().zip(tuple.values()) {
            let ok = match t {
                CompiledTerm::Const(c) => *c == val,
                CompiledTerm::UnknownConst => false,
                CompiledTerm::Var(v) => match assignment[*v as usize] {
                    Some(bound) => bound == val,
                    None => {
                        assignment[*v as usize] = Some(val);
                        trail.push(*v);
                        true
                    }
                },
            };
            if !ok {
                for v in trail {
                    assignment[v as usize] = None;
                }
                continue 'facts;
            }
        }
        matched.push(fid);
        let keep_going = recurse(db, scope, positives, idx + 1, assignment, matched, visitor);
        matched.pop();
        for v in trail {
            assignment[v as usize] = None;
        }
        if !keep_going {
            return false;
        }
    }
    true
}

/// Grounds a (negative) atom under an assignment. Returns `None` when the
/// atom mentions a constant unknown to the database or an unbound
/// variable — in both cases the corresponding fact cannot exist.
fn ground_atom(atom: &CompiledAtom, assignment: &[Option<ConstId>]) -> Option<Tuple> {
    let mut vals = Vec::with_capacity(atom.terms.len());
    for t in &atom.terms {
        match t {
            CompiledTerm::Const(c) => vals.push(*c),
            CompiledTerm::UnknownConst => return None,
            CompiledTerm::Var(v) => vals.push(assignment[*v as usize]?),
        }
    }
    Some(Tuple::from(vals))
}

/// Does any negative atom of `q` fire (i.e. its ground fact is visible)
/// under the given assignment and scope?
fn negatives_violated(
    db: &Database,
    scope: FactScope<'_>,
    q: &CompiledQuery,
    assignment: &[Option<ConstId>],
) -> bool {
    q.negatives.iter().any(|atom| {
        let Some(rel) = atom.rel else { return false };
        let Some(tuple) = ground_atom(atom, assignment) else {
            return false;
        };
        db.lookup(rel, &tuple)
            .is_some_and(|fid| scope.visible(db, fid))
    })
}

/// Does `Dx ∪ E ⊨ q` hold, for a query compiled against `db`?
pub fn satisfies_compiled(db: &Database, world: &World, q: &CompiledQuery) -> bool {
    let scope = FactScope::World(world);
    let mut sat = false;
    for_each_positive_homomorphism(db, scope, q, &mut |m| {
        if negatives_violated(db, scope, q, m.assignment) {
            true // keep searching
        } else {
            sat = true;
            false // abort: satisfied
        }
    });
    sat
}

/// Does `Dx ∪ E ⊨ q` hold? Compiles on the fly; prefer
/// [`satisfies_compiled`] in loops over many worlds.
pub fn satisfies(db: &Database, world: &World, q: &ConjunctiveQuery) -> bool {
    satisfies_compiled(db, world, &CompiledQuery::compile(db, q))
}

/// Does `Dx ∪ E ⊨ q₁ ∨ ⋯ ∨ qₙ` hold?
pub fn satisfies_union(db: &Database, world: &World, u: &UnionQuery) -> bool {
    let c = CompiledUnion::compile(db, u);
    c.disjuncts.iter().any(|d| satisfies_compiled(db, world, d))
}

/// The distinct answers (head-variable tuples) of `q` over `Dx ∪ E`.
///
/// With negation, a tuple can be an answer in a strict sub-world without
/// being one in the full world, so callers interested in *possible*
/// answers should evaluate over the candidate worlds they care about (the
/// aggregate machinery enumerates positive-part homomorphisms over all of
/// `D` instead; see `cqshap-core`).
pub fn answers(db: &Database, world: &World, q: &ConjunctiveQuery) -> BTreeSet<Vec<ConstId>> {
    let c = CompiledQuery::compile(db, q);
    let scope = FactScope::World(world);
    let mut out = BTreeSet::new();
    for_each_positive_homomorphism(db, scope, &c, &mut |m| {
        if !negatives_violated(db, scope, &c, m.assignment) {
            let tuple: Option<Vec<ConstId>> =
                c.head.iter().map(|&v| m.assignment[v as usize]).collect();
            if let Some(t) = tuple {
                out.insert(t);
            }
        }
        true
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqshap_query::{parse_cq, parse_ucq};

    /// The running-example database of Figure 1.
    fn university() -> Database {
        let mut db = Database::new();
        for s in ["Adam", "Ben", "Caroline", "David"] {
            db.add_exo("Stud", &[s]).unwrap();
        }
        for t in ["Adam", "Ben", "David"] {
            db.add_endo("TA", &[t]).unwrap();
        }
        for (c, f) in [("OS", "EE"), ("IC", "EE"), ("DB", "CS"), ("AI", "CS")] {
            db.add_exo("Course", &[c, f]).unwrap();
        }
        for (n, c) in [
            ("Adam", "OS"),
            ("Adam", "AI"),
            ("Ben", "OS"),
            ("Caroline", "DB"),
            ("Caroline", "IC"),
        ] {
            db.add_endo("Reg", &[n, c]).unwrap();
        }
        for (a, s) in [
            ("Michael", "Adam"),
            ("Michael", "Ben"),
            ("Naomi", "Caroline"),
            ("Michael", "David"),
        ] {
            db.add_exo("Adv", &[a, s]).unwrap();
        }
        db
    }

    #[test]
    fn example_2_3_satisfaction_conditions() {
        let db = university();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();

        // Dx alone: no Reg facts present → false.
        assert!(!satisfies(&db, &World::empty(&db), &q1));

        // Condition (1): f_r4 (Caroline, DB) alone satisfies — Caroline
        // is not a TA anywhere.
        let fr4 = db.find_fact("Reg", &["Caroline", "DB"]).unwrap();
        let w = World::from_fact_ids(&db, &[fr4]);
        assert!(satisfies(&db, &w, &q1));

        // Condition (2): f_r1 (Adam, OS) satisfies only while f_t1 absent.
        let fr1 = db.find_fact("Reg", &["Adam", "OS"]).unwrap();
        let ft1 = db.find_fact("TA", &["Adam"]).unwrap();
        let mut w = World::from_fact_ids(&db, &[fr1]);
        assert!(satisfies(&db, &w, &q1));
        w.insert(&db, ft1);
        assert!(!satisfies(&db, &w, &q1));

        // Full world: Caroline not a TA and registered → true.
        assert!(satisfies(&db, &World::full(&db), &q1));
    }

    #[test]
    fn constants_in_queries() {
        let db = university();
        let q = parse_cq("q() :- Reg(x, 'DB'), !TA(x)").unwrap();
        let fr4 = db.find_fact("Reg", &["Caroline", "DB"]).unwrap();
        assert!(satisfies(&db, &World::from_fact_ids(&db, &[fr4]), &q));
        assert!(!satisfies(&db, &World::empty(&db), &q));
        // Unknown constant in a positive atom → unsatisfiable.
        let q2 = parse_cq("q() :- Reg(x, 'Quantum')").unwrap();
        assert!(!satisfies(&db, &World::full(&db), &q2));
        // Unknown constant in a negative atom → vacuously true negation.
        let q3 = parse_cq("q() :- Stud(x), !TA('Nobody')").unwrap();
        assert!(satisfies(&db, &World::empty(&db), &q3));
        // Unknown relation behaves likewise.
        let q4 = parse_cq("q() :- Stud(x), !Alien(x)").unwrap();
        assert!(satisfies(&db, &World::empty(&db), &q4));
        let q5 = parse_cq("q() :- Alien(x)").unwrap();
        assert!(!satisfies(&db, &World::full(&db), &q5));
    }

    #[test]
    fn self_join_with_mixed_polarity() {
        // Example 5.3: q() :- R(x,y), !R(y,x) over {R(1,2), R(2,1)}.
        let mut db = Database::new();
        let f12 = db.add_endo("R", &["1", "2"]).unwrap();
        let f21 = db.add_endo("R", &["2", "1"]).unwrap();
        let q = parse_cq("q() :- R(x, y), !R(y, x)").unwrap();
        assert!(!satisfies(&db, &World::empty(&db), &q));
        assert!(satisfies(&db, &World::from_fact_ids(&db, &[f12]), &q));
        assert!(satisfies(&db, &World::from_fact_ids(&db, &[f21]), &q));
        assert!(!satisfies(&db, &World::from_fact_ids(&db, &[f12, f21]), &q));
    }

    #[test]
    fn union_satisfaction() {
        let db = university();
        let u = parse_ucq(
            "qa() :- Reg(x, 'Quantum')\n\
             qb() :- Stud(x), !TA(x), Reg(x, y)\n",
        )
        .unwrap();
        let fr4 = db.find_fact("Reg", &["Caroline", "DB"]).unwrap();
        assert!(satisfies_union(&db, &World::from_fact_ids(&db, &[fr4]), &u));
        assert!(!satisfies_union(&db, &World::empty(&db), &u));
    }

    #[test]
    fn enumerate_positive_homs_all_scope() {
        let db = university();
        let q = parse_cq("q() :- Stud(x), Reg(x, y)").unwrap();
        let c = CompiledQuery::compile(&db, &q);
        let mut count = 0;
        for_each_positive_homomorphism(&db, FactScope::All, &c, &mut |_| {
            count += 1;
            true
        });
        // One per Reg fact (each registered student is a Stud).
        assert_eq!(count, 5);

        // Abort works.
        let mut first_only = 0;
        let completed = for_each_positive_homomorphism(&db, FactScope::All, &c, &mut |_| {
            first_only += 1;
            false
        });
        assert!(!completed);
        assert_eq!(first_only, 1);
    }

    #[test]
    fn answers_projection() {
        let db = university();
        let q = parse_cq("qans(x) :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let full = answers(&db, &World::full(&db), &q);
        // Only Caroline is registered and not a TA in the full world.
        let caroline = db.interner().get("Caroline").unwrap();
        assert_eq!(full, BTreeSet::from([vec![caroline]]));

        let empty = answers(&db, &World::empty(&db), &q);
        assert!(empty.is_empty());
    }

    #[test]
    fn ground_only_negative_query() {
        // q() :- ¬R('a') — safe (no variables), satisfied iff R(a) absent.
        let mut db = Database::new();
        let ra = db.add_endo("R", &["a"]).unwrap();
        let q = parse_cq("q() :- !R('a')").unwrap();
        assert!(satisfies(&db, &World::empty(&db), &q));
        assert!(!satisfies(&db, &World::from_fact_ids(&db, &[ra]), &q));
    }

    #[test]
    fn repeated_variable_in_atom() {
        let mut db = Database::new();
        db.add_endo("E", &["a", "a"]).unwrap();
        db.add_endo("E", &["a", "b"]).unwrap();
        let q = parse_cq("q() :- E(x, x)").unwrap();
        assert!(satisfies(&db, &World::full(&db), &q));
        let only_ab = db.find_fact("E", &["a", "b"]).unwrap();
        assert!(!satisfies(&db, &World::from_fact_ids(&db, &[only_ab]), &q));
    }
}
