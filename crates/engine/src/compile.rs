//! Compiling queries against a database.
//!
//! Compilation resolves relation names to [`RelId`]s and constant names to
//! [`ConstId`]s once, and fixes a greedy join order for the positive
//! atoms, so that evaluating the same query over thousands of worlds
//! (brute force, sampling) does no repeated string work.

use cqshap_db::{ConstId, Database, RelId};
use cqshap_query::{Atom, ConjunctiveQuery, Term, UnionQuery, Var};

/// A term resolved against a database interner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompiledTerm {
    /// A query variable (dense index).
    Var(u32),
    /// A constant known to the database.
    Const(ConstId),
    /// A constant the database has never seen: a positive atom with this
    /// term can never match; a negative atom with it never fires.
    UnknownConst,
}

/// An atom resolved against a database.
#[derive(Debug, Clone)]
pub struct CompiledAtom {
    /// Position of the atom within the source query's atom list.
    pub source_index: usize,
    /// The resolved relation; `None` when the database has no relation of
    /// this name (a positive atom is then unsatisfiable, a negative atom
    /// vacuously true).
    pub rel: Option<RelId>,
    /// Resolved terms.
    pub terms: Vec<CompiledTerm>,
    /// Negated?
    pub negated: bool,
}

impl CompiledAtom {
    fn compile(db: &Database, atom: &Atom, source_index: usize) -> Self {
        CompiledAtom {
            source_index,
            rel: db.schema().id(&atom.relation),
            terms: atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(Var(v)) => CompiledTerm::Var(*v),
                    Term::Const(c) => match db.interner().get(c) {
                        Some(id) => CompiledTerm::Const(id),
                        None => CompiledTerm::UnknownConst,
                    },
                })
                .collect(),
            negated: atom.negated,
        }
    }

    /// Variables of this atom (deduplicated, ascending).
    pub fn variables(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .terms
            .iter()
            .filter_map(|t| match t {
                CompiledTerm::Var(v) => Some(*v),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A query compiled against one database.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// Positive atoms in evaluation (join) order.
    pub positives: Vec<CompiledAtom>,
    /// Negative atoms (checked once all their variables are bound).
    pub negatives: Vec<CompiledAtom>,
    /// Number of query variables.
    pub var_count: usize,
    /// Head variables (dense indices).
    pub head: Vec<u32>,
}

impl CompiledQuery {
    /// Compiles `q` against `db`.
    pub fn compile(db: &Database, q: &ConjunctiveQuery) -> Self {
        let mut positives = Vec::new();
        let mut negatives = Vec::new();
        for (i, atom) in q.atoms().iter().enumerate() {
            let c = CompiledAtom::compile(db, atom, i);
            if c.negated {
                negatives.push(c);
            } else {
                positives.push(c);
            }
        }
        order_positives(db, &mut positives);
        CompiledQuery {
            positives,
            negatives,
            var_count: q.var_count(),
            head: q.head().iter().map(|v| v.0).collect(),
        }
    }
}

/// Greedy join order: repeatedly pick the atom with the most
/// already-bound variables, breaking ties toward smaller relations.
/// Keeps evaluation from degenerating into a full cross product.
fn order_positives(db: &Database, positives: &mut Vec<CompiledAtom>) {
    let mut remaining: Vec<CompiledAtom> = std::mem::take(positives);
    let mut bound: Vec<bool> = Vec::new();
    let grow = |bound: &mut Vec<bool>, v: usize| {
        if v >= bound.len() {
            bound.resize(v + 1, false);
        }
    };
    while !remaining.is_empty() {
        let mut best = 0usize;
        let mut best_key = (usize::MAX, usize::MAX); // (unbound vars, relation size)
        for (i, atom) in remaining.iter().enumerate() {
            let unbound = atom
                .variables()
                .iter()
                .filter(|&&v| !bound.get(v as usize).copied().unwrap_or(false))
                .count();
            let size = atom.rel.map_or(0, |r| db.relation_facts(r).len());
            let key = (unbound, size);
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        let atom = remaining.swap_remove(best);
        for v in atom.variables() {
            grow(&mut bound, v as usize);
            bound[v as usize] = true;
        }
        positives.push(atom);
    }
}

/// A union compiled against one database.
#[derive(Debug, Clone)]
pub struct CompiledUnion {
    /// Compiled disjuncts, in source order.
    pub disjuncts: Vec<CompiledQuery>,
}

impl CompiledUnion {
    /// Compiles `u` against `db`.
    pub fn compile(db: &Database, u: &UnionQuery) -> Self {
        CompiledUnion {
            disjuncts: u
                .disjuncts()
                .iter()
                .map(|d| CompiledQuery::compile(db, d))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqshap_query::parse_cq;

    #[test]
    fn compiles_and_orders() {
        let mut db = Database::new();
        db.add_exo("S", &["a", "b"]).unwrap();
        db.add_endo("R", &["a"]).unwrap();
        db.add_endo("R", &["b"]).unwrap();
        db.add_endo("T", &["b"]).unwrap();
        let q = parse_cq("q() :- R(x), S(x, y), !T(y)").unwrap();
        let c = CompiledQuery::compile(&db, &q);
        assert_eq!(c.positives.len(), 2);
        assert_eq!(c.negatives.len(), 1);
        assert_eq!(c.var_count, 2);
        // All relations resolve.
        assert!(c.positives.iter().all(|a| a.rel.is_some()));
    }

    #[test]
    fn unknown_relation_and_constant() {
        let mut db = Database::new();
        db.add_endo("R", &["a"]).unwrap();
        let q = parse_cq("q() :- R(x), !Missing(x), R('zzz')").unwrap();
        let c = CompiledQuery::compile(&db, &q);
        assert!(c.negatives[0].rel.is_none());
        let has_unknown_const = c
            .positives
            .iter()
            .any(|a| a.terms.contains(&CompiledTerm::UnknownConst));
        assert!(has_unknown_const);
    }
}
