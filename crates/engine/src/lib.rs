//! Query evaluation for `cqshap`.
//!
//! The Shapley framework evaluates a Boolean query `q` over worlds
//! `Dx ∪ E` for subsets `E ⊆ Dn` (Section 2 of the paper). This crate
//! provides:
//!
//! * [`satisfies`] / [`satisfies_union`] — Boolean satisfaction of a
//!   CQ¬ / UCQ¬ over a [`World`](cqshap_db::World);
//! * [`for_each_positive_homomorphism`] — enumeration of homomorphisms of
//!   the *positive part* of a query, the workhorse of the relevance
//!   algorithms (Algorithms 2 and 3) and of aggregate answer enumeration;
//! * [`answers`] — distinct head-tuples over a world, for the aggregate
//!   extension (the "Remarks" of Section 3);
//! * [`CompiledQuery`] — a query resolved against a database's schema
//!   and interner once, reusable across many worlds (brute force and
//!   Monte-Carlo sampling evaluate thousands of worlds per query).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod compile;
pub mod eval;

pub use compile::{CompiledAtom, CompiledQuery, CompiledTerm, CompiledUnion};
pub use eval::{
    answers, for_each_positive_homomorphism, satisfies, satisfies_compiled, satisfies_union,
    FactScope, PositiveMatch,
};
