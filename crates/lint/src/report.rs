//! Finding and report types, plus the machine-readable JSON encoding.

use std::fmt;

/// Rule name: panic-free library code in the engine crates.
pub const RULE_NO_PANIC: &str = "no-panic";
/// Rule name: the indexing leg of the `no-panic` family (`expr[i]`
/// panics out of bounds). A separate pragma name so index-heavy kernel
/// files can be exempted file-wide without also silencing
/// `unwrap`/`expect`/`panic!` findings there.
pub const RULE_NO_PANIC_INDEX: &str = "no-panic-index";
/// Rule name: loops in the exact-path files must poll cancellation.
pub const RULE_CANCELLATION_POLL: &str = "cancellation-poll";
/// Rule name: threads are spawned only by the sanctioned fan-outs.
pub const RULE_THREAD_DISCIPLINE: &str = "thread-discipline";
/// Rule name: wall-clock reads only inside the deadline modules.
pub const RULE_NO_WALL_CLOCK: &str = "no-wall-clock";
/// Rule name: typed errors only — no `Box<dyn Error>` / `Err(format!…)`.
pub const RULE_ERROR_HYGIENE: &str = "error-hygiene";
/// Graph rule: public engine APIs are panic-free through the whole
/// call graph (subsumes per-site `no-panic` reasoning where the graph
/// proves a site unreachable).
pub const RULE_TRANSITIVE_NO_PANIC: &str = "transitive-no-panic";
/// Graph rule: every loop reachable from a `Budget`/`CancelToken`
/// entry point polls cancellation (replaces the `cancellation-poll`
/// file-list heuristic; the old name remains a pragma alias).
pub const RULE_CANCELLATION_REACHABILITY: &str = "cancellation-reachability";
/// Graph rule: lock acquisitions follow one global order and no lock
/// is held across a thread fan-out.
pub const RULE_LOCK_ORDER: &str = "lock-order";
/// Meta rule: a malformed suppression pragma.
pub const RULE_BAD_PRAGMA: &str = "bad-pragma";
/// Meta rule: a pragma that suppressed nothing.
pub const RULE_UNUSED_SUPPRESSION: &str = "unused-suppression";

/// Every rule name the pragma parser accepts. `cancellation-poll` and
/// `cancellation-reachability` are aliases at matching time.
pub const KNOWN_RULES: &[&str] = &[
    RULE_NO_PANIC,
    RULE_NO_PANIC_INDEX,
    RULE_CANCELLATION_POLL,
    RULE_CANCELLATION_REACHABILITY,
    RULE_THREAD_DISCIPLINE,
    RULE_NO_WALL_CLOCK,
    RULE_ERROR_HYGIENE,
    RULE_TRANSITIVE_NO_PANIC,
    RULE_LOCK_ORDER,
];

/// Do a finding rule and a pragma rule name match? Exact match, plus
/// the `cancellation-poll` ↔ `cancellation-reachability` alias so PR 8
/// pragmas keep working under the graph rule that replaced their rule.
pub fn rules_match(finding_rule: &str, pragma_rule: &str) -> bool {
    fn canon(r: &str) -> &str {
        if r == RULE_CANCELLATION_POLL {
            RULE_CANCELLATION_REACHABILITY
        } else {
            r
        }
    }
    canon(finding_rule) == canon(pragma_rule)
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule's name.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A finding that was silenced by a pragma, kept for the report.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// The silenced finding.
    pub finding: Finding,
    /// The pragma's mandatory reason.
    pub reason: String,
}

/// A raw lexical finding the call graph *demoted*: the graph proved
/// the site safe, so it is neither a finding nor a suppression.
#[derive(Debug, Clone)]
pub struct Demoted {
    /// The demoted finding.
    pub finding: Finding,
    /// The graph's proof sketch.
    pub why: String,
}

/// A call-graph path attached to a finding for `--explain`.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The explained finding's rule.
    pub rule: String,
    /// Its file.
    pub file: String,
    /// Its line.
    pub line: u32,
    /// Qualified fn names, entry point first, offending fn last (for
    /// `lock-order`, the acquisition chain instead).
    pub path: Vec<String>,
}

/// The `suppression-debt` numbers the ratchet gate enforces.
#[derive(Debug, Clone, Copy, Default)]
pub struct SuppressionDebt {
    /// The committed baseline (from `suppression-baseline.txt`), when
    /// one was loaded.
    pub baseline: Option<usize>,
    /// Live suppression count this run.
    pub current: usize,
    /// Raw findings the graph demoted (proved safe) this run.
    pub demoted: usize,
    /// Pragmas the graph proved redundant (reported as
    /// `unused-suppression`).
    pub redundant: usize,
}

/// The whole run's outcome.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned, workspace-relative.
    pub files: Vec<String>,
    /// Unsuppressed findings — any entry here fails the run.
    pub findings: Vec<Finding>,
    /// Findings silenced by reasoned pragmas.
    pub suppressed: Vec<Suppressed>,
    /// Findings the call graph demoted (proved safe).
    pub demoted: Vec<Demoted>,
    /// Call-graph paths for `--explain` (covers live and suppressed
    /// graph-rule findings and reachable panic sites).
    pub explanations: Vec<Explanation>,
    /// The suppression-ratchet numbers.
    pub debt: SuppressionDebt,
    /// Per-rule wall time in microseconds, measured by the binary (the
    /// library never reads the clock — that is one of its own rules).
    pub rule_timings: Vec<(String, u64)>,
}

impl Report {
    /// Did the workspace pass (no live findings)?
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The `LINT_report.json` encoding (hand-rolled: the workspace has
    /// no serde). Schema version 2: version 1 plus the graph-rule
    /// additions (`suppression_debt`, `demoted`, `rule_timings_us`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema_version\": 2,\n");
        out.push_str(&format!(
            "  \"files_scanned\": {},\n  \"finding_count\": {},\n  \"suppressed_count\": {},\n  \"demoted_count\": {},\n",
            self.files.len(),
            self.findings.len(),
            self.suppressed.len(),
            self.demoted.len()
        ));
        out.push_str(&format!(
            "  \"suppression_debt\": {{\"baseline\": {}, \"current\": {}, \"demoted\": {}, \"redundant\": {}}},\n",
            self.debt
                .baseline
                .map_or("null".to_string(), |b| b.to_string()),
            self.debt.current,
            self.debt.demoted,
            self.debt.redundant
        ));
        out.push_str("  \"rule_timings_us\": {");
        for (i, (rule, us)) in self.rule_timings.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_str(rule), us));
        }
        out.push_str("},\n");
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(&f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            ));
        }
        out.push_str(if self.findings.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"reason\": {}}}",
                json_str(&s.finding.rule),
                json_str(&s.finding.file),
                s.finding.line,
                json_str(&s.finding.message),
                json_str(&s.reason)
            ));
        }
        out.push_str(if self.suppressed.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"demoted\": [");
        for (i, d) in self.demoted.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"why\": {}}}",
                json_str(&d.finding.rule),
                json_str(&d.finding.file),
                d.finding.line,
                json_str(&d.why)
            ));
        }
        out.push_str(if self.demoted.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

/// JSON string literal with the escapes that can occur in paths,
/// messages, and reasons.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let mut r = Report::default();
        r.files.push("a.rs".into());
        r.findings.push(Finding {
            rule: RULE_NO_PANIC.into(),
            file: "crates/x/src/a.rs".into(),
            line: 3,
            message: "call to `panic!` with \"quotes\"".into(),
        });
        r.suppressed.push(Suppressed {
            finding: Finding {
                rule: RULE_NO_WALL_CLOCK.into(),
                file: "b.rs".into(),
                line: 9,
                message: "m".into(),
            },
            reason: "line1\nline2".into(),
        });
        let j = r.to_json();
        assert!(j.contains("\"finding_count\": 1"));
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("line1\\nline2"));
        assert!(!r.is_clean());
    }
}
