//! Finding and report types, plus the machine-readable JSON encoding.

use std::fmt;

/// Rule name: panic-free library code in the engine crates.
pub const RULE_NO_PANIC: &str = "no-panic";
/// Rule name: the indexing leg of the `no-panic` family (`expr[i]`
/// panics out of bounds). A separate pragma name so index-heavy kernel
/// files can be exempted file-wide without also silencing
/// `unwrap`/`expect`/`panic!` findings there.
pub const RULE_NO_PANIC_INDEX: &str = "no-panic-index";
/// Rule name: loops in the exact-path files must poll cancellation.
pub const RULE_CANCELLATION_POLL: &str = "cancellation-poll";
/// Rule name: threads are spawned only by the sanctioned fan-outs.
pub const RULE_THREAD_DISCIPLINE: &str = "thread-discipline";
/// Rule name: wall-clock reads only inside the deadline modules.
pub const RULE_NO_WALL_CLOCK: &str = "no-wall-clock";
/// Rule name: typed errors only — no `Box<dyn Error>` / `Err(format!…)`.
pub const RULE_ERROR_HYGIENE: &str = "error-hygiene";
/// Meta rule: a malformed suppression pragma.
pub const RULE_BAD_PRAGMA: &str = "bad-pragma";
/// Meta rule: a pragma that suppressed nothing.
pub const RULE_UNUSED_SUPPRESSION: &str = "unused-suppression";

/// Every rule name the pragma parser accepts.
pub const KNOWN_RULES: &[&str] = &[
    RULE_NO_PANIC,
    RULE_NO_PANIC_INDEX,
    RULE_CANCELLATION_POLL,
    RULE_THREAD_DISCIPLINE,
    RULE_NO_WALL_CLOCK,
    RULE_ERROR_HYGIENE,
];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule's name.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A finding that was silenced by a pragma, kept for the report.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// The silenced finding.
    pub finding: Finding,
    /// The pragma's mandatory reason.
    pub reason: String,
}

/// The whole run's outcome.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned, workspace-relative.
    pub files: Vec<String>,
    /// Unsuppressed findings — any entry here fails the run.
    pub findings: Vec<Finding>,
    /// Findings silenced by reasoned pragmas.
    pub suppressed: Vec<Suppressed>,
}

impl Report {
    /// Did the workspace pass (no live findings)?
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The `LINT_report.json` encoding (hand-rolled: the workspace has
    /// no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"files_scanned\": {},\n  \"finding_count\": {},\n  \"suppressed_count\": {},\n",
            self.files.len(),
            self.findings.len(),
            self.suppressed.len()
        ));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(&f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            ));
        }
        out.push_str(if self.findings.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"reason\": {}}}",
                json_str(&s.finding.rule),
                json_str(&s.finding.file),
                s.finding.line,
                json_str(&s.finding.message),
                json_str(&s.reason)
            ));
        }
        out.push_str(if self.suppressed.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

/// JSON string literal with the escapes that can occur in paths,
/// messages, and reasons.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let mut r = Report::default();
        r.files.push("a.rs".into());
        r.findings.push(Finding {
            rule: RULE_NO_PANIC.into(),
            file: "crates/x/src/a.rs".into(),
            line: 3,
            message: "call to `panic!` with \"quotes\"".into(),
        });
        r.suppressed.push(Suppressed {
            finding: Finding {
                rule: RULE_NO_WALL_CLOCK.into(),
                file: "b.rs".into(),
                line: 9,
                message: "m".into(),
            },
            reason: "line1\nline2".into(),
        });
        let j = r.to_json();
        assert!(j.contains("\"finding_count\": 1"));
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("line1\\nline2"));
        assert!(!r.is_clean());
    }
}
