//! Workspace walking, rule scoping, and suppression application.
//!
//! This module owns the policy: which first-party files exist, which
//! rules apply where, and how pragmas silence findings. The scope table
//! mirrors the engine's architecture contracts — see the README's
//! "Static analysis" section for the same table in prose.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::graph::{Graph, GraphInput};
use crate::graph_rules::{self, ProvenSite};
use crate::lexer::{lex, TokenKind};
use crate::parser;
use crate::pragma::{self, Pragma, PragmaScope};
use crate::report::{
    rules_match, Demoted, Finding, Report, Suppressed, SuppressionDebt, KNOWN_RULES,
    RULE_UNUSED_SUPPRESSION,
};
use crate::rules::{self, FileCtx};
use crate::scanner::FileMap;
use crate::LintError;

/// Crates whose *library* code must be panic-free (`no-panic`).
const NO_PANIC_CRATES: &[&str] = &["core", "db", "numeric", "probdb"];

/// Files whose loops must poll cancellation (`cancellation-poll`).
const CANCEL_FILES: &[&str] = &[
    "crates/core/src/compiled.rs",
    "crates/core/src/compiled_union.rs",
    "crates/core/src/domain.rs",
    "crates/core/src/aggregates.rs",
    "crates/numeric/src/poly.rs",
];

/// The sanctioned fan-out modules (`thread-discipline` exempt).
const THREAD_FILES: &[&str] = &["crates/core/src/parallel.rs", "crates/numeric/src/poly.rs"];

/// The deadline modules (`no-wall-clock` exempt). `obs::clock` is the
/// observability layer's sanctioned monotonic clock — every span
/// timestamp flows through it.
const CLOCK_FILES: &[&str] = &[
    "crates/numeric/src/cancel.rs",
    "crates/core/src/budget.rs",
    "crates/obs/src/clock.rs",
];

/// Crates whose library code may not read the wall clock elsewhere.
/// `bench` and `workloads` are measurement/generator code and binaries
/// print timings to humans — both are outside the deadline contract.
const CLOCK_CRATES: &[&str] = &[
    "core", "db", "numeric", "obs", "probdb", "query", "engine", "gadgets", "lint",
];

/// One discovered source file.
struct SourceFile {
    /// Absolute path on disk.
    abs: PathBuf,
    /// Workspace-relative path with forward slashes.
    rel: String,
    /// Short crate directory name (`core`, `db`, …; `""` for the root
    /// `cqshap` package).
    krate: String,
    /// Binary target (`main.rs` or under `src/bin/`)?
    is_binary: bool,
}

/// One in-memory file for [`lint_files`] — the unit the graph pipeline
/// (and its golden tests) consumes.
pub struct FileSpec {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Short crate directory name (`""` for the root package).
    pub krate: String,
    /// Binary target?
    pub is_binary: bool,
    /// The file's source text.
    pub src: String,
}

/// The full pipeline's outcome: the report plus the call graph and the
/// per-rule sections destined for `GRAPH_report.json`.
pub struct WorkspaceOutcome {
    /// Findings, suppressions, demotions, debt, timings.
    pub report: Report,
    /// The workspace call graph (for `GRAPH_report.json` / DOT).
    pub graph: Graph,
    /// Per-rule `GRAPH_report.json` sections.
    pub sections: Vec<(&'static str, String)>,
}

/// Lints the workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`) through the full graph pipeline, without
/// timing (the library never reads the clock; pass a monotonic-micros
/// closure to [`lint_workspace_timed`] for per-rule timings).
pub fn lint_workspace(root: &Path) -> Result<Report, LintError> {
    lint_workspace_timed(root, &mut || 0).map(|o| o.report)
}

/// [`lint_workspace`] with per-rule timing and the graph artifacts.
/// `clock` must return monotonic microseconds; the binary supplies an
/// `Instant`-based closure (binaries are exempt from `no-wall-clock`).
pub fn lint_workspace_timed(
    root: &Path,
    clock: &mut dyn FnMut() -> u64,
) -> Result<WorkspaceOutcome, LintError> {
    if !root.join("Cargo.toml").is_file() {
        return Err(LintError::NotAWorkspace {
            root: root.to_path_buf(),
        });
    }
    let mut files = Vec::new();
    collect_rs(&root.join("src"), root, "", &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)
            .map_err(|e| LintError::io(&crates_dir, e))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            if entry.is_dir() {
                let name = entry
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                collect_rs(&entry.join("src"), root, &name, &mut files)?;
            }
        }
    }
    let mut specs = Vec::with_capacity(files.len());
    for file in files {
        let src = fs::read_to_string(&file.abs).map_err(|e| LintError::io(&file.abs, e))?;
        specs.push(FileSpec {
            rel: file.rel,
            krate: file.krate,
            is_binary: file.is_binary,
            src,
        });
    }
    Ok(lint_files(&specs, clock))
}

/// The whole interprocedural pipeline over in-memory files:
///
/// 1. **Lexical pass** — per file: lex, scan, parse items, run the
///    per-file rules (everything except `cancellation-poll`, whose job
///    the graph rule now does), collect pragmas.
/// 2. **Graph pass** — build the workspace call graph, run
///    `transitive-no-panic`, `cancellation-reachability`, and
///    `lock-order`; *demote* raw findings at graph-proven sites.
/// 3. **Suppression pass** — match pragmas against the surviving
///    findings (`cancellation-poll` aliases the reachability rule);
///    unused pragmas become `unused-suppression` findings, with a
///    `suppression-debt` message when the graph proof is what made
///    them redundant.
pub fn lint_files(files: &[FileSpec], clock: &mut dyn FnMut() -> u64) -> WorkspaceOutcome {
    let mut acc: BTreeMap<&'static str, u64> = BTreeMap::new();
    let timed = |acc: &mut BTreeMap<&'static str, u64>,
                 key: &'static str,
                 clock: &mut dyn FnMut() -> u64,
                 start: u64| {
        *acc.entry(key).or_insert(0) += clock().saturating_sub(start);
    };

    let mut raw: Vec<Finding> = Vec::new();
    let mut meta: Vec<Finding> = Vec::new();
    let mut pragmas_by_file: BTreeMap<String, Vec<Pragma>> = BTreeMap::new();
    let mut inputs: Vec<GraphInput> = Vec::new();
    let mut report = Report::default();

    for file in files {
        report.files.push(file.rel.clone());
        let t = clock();
        let map = FileMap::build(&file.src, lex(&file.src));
        let parsed = parser::parse(&file.src, &map);
        timed(&mut acc, "parse", clock, t);
        let sig: Vec<usize> = map
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        let ctx = FileCtx {
            src: &file.src,
            path: &file.rel,
            map: &map,
            sig: &sig,
        };
        if NO_PANIC_CRATES.contains(&file.krate.as_str()) && !file.is_binary {
            let t = clock();
            raw.extend(rules::no_panic(&ctx));
            timed(&mut acc, "no-panic", clock, t);
        }
        if !THREAD_FILES.contains(&file.rel.as_str()) {
            let t = clock();
            raw.extend(rules::thread_discipline(&ctx));
            timed(&mut acc, "thread-discipline", clock, t);
        }
        if CLOCK_CRATES.contains(&file.krate.as_str())
            && !file.is_binary
            && !CLOCK_FILES.contains(&file.rel.as_str())
        {
            let t = clock();
            raw.extend(rules::no_wall_clock(&ctx));
            timed(&mut acc, "no-wall-clock", clock, t);
        }
        if !file.is_binary {
            let t = clock();
            raw.extend(rules::error_hygiene(&ctx));
            timed(&mut acc, "error-hygiene", clock, t);
        }
        let (pragmas, bad) = pragma::collect(&file.src, &map.tokens, &file.rel, KNOWN_RULES);
        meta.extend(bad);
        pragmas_by_file.insert(file.rel.clone(), pragmas);
        inputs.push(GraphInput {
            rel: file.rel.clone(),
            krate: file.krate.clone(),
            is_binary: file.is_binary,
            parsed,
        });
    }

    let t = clock();
    let graph = Graph::build(inputs);
    timed(&mut acc, "graph-build", clock, t);

    let t = clock();
    let tnp = graph_rules::transitive_no_panic(&graph, &raw, NO_PANIC_CRATES);
    timed(&mut acc, "transitive-no-panic", clock, t);
    let t = clock();
    let cr = graph_rules::cancellation_reachability(&graph);
    timed(&mut acc, "cancellation-reachability", clock, t);
    let t = clock();
    let lo = graph_rules::lock_order(&graph);
    timed(&mut acc, "lock-order", clock, t);

    let t = clock();
    // Demote raw findings at graph-proven sites.
    let proven: Vec<&ProvenSite> = tnp.proven.iter().chain(cr.proven.iter()).collect();
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw {
        let proof = proven.iter().find(|p| {
            p.file == f.file && p.line == f.line && p.rules.iter().any(|r| rules_match(&f.rule, r))
        });
        match proof {
            Some(p) => report.demoted.push(Demoted {
                finding: f,
                why: p.why.clone(),
            }),
            None => findings.push(f),
        }
    }
    findings.extend(tnp.findings);
    findings.extend(cr.findings);
    findings.extend(lo.findings);
    report.explanations.extend(tnp.explanations);
    report.explanations.extend(cr.explanations);
    report.explanations.extend(lo.explanations);

    // Suppression pass.
    let mut live: Vec<Finding> = meta;
    for f in findings {
        let reason = pragmas_by_file
            .get_mut(&f.file)
            .and_then(|ps| matching_pragma(ps, &f));
        match reason {
            Some(reason) => report.suppressed.push(Suppressed { finding: f, reason }),
            None => live.push(f),
        }
    }
    let mut redundant = 0usize;
    for (file, pragmas) in &pragmas_by_file {
        for p in pragmas {
            if p.used {
                continue;
            }
            let proof = proven.iter().find(|pr| {
                &pr.file == file
                    && p.rules
                        .iter()
                        .any(|r| pr.rules.iter().any(|r2| rules_match(r, r2)))
                    && (p.scope == PragmaScope::File || pr.line == p.line || pr.line == p.line + 1)
            });
            let message = match proof {
                Some(pr) => {
                    redundant += 1;
                    format!(
                        "suppression-debt: pragma allows `{}` but the call graph proves the site safe ({}) — delete the pragma",
                        p.rules.join(", "),
                        pr.why
                    )
                }
                None => format!(
                    "pragma allows `{}` but suppressed nothing — remove it",
                    p.rules.join(", ")
                ),
            };
            live.push(Finding {
                rule: RULE_UNUSED_SUPPRESSION.to_string(),
                file: file.clone(),
                line: p.line,
                message,
            });
        }
    }
    timed(&mut acc, "suppression-debt", clock, t);

    live.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report.findings = live;
    report.debt = SuppressionDebt {
        baseline: None,
        current: report.suppressed.len(),
        demoted: report.demoted.len(),
        redundant,
    };
    report.rule_timings = acc.into_iter().map(|(k, v)| (k.to_string(), v)).collect();

    WorkspaceOutcome {
        report,
        graph,
        sections: vec![tnp.section, cr.section, lo.section],
    }
}

/// Recursively collects `.rs` files under `dir` (sorted, deterministic).
fn collect_rs(
    dir: &Path,
    root: &Path,
    krate: &str,
    out: &mut Vec<SourceFile>,
) -> Result<(), LintError> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| LintError::io(dir, e))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, krate, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let is_binary = rel.ends_with("/main.rs") || rel.contains("/src/bin/");
            out.push(SourceFile {
                abs: path,
                rel,
                krate: krate.to_string(),
                is_binary,
            });
        }
    }
    Ok(())
}

/// The per-file lint outcome (findings already split by suppression).
pub struct FileOutcome {
    /// Live findings.
    pub findings: Vec<Finding>,
    /// Pragma-silenced findings with their reasons.
    pub suppressed: Vec<Suppressed>,
}

/// Lints one file's source text as if it lived at `rel` in crate
/// `krate` (short name, `""` for the root package). This is the
/// fixture-test entry point; [`lint_workspace`] calls it per file.
pub fn lint_source(rel: &str, krate: &str, is_binary: bool, src: &str) -> FileOutcome {
    let map = FileMap::build(src, lex(src));
    let sig: Vec<usize> = map
        .tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .map(|(i, _)| i)
        .collect();
    let ctx = FileCtx {
        src,
        path: rel,
        map: &map,
        sig: &sig,
    };

    let mut raw: Vec<Finding> = Vec::new();
    if NO_PANIC_CRATES.contains(&krate) && !is_binary {
        raw.extend(rules::no_panic(&ctx));
    }
    if CANCEL_FILES.contains(&rel) {
        raw.extend(rules::cancellation_poll(&ctx));
    }
    if !THREAD_FILES.contains(&rel) {
        raw.extend(rules::thread_discipline(&ctx));
    }
    if CLOCK_CRATES.contains(&krate) && !is_binary && !CLOCK_FILES.contains(&rel) {
        raw.extend(rules::no_wall_clock(&ctx));
    }
    if !is_binary {
        raw.extend(rules::error_hygiene(&ctx));
    }

    let (mut pragmas, mut findings) = pragma::collect(src, &map.tokens, rel, KNOWN_RULES);
    let mut suppressed = Vec::new();
    for f in raw {
        match matching_pragma(&mut pragmas, &f) {
            Some(reason) => suppressed.push(Suppressed { finding: f, reason }),
            None => findings.push(f),
        }
    }
    for p in &pragmas {
        if !p.used {
            findings.push(Finding {
                rule: RULE_UNUSED_SUPPRESSION.to_string(),
                file: rel.to_string(),
                line: p.line,
                message: format!(
                    "pragma allows `{}` but suppressed nothing — remove it",
                    p.rules.join(", ")
                ),
            });
        }
    }
    findings.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    FileOutcome {
        findings,
        suppressed,
    }
}

/// Finds a pragma covering `f`, marks it used, and returns its reason.
/// Site pragmas (exact line or line above) win over file pragmas.
/// Rule names match via [`rules_match`], so `cancellation-poll`
/// pragmas cover `cancellation-reachability` findings.
fn matching_pragma(pragmas: &mut [Pragma], f: &Finding) -> Option<String> {
    let site = pragmas.iter_mut().find(|p| {
        p.scope == PragmaScope::Site
            && p.rules.iter().any(|r| rules_match(&f.rule, r))
            && (f.line == p.line || f.line == p.line + 1)
    });
    let p = match site {
        Some(p) => p,
        None => pragmas.iter_mut().find(|p| {
            p.scope == PragmaScope::File && p.rules.iter().any(|r| rules_match(&f.rule, r))
        })?,
    };
    p.used = true;
    Some(p.reason.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_pragma_suppresses_and_is_used() {
        let src = "fn f() {\n    // cqshap-lint: allow(no-panic) -- invariant: map key inserted above\n    let x = m.get(k).unwrap();\n}\n";
        let out = lint_source("crates/core/src/x.rs", "core", false, src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.suppressed.len(), 1);
        assert!(out.suppressed[0].reason.contains("invariant"));
    }

    #[test]
    fn trailing_pragma_suppresses_same_line() {
        let src = "fn f() { let x = v[i]; } // cqshap-lint: allow(no-panic-index) -- i < len by loop bound\n";
        let out = lint_source("crates/db/src/x.rs", "db", false, src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.suppressed.len(), 1);
    }

    #[test]
    fn file_pragma_suppresses_everywhere_and_unused_is_flagged() {
        let src = "// cqshap-lint: allow-file(no-panic-index) -- limb kernels are bounds-guarded\nfn f() { v[0]; }\nfn g() { w[1]; }\n";
        let out = lint_source("crates/numeric/src/x.rs", "numeric", false, src);
        assert!(out.findings.is_empty());
        assert_eq!(out.suppressed.len(), 2);

        let unused = "// cqshap-lint: allow-file(no-panic-index) -- nothing here\nfn f() {}\n";
        let out = lint_source("crates/numeric/src/x.rs", "numeric", false, unused);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, RULE_UNUSED_SUPPRESSION);
    }

    #[test]
    fn scoping_respects_crate_and_binary() {
        let panics = "fn f() { x.unwrap(); }";
        // Engine crate: flagged.
        assert_eq!(
            lint_source("crates/core/src/x.rs", "core", false, panics)
                .findings
                .len(),
            1
        );
        // Non-engine crate: no-panic does not apply.
        assert!(lint_source("crates/query/src/x.rs", "query", false, panics)
            .findings
            .is_empty());
        // Wall clock in a binary: exempt.
        let clock = "fn main() { let t = std::time::Instant::now(); }";
        assert!(lint_source("src/main.rs", "", true, clock)
            .findings
            .is_empty());
        // Wall clock in engine lib code: flagged.
        assert_eq!(
            lint_source("crates/engine/src/x.rs", "engine", false, clock)
                .findings
                .len(),
            1
        );
        // The deadline module itself: exempt.
        assert!(
            lint_source("crates/numeric/src/cancel.rs", "numeric", false, clock)
                .findings
                .is_empty()
        );
    }
}
