//! Item/block structure over the token stream.
//!
//! The rules need two structural facts the flat token stream does not
//! give them directly: *which byte ranges are test code* (items under
//! `#[cfg(test)]` / `#[test]`, or `mod tests`-style modules), and
//! *where each `fn`'s signature and body live* (for the
//! cancellation-poll rule). Both are recovered by brace matching over
//! the significant (non-whitespace, non-comment) tokens — no parser,
//! no AST, which keeps the scanner total on arbitrary input just like
//! the lexer.

use crate::lexer::{Token, TokenKind};

/// One function found in the file.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function's name.
    pub name: String,
    /// Byte offset of the `fn` keyword.
    pub sig_start: usize,
    /// Byte offset of the body's opening `{`.
    pub body_start: usize,
    /// Byte offset one past the body's closing `}` (or end of input
    /// when unbalanced).
    pub body_end: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// The structural map of one file: its tokens plus the recovered
/// test regions and function extents.
#[derive(Debug)]
pub struct FileMap {
    /// Every token of the file, in order.
    pub tokens: Vec<Token>,
    /// Byte ranges attributed to test-only compilation.
    pub test_ranges: Vec<(usize, usize)>,
    /// Every `fn` with a body, in source order (nested fns included).
    pub fns: Vec<FnInfo>,
}

impl FileMap {
    /// Builds the map for one lexed file.
    pub fn build(src: &str, tokens: Vec<Token>) -> FileMap {
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        let test_ranges = find_test_ranges(src, &tokens, &sig);
        let fns = find_fns(src, &tokens, &sig);
        FileMap {
            tokens,
            test_ranges,
            fns,
        }
    }

    /// Is byte offset `pos` inside test-only code?
    pub fn in_test(&self, pos: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| pos >= s && pos < e)
    }
}

fn text<'s>(src: &'s str, t: &Token) -> &'s str {
    t.text(src)
}

/// Finds the matching `}` for the `{` at significant index `open`,
/// returning the significant index of the closer (or the last index).
fn match_brace(src: &str, tokens: &[Token], sig: &[usize], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, &ti) in sig.iter().enumerate().skip(open) {
        let t = &tokens[ti];
        if t.kind == TokenKind::Punct {
            match text(src, t) {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
    }
    sig.len().saturating_sub(1)
}

/// Walks an attribute starting at the `#` (significant index `k`),
/// returning `(one past the closing `]`, attribute idents)`.
fn parse_attribute(src: &str, tokens: &[Token], sig: &[usize], k: usize) -> (usize, Vec<String>) {
    let mut idents = Vec::new();
    let mut j = k + 1;
    // Optional `!` of inner attributes.
    if j < sig.len() && text(src, &tokens[sig[j]]) == "!" {
        j += 1;
    }
    if j >= sig.len() || text(src, &tokens[sig[j]]) != "[" {
        return (k + 1, idents);
    }
    let mut depth = 0usize;
    while j < sig.len() {
        let t = &tokens[sig[j]];
        match (t.kind, text(src, t)) {
            (TokenKind::Punct, "[") => depth += 1,
            (TokenKind::Punct, "]") => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, idents);
                }
            }
            (TokenKind::Ident, w) => idents.push(w.to_string()),
            _ => {}
        }
        j += 1;
    }
    (j, idents)
}

/// Byte ranges of test-only code: any item annotated `#[test]`,
/// `#[cfg(test)]` (possibly nested inside `any(…)`/`all(…)`), or a
/// `mod` whose name contains `test`.
fn find_test_ranges(src: &str, tokens: &[Token], sig: &[usize]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut k = 0usize;
    while k < sig.len() {
        let t = &tokens[sig[k]];
        let w = text(src, t);
        if t.kind == TokenKind::Punct && w == "#" {
            let attr_start = t.start;
            let (mut next, idents) = parse_attribute(src, tokens, sig, k);
            // `not(…)` in a cfg means the item is *library* code in
            // test builds' complement — conservatively never exempt it.
            let is_test_attr = idents.first().map(String::as_str) == Some("test")
                || (idents.first().map(String::as_str) == Some("cfg")
                    && idents.iter().any(|i| i == "test")
                    && !idents.iter().any(|i| i == "not"));
            if !is_test_attr {
                k = next;
                continue;
            }
            // Skip further attributes on the same item.
            while next < sig.len() && text(src, &tokens[sig[next]]) == "#" {
                next = parse_attribute(src, tokens, sig, next).0;
            }
            // Find the item's body: first `{` outside parens/brackets
            // (a `;` first means a bodyless item — nothing to exempt).
            let mut depth = 0i64;
            let mut j = next;
            let mut found = None;
            while j < sig.len() {
                let u = &tokens[sig[j]];
                if u.kind == TokenKind::Punct {
                    match text(src, u) {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => {
                            found = Some(j);
                            break;
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            if let Some(open) = found {
                let close = match_brace(src, tokens, sig, open);
                out.push((attr_start, tokens[sig[close]].end));
                k = close + 1;
            } else {
                k = j + 1;
            }
            continue;
        }
        // `mod <name-containing-test> {` without an explicit attribute.
        if t.kind == TokenKind::Ident && w == "mod" && k + 2 < sig.len() {
            let name = &tokens[sig[k + 1]];
            let brace = &tokens[sig[k + 2]];
            if name.kind == TokenKind::Ident
                && text(src, name).contains("test")
                && text(src, brace) == "{"
            {
                let close = match_brace(src, tokens, sig, k + 2);
                out.push((t.start, tokens[sig[close]].end));
                k = close + 1;
                continue;
            }
        }
        k += 1;
    }
    out
}

/// Every `fn` with a body. Trait-method declarations (`fn f(…);`) have
/// no body and are skipped; nested fns and fns inside test modules are
/// included (callers filter by [`FileMap::in_test`]).
fn find_fns(src: &str, tokens: &[Token], sig: &[usize]) -> Vec<FnInfo> {
    let mut out = Vec::new();
    for k in 0..sig.len() {
        let t = &tokens[sig[k]];
        if t.kind != TokenKind::Ident || text(src, t) != "fn" {
            continue;
        }
        // `fn` in `fn(...)` pointer/trait types has no name ident.
        let Some(&name_ti) = sig.get(k + 1) else {
            continue;
        };
        let name_tok = &tokens[name_ti];
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        // `fn fn …` (garbage input): the second `fn` may open a real
        // item, so do not also claim it as this one's name.
        if text(src, name_tok) == "fn" {
            continue;
        }
        let mut depth = 0i64;
        let mut j = k + 2;
        let mut open = None;
        while j < sig.len() {
            let u = &tokens[sig[j]];
            if u.kind == TokenKind::Punct {
                match text(src, u) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        open = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let close = match_brace(src, tokens, sig, open);
        out.push(FnInfo {
            name: text(src, name_tok).to_string(),
            sig_start: t.start,
            body_start: tokens[sig[open]].start,
            body_end: tokens[sig[close]].end,
            line: t.line,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn map(src: &str) -> FileMap {
        FileMap::build(src, lex(src))
    }

    #[test]
    fn cfg_test_mod_is_a_test_range() {
        let src =
            "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let m = map(src);
        let lib_unwrap = src.find("x.unwrap").unwrap();
        let test_unwrap = src.find("y.unwrap").unwrap();
        assert!(!m.in_test(lib_unwrap));
        assert!(m.in_test(test_unwrap));
    }

    #[test]
    fn test_attr_on_fn_is_exempt() {
        let src = "#[test]\nfn check() { v[0]; }\nfn real() { v[0]; }";
        let m = map(src);
        assert!(m.in_test(src.find("check").unwrap()));
        assert!(!m.in_test(src.rfind("v[0]").unwrap()));
    }

    #[test]
    fn cfg_any_test_counts() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nmod helpers { fn h() {} }";
        let m = map(src);
        assert!(m.in_test(src.find("h()").unwrap()));
    }

    #[test]
    fn fns_are_found_with_bodies() {
        let src = "impl X { fn a(&self) -> u8 { 1 } }\ntrait T { fn decl(&self); }\nfn top<F: Fn() -> [u8; 2]>(f: F) { loop {} }";
        let m = map(src);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "top"]);
        let top = &m.fns[1];
        assert!(src[top.body_start..top.body_end].contains("loop"));
    }

    #[test]
    fn cfg_test_on_bodyless_item_is_harmless() {
        let src = "#[cfg(test)]\nuse crate::helper;\nfn lib() {}";
        let m = map(src);
        assert!(!m.in_test(src.find("lib").unwrap()));
    }
}
