//! The `cqshap-lint` binary: lint the workspace through the
//! interprocedural pipeline, print findings, write `LINT_report.json`
//! plus the call-graph artifacts (`GRAPH_report.json`, `GRAPH.dot`),
//! enforce the suppression ratchet, and exit nonzero on violations.
//!
//! ```text
//! cargo run -p cqshap-lint [-- --root DIR] [--json PATH] [--graph-json PATH]
//!                          [--dot PATH] [--baseline PATH] [--quiet]
//!                          [--rule NAME --explain]
//! ```
//!
//! The binary owns every clock read (per-rule timings) and filesystem
//! write — the library stays pure so it can obey its own
//! `no-wall-clock` rule.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use cqshap_lint::{lint_workspace_timed, LintError};

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("cqshap-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, LintError> {
    let mut root = PathBuf::from(".");
    let mut json: Option<PathBuf> = None;
    let mut graph_json: Option<PathBuf> = None;
    let mut dot: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut explain = false;
    let mut rule_filter: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                if let Some(v) = args.next() {
                    root = PathBuf::from(v);
                }
            }
            "--json" => json = args.next().map(PathBuf::from),
            "--graph-json" => graph_json = args.next().map(PathBuf::from),
            "--dot" => dot = args.next().map(PathBuf::from),
            "--baseline" => baseline_path = args.next().map(PathBuf::from),
            "--rule" => rule_filter = args.next(),
            "--explain" => explain = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "cqshap-lint: workspace invariant checker\n\n\
                     USAGE: cqshap-lint [--root DIR] [--json PATH] [--graph-json PATH]\n\
                     \x20                 [--dot PATH] [--baseline PATH] [--quiet]\n\
                     \x20                 [--rule NAME --explain]\n\n\
                     Lexical rules (per file): no-panic, no-panic-index, thread-discipline,\n\
                     no-wall-clock, error-hygiene.\n\
                     Graph rules (workspace call graph): transitive-no-panic,\n\
                     cancellation-reachability, lock-order, suppression-debt.\n\n\
                     Writes LINT_report.json (--json), GRAPH_report.json (--graph-json),\n\
                     and GRAPH.dot (--dot). The suppression count must not exceed the\n\
                     committed baseline (crates/lint/suppression-baseline.txt, --baseline).\n\
                     `--rule NAME --explain` prints the call-graph path behind each\n\
                     finding (live or suppressed) of that rule. Exits 1 on unsuppressed\n\
                     findings or a ratchet breach."
                );
                return Ok(ExitCode::SUCCESS);
            }
            other => {
                eprintln!("cqshap-lint: unknown argument `{other}` (see --help)");
                return Ok(ExitCode::from(2));
            }
        }
    }

    // Binaries are outside the deadline contract; the linter's own
    // per-rule timings are exactly the sanctioned human-facing case.
    #[allow(clippy::disallowed_methods)]
    let t0 = Instant::now();
    let mut clock = move || t0.elapsed().as_micros() as u64;
    let mut outcome = lint_workspace_timed(&root, &mut clock)?;

    // Suppression ratchet: the committed baseline is a ceiling.
    let baseline_path =
        baseline_path.unwrap_or_else(|| root.join("crates/lint/suppression-baseline.txt"));
    let baseline = std::fs::read_to_string(&baseline_path)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok());
    outcome.report.debt.baseline = baseline;

    let json_path = json.unwrap_or_else(|| root.join("LINT_report.json"));
    std::fs::write(&json_path, outcome.report.to_json()).map_err(|e| LintError::Io {
        path: json_path.clone(),
        source: e,
    })?;
    let graph_json_path = graph_json.unwrap_or_else(|| root.join("GRAPH_report.json"));
    std::fs::write(&graph_json_path, outcome.graph.to_json(&outcome.sections)).map_err(|e| {
        LintError::Io {
            path: graph_json_path.clone(),
            source: e,
        }
    })?;
    let dot_path = dot.unwrap_or_else(|| root.join("GRAPH.dot"));
    std::fs::write(&dot_path, outcome.graph.to_dot()).map_err(|e| LintError::Io {
        path: dot_path.clone(),
        source: e,
    })?;

    let report = &outcome.report;
    if let Some(rule) = &rule_filter {
        if explain {
            print_explanations(report, rule);
        }
    }

    let ratchet_breach = baseline.is_some_and(|b| report.debt.current > b);
    if !quiet {
        for f in &report.findings {
            println!("{f}");
        }
        if ratchet_breach {
            println!(
                "cqshap-lint: suppression ratchet breached: {} suppression(s) > committed baseline {} ({}) — remove pragmas or justify lowering the bar by updating the baseline",
                report.debt.current,
                report.debt.baseline.unwrap_or(0),
                baseline_path.display()
            );
        }
        let timings: Vec<String> = report
            .rule_timings
            .iter()
            .map(|(r, us)| format!("{r} {:.1}ms", *us as f64 / 1000.0))
            .collect();
        println!(
            "cqshap-lint: {} file(s), {} finding(s), {} suppressed ({} demoted by graph, {} redundant pragma(s)) (reports: {}, {}, {})",
            report.files.len(),
            report.findings.len(),
            report.suppressed.len(),
            report.debt.demoted,
            report.debt.redundant,
            json_path.display(),
            graph_json_path.display(),
            dot_path.display()
        );
        println!("cqshap-lint: rule timings: {}", timings.join(", "));
    }
    Ok(if report.is_clean() && !ratchet_breach {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `--rule NAME --explain`: the call-graph path behind each finding of
/// `rule`, live or suppressed, so a suppression review can see *which
/// entry point* makes a site reachable instead of reconstructing it by
/// hand.
fn print_explanations(report: &cqshap_lint::Report, rule: &str) {
    let mut shown = 0usize;
    for ex in &report.explanations {
        if ex.rule != rule {
            continue;
        }
        let status = if report
            .findings
            .iter()
            .any(|f| f.file == ex.file && f.line == ex.line && f.rule == ex.rule)
        {
            "FINDING"
        } else if report
            .suppressed
            .iter()
            .any(|s| s.finding.file == ex.file && s.finding.line == ex.line)
        {
            "suppressed"
        } else {
            "info"
        };
        println!("{}:{} [{}] ({status})", ex.file, ex.line, ex.rule);
        for (i, step) in ex.path.iter().enumerate() {
            let lead = if i == 0 { "entry" } else { "  via" };
            println!("  {lead} → {step}");
        }
        shown += 1;
    }
    if shown == 0 {
        println!("cqshap-lint: no findings of rule `{rule}` carry a call-graph path");
    }
    for d in &report.demoted {
        if d.finding.rule == rule {
            println!(
                "{}:{} [{}] demoted — {}",
                d.finding.file, d.finding.line, d.finding.rule, d.why
            );
        }
    }
}
