//! The `cqshap-lint` binary: lint the workspace, print findings, write
//! `LINT_report.json`, exit nonzero on violations.
//!
//! ```text
//! cargo run -p cqshap-lint [-- --root DIR] [--json PATH] [--quiet]
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use cqshap_lint::{lint_workspace, LintError};

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("cqshap-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, LintError> {
    let mut root = PathBuf::from(".");
    let mut json: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                if let Some(v) = args.next() {
                    root = PathBuf::from(v);
                }
            }
            "--json" => json = args.next().map(PathBuf::from),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "cqshap-lint: workspace invariant checker\n\n\
                     USAGE: cqshap-lint [--root DIR] [--json PATH] [--quiet]\n\n\
                     Checks panic-freedom, cancellation-safety, thread discipline,\n\
                     wall-clock centralization, and error hygiene. Writes LINT_report.json\n\
                     (override with --json) and exits 1 on unsuppressed findings."
                );
                return Ok(ExitCode::SUCCESS);
            }
            other => {
                eprintln!("cqshap-lint: unknown argument `{other}` (see --help)");
                return Ok(ExitCode::from(2));
            }
        }
    }

    let report = lint_workspace(&root)?;
    let json_path = json.unwrap_or_else(|| root.join("LINT_report.json"));
    std::fs::write(&json_path, report.to_json()).map_err(|e| LintError::Io {
        path: json_path.clone(),
        source: e,
    })?;

    if !quiet {
        for f in &report.findings {
            println!("{f}");
        }
        println!(
            "cqshap-lint: {} file(s), {} finding(s), {} suppressed (report: {})",
            report.files.len(),
            report.findings.len(),
            report.suppressed.len(),
            json_path.display()
        );
    }
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
