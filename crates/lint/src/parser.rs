//! Item-level parsing on top of the total [lexer](crate::lexer).
//!
//! The interprocedural rules need more structure than the
//! [scanner](crate::scanner)'s flat fn extents: *which module and impl
//! block* each fn lives in (for call resolution), *what each fn body
//! calls* (for the workspace call graph), and *what each body acquires*
//! (for the lock-order analysis). This module recovers exactly that —
//! fn items with their module/impl context, call expressions, bare
//! function references (closure captures, `map(Self::f)`-style values),
//! loop sites, cancellation-poll evidence, and `Mutex`/`RwLock`/
//! `OnceLock` acquisition sites — with **no full expression grammar**:
//! everything is brace/paren matching over the significant tokens, so
//! the parser stays total on arbitrary input just like the lexer.
//!
//! Spans are byte-exact against the token stream: every recorded
//! offset is the `start`/`end` of some lexed token, a property pinned
//! by the `parser_props` proptest suite.

use crate::lexer::{lex, Token, TokenKind};
use crate::scanner::FileMap;

/// Rust keywords (incl. reserved) — idents that can never be call
/// targets or function references.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "unsafe", "use", "where", "while", "yield",
];

/// One call expression inside a fn body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Path segments of the callee, e.g. `["budget", "check"]` for
    /// `budget::check(…)`; a single segment for `foo(…)` and for
    /// method calls.
    pub segments: Vec<String>,
    /// `.name(…)` method-call syntax?
    pub method: bool,
    /// Method call whose receiver is literally `self` (`self.f(…)`) —
    /// the one method-call shape whose impl is knowable without type
    /// inference.
    pub self_receiver: bool,
    /// 1-based line of the callee name.
    pub line: u32,
    /// Byte offset of the callee name token.
    pub offset: usize,
}

impl CallSite {
    /// The callee's final segment (its bare name).
    pub fn name(&self) -> &str {
        // An empty-segment CallSite is never constructed (see
        // `finish_call`), but stay total anyway.
        self.segments.last().map(String::as_str).unwrap_or("")
    }
}

/// What kind of synchronization primitive an acquisition touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `.lock()` on a `Mutex`.
    Mutex,
    /// `.read()` on an `RwLock`.
    RwRead,
    /// `.write()` on an `RwLock`.
    RwWrite,
    /// `.get_or_init(…)` on a `OnceLock` (the init closure runs under
    /// the cell's internal lock).
    OnceInit,
}

impl LockKind {
    /// The method name that performs this acquisition.
    pub fn method(self) -> &'static str {
        match self {
            LockKind::Mutex => "lock",
            LockKind::RwRead => "read",
            LockKind::RwWrite => "write",
            LockKind::OnceInit => "get_or_init",
        }
    }
}

/// One lock acquisition inside a fn body, with its lexically inferred
/// guard extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSite {
    /// The acquisition method.
    pub kind: LockKind,
    /// The receiver chain as written, e.g. `self.reduce_cache`, `POOL`.
    /// Locals assigned from a lock-bearing expression are resolved one
    /// step (`let pool = POOL.get_or_init(…); pool.lock()` reports
    /// `POOL`).
    pub receiver: String,
    /// The `let` binding holding the guard, if any.
    pub guard: Option<String>,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Byte offset of the acquisition method token.
    pub offset: usize,
    /// Byte offset one past the end of the guard's lexical extent: a
    /// bound guard lives to `drop(binding)` or its enclosing block's
    /// `}`; a temporary guard lives to the statement's `;` at the same
    /// brace depth (or the enclosing block's `}` for `if let`-style
    /// scrutinees, matching pre-2024 temporary lifetimes).
    pub extent_end: usize,
}

/// One `for`/`while`/`loop` keyword inside a fn body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopSite {
    /// 1-based line of the loop keyword.
    pub line: u32,
    /// Byte offset of the loop keyword.
    pub offset: usize,
}

/// One parsed fn item with its resolution context and body facts.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The fn's bare name.
    pub name: String,
    /// Enclosing inline `mod` names, outermost first (the file's own
    /// module path is prepended by the graph builder).
    pub modules: Vec<String>,
    /// The `impl` block's self type, when inside one (`impl Foo` and
    /// `impl Trait for Foo` both record `Foo`).
    pub impl_type: Option<String>,
    /// The implemented trait, for `impl Trait for Type` blocks.
    pub impl_trait: Option<String>,
    /// Unrestricted `pub` visibility (`pub(crate)`/`pub(super)` do not
    /// count — they are not part of the crate's public API).
    pub is_pub: bool,
    /// Does the signature mention `Budget` or `CancelToken`?
    pub takes_token: bool,
    /// Is the item inside test-only code?
    pub is_test: bool,
    /// Byte offset of the `fn` keyword.
    pub sig_start: usize,
    /// Byte offset of the body's `{`.
    pub body_start: usize,
    /// Byte offset one past the body's `}`.
    pub body_end: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the body's closing `}`.
    pub end_line: u32,
    /// Call expressions in the body (nested fns excluded — they answer
    /// for themselves; closure bodies included — their captures execute
    /// on behalf of this fn).
    pub calls: Vec<CallSite>,
    /// Bare identifier references in the body that are *not* calls —
    /// the conservative net for fns passed as values (`map(Self::f)`,
    /// closure captures of fn items). Only resolved against known fn
    /// names by the graph builder; unrelated idents are dropped there.
    pub refs: Vec<(String, u32)>,
    /// Loop keywords in the body (nested fns excluded).
    pub loops: Vec<LoopSite>,
    /// Does the body show lexical cancellation-poll evidence?
    pub polls: bool,
    /// Lock acquisitions in the body (nested fns excluded).
    pub locks: Vec<LockSite>,
}

/// One parsed file: its fn items plus the token stream they index.
#[derive(Debug)]
pub struct ParsedFile {
    /// Every fn item with a body, in source order.
    pub fns: Vec<FnItem>,
    /// Lock-bearing type declarations seen in the file (`Mutex<…>`,
    /// `RwLock<…>`, `OnceLock<…>` fields/statics), as
    /// `(declared name, type ident, line)` — the lock-order rule's
    /// coverage universe.
    pub lock_decls: Vec<(String, String, u32)>,
}

/// Identifier evidence that a body participates in cooperative
/// cancellation (same vocabulary as the lexical `cancellation-poll`
/// rule: polls, charges, or threads a token/budget through).
pub fn is_poll_evidence(word: &str) -> bool {
    word == "check"
        || word == "check_partial"
        || word == "charge"
        || word == "budget"
        || word == "token"
        || word == "should_stop"
        || word.to_ascii_lowercase().contains("cancel")
}

/// Parses one file. `map` must be the [`FileMap`] built from the same
/// `src` (the parser reuses its tokens and test ranges).
pub fn parse(src: &str, map: &FileMap) -> ParsedFile {
    let sig: Vec<usize> = map
        .tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .map(|(i, _)| i)
        .collect();
    Parser {
        src,
        tokens: &map.tokens,
        sig: &sig,
        map,
    }
    .run()
}

/// Convenience: lex, scan, and parse `src` in one step.
pub fn parse_source(src: &str) -> ParsedFile {
    let map = FileMap::build(src, lex(src));
    parse(src, &map)
}

struct Parser<'s> {
    src: &'s str,
    tokens: &'s [Token],
    sig: &'s [usize],
    map: &'s FileMap,
}

/// One entry of the module/impl context stack.
#[derive(Debug, Clone)]
enum Scope {
    Module(String),
    Impl {
        self_type: Option<String>,
        trait_name: Option<String>,
    },
    Other,
}

impl<'s> Parser<'s> {
    fn tok(&self, k: usize) -> &Token {
        &self.tokens[self.sig[k]]
    }

    fn text(&self, k: usize) -> &'s str {
        self.tok(k).text(self.src)
    }

    fn is_punct(&self, k: usize, p: &str) -> bool {
        k < self.sig.len() && self.tok(k).kind == TokenKind::Punct && self.text(k) == p
    }

    fn is_ident(&self, k: usize) -> bool {
        k < self.sig.len() && self.tok(k).kind == TokenKind::Ident
    }

    fn is_ident_text(&self, k: usize, w: &str) -> bool {
        self.is_ident(k) && self.text(k) == w
    }

    /// Significant index of the `}` matching the `{` at `open`
    /// (falls back to the last token on unbalanced input).
    fn match_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for k in open..self.sig.len() {
            if self.tok(k).kind == TokenKind::Punct {
                match self.text(k) {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            return k;
                        }
                    }
                    _ => {}
                }
            }
        }
        self.sig.len().saturating_sub(1)
    }

    fn run(self) -> ParsedFile {
        let mut fns = Vec::new();
        let mut lock_decls = Vec::new();
        // Scope stack entries are (scope, closing sig index).
        let mut stack: Vec<(Scope, usize)> = Vec::new();
        let mut k = 0usize;
        while k < self.sig.len() {
            while let Some(&(_, close)) = stack.last() {
                if k > close {
                    stack.pop();
                } else {
                    break;
                }
            }
            let t = self.tok(k);
            let w = self.text(k);
            match (t.kind, w) {
                (TokenKind::Ident, "mod") if self.is_ident(k + 1) && self.is_punct(k + 2, "{") => {
                    let close = self.match_brace(k + 2);
                    stack.push((Scope::Module(self.text(k + 1).to_string()), close));
                    k += 3;
                }
                (TokenKind::Ident, "impl") => {
                    let (scope, next) = self.parse_impl_header(k);
                    match next {
                        Some(open) => {
                            let close = self.match_brace(open);
                            stack.push((scope, close));
                            k = open + 1;
                        }
                        None => k += 1,
                    }
                }
                (TokenKind::Ident, "fn")
                    if self.is_ident(k + 1) && !self.is_ident_text(k + 1, "fn") =>
                {
                    match self.parse_fn(k, &stack) {
                        Some((item, _body_open)) => {
                            // Keep walking token by token: the scanner
                            // scans every `fn` position independently,
                            // so on malformed input further items can
                            // start inside this one's signature, and
                            // nested fns inside the body are found by
                            // the same loop either way.
                            fns.push(item);
                            k += 1;
                        }
                        None => k += 1,
                    }
                }
                (TokenKind::Ident, "Mutex" | "RwLock" | "OnceLock")
                    if self.is_punct(k + 1, "<") =>
                {
                    if let Some(name) = self.decl_name_before(k) {
                        lock_decls.push((name, w.to_string(), t.line));
                    }
                    k += 1;
                }
                _ => k += 1,
            }
        }
        ParsedFile { fns, lock_decls }
    }

    /// Walks back from a `Mutex<`/`RwLock<`/`OnceLock<` type token to
    /// the declared field/static/const name: `name: Mutex<…>` or
    /// `static NAME: … = …`. Returns `None` for uses in expression
    /// position (`Mutex::new` has no `<` and never reaches here) or
    /// inside generic soup we cannot attribute.
    fn decl_name_before(&self, k: usize) -> Option<String> {
        // Accept `name :` immediately before, or one wrapper level like
        // `name : Arc <` before the lock type.
        let mut j = k;
        for _ in 0..3 {
            if j >= 2 && self.is_punct(j - 1, ":") && self.is_ident(j - 2) {
                let name = self.text(j - 2);
                if KEYWORDS.contains(&name) {
                    return None;
                }
                return Some(name.to_string());
            }
            // Step over `Wrapper <` nesting.
            if j >= 2 && self.is_punct(j - 1, "<") && self.is_ident(j - 2) {
                j -= 2;
                continue;
            }
            break;
        }
        None
    }

    /// Parses an `impl` header starting at `k` (the `impl` keyword).
    /// Returns the scope and the `{` significant index, or `None` for
    /// headers that never open a body.
    fn parse_impl_header(&self, k: usize) -> (Scope, Option<usize>) {
        let mut idents: Vec<(usize, String)> = Vec::new();
        let mut for_at: Option<usize> = None;
        let mut angle = 0i64;
        let mut j = k + 1;
        while j < self.sig.len() {
            let t = self.tok(j);
            match (t.kind, self.text(j)) {
                (TokenKind::Punct, "<") => angle += 1,
                (TokenKind::Punct, ">") => angle -= 1,
                (TokenKind::Punct, "{") if angle <= 0 => {
                    let scope = Self::impl_scope(&idents, for_at);
                    return (scope, Some(j));
                }
                (TokenKind::Punct, ";") if angle <= 0 => break,
                (TokenKind::Ident, "for") if angle <= 0 => for_at = Some(j),
                (TokenKind::Ident, "where") if angle <= 0 => {
                    // Bounds follow; the type idents are all collected.
                    idents.push((j, "where".to_string()));
                }
                (TokenKind::Ident, w) if angle <= 0 => idents.push((j, w.to_string())),
                _ => {}
            }
            j += 1;
        }
        (Scope::Other, None)
    }

    /// Distills `impl [Trait for] Type` idents into a scope. The self
    /// type is the last path ident before the body (before any
    /// `where`); the trait is the last ident before `for`.
    fn impl_scope(idents: &[(usize, String)], for_at: Option<usize>) -> Scope {
        let before_where = |list: &[(usize, String)]| -> Vec<(usize, String)> {
            let mut out = Vec::new();
            for (i, w) in list {
                if w == "where" {
                    break;
                }
                out.push((*i, w.clone()));
            }
            out
        };
        let usable = before_where(idents);
        match for_at {
            Some(f) => {
                let trait_name = usable.iter().rfind(|(i, _)| *i < f).map(|(_, w)| w.clone());
                let self_type = usable.iter().rfind(|(i, _)| *i > f).map(|(_, w)| w.clone());
                Scope::Impl {
                    self_type,
                    trait_name,
                }
            }
            None => Scope::Impl {
                self_type: usable.last().map(|(_, w)| w.clone()),
                trait_name: None,
            },
        }
    }

    /// Parses the fn item whose `fn` keyword sits at significant index
    /// `k`. Returns the item and the body's `{` index, or `None` for
    /// bodyless declarations.
    fn parse_fn(&self, k: usize, stack: &[(Scope, usize)]) -> Option<(FnItem, usize)> {
        let name = self.text(k + 1).to_string();
        // Find the body `{` (or `;` for a declaration) at paren depth 0.
        let mut depth = 0i64;
        let mut j = k + 2;
        let mut open = None;
        while j < self.sig.len() {
            if self.tok(j).kind == TokenKind::Punct {
                match self.text(j) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        open = Some(j);
                        break;
                    }
                    ";" if depth == 0 => return None,
                    _ => {}
                }
            }
            j += 1;
        }
        let open = open?;
        let close = self.match_brace(open);
        let sig_start = self.tok(k).start;
        let body_start = self.tok(open).start;
        let body_end = self.tok(close).end;

        let is_pub = self.visibility_before(k);
        let takes_token = (k..open).any(|i| {
            self.tok(i).kind == TokenKind::Ident && matches!(self.text(i), "Budget" | "CancelToken")
        });

        let mut modules = Vec::new();
        let mut impl_type = None;
        let mut impl_trait = None;
        for (scope, _) in stack {
            match scope {
                Scope::Module(m) => modules.push(m.clone()),
                Scope::Impl {
                    self_type,
                    trait_name,
                } => {
                    impl_type = self_type.clone();
                    impl_trait = trait_name.clone();
                }
                Scope::Other => {}
            }
        }

        let body = self.scan_body(open, close);
        Some((
            FnItem {
                name,
                modules,
                impl_type,
                impl_trait,
                is_pub,
                takes_token,
                is_test: self.map.in_test(sig_start),
                sig_start,
                body_start,
                body_end,
                line: self.tok(k).line,
                end_line: self.tok(close).line,
                calls: body.calls,
                refs: body.refs,
                loops: body.loops,
                polls: body.polls,
                locks: body.locks,
            },
            open,
        ))
    }

    /// Was the item at significant index `k` (its `fn` keyword)
    /// declared unrestricted-`pub`? Scans back over the modifier run
    /// (`pub const unsafe extern "C" async fn`).
    fn visibility_before(&self, k: usize) -> bool {
        let mut j = k;
        while j > 0 {
            j -= 1;
            let t = self.tok(j);
            match (t.kind, self.text(j)) {
                (TokenKind::Ident, "const" | "unsafe" | "async" | "extern") => continue,
                (TokenKind::Str, _) => continue, // extern "C"
                (TokenKind::Ident, "pub") => {
                    // `pub(crate)` / `pub(super)` are restricted.
                    return !self.is_punct(j + 1, "(");
                }
                (TokenKind::Punct, ")") => {
                    // Walk back over a `(crate)` restriction to the
                    // `pub` that owns it, then classify there.
                    let mut depth = 1i64;
                    while j > 0 && depth > 0 {
                        j -= 1;
                        if self.is_punct(j, ")") {
                            depth += 1;
                        } else if self.is_punct(j, "(") {
                            depth -= 1;
                        }
                    }
                    continue;
                }
                _ => return false,
            }
        }
        false
    }

    /// Scans one fn body `(open, close]` for calls, refs, loops, poll
    /// evidence, and lock sites, excluding nested fn bodies.
    fn scan_body(&self, open: usize, close: usize) -> BodyFacts {
        let mut facts = BodyFacts::default();
        // Nested fn body ranges to exclude (each nested fn answers for
        // itself).
        let mut nested: Vec<(usize, usize)> = Vec::new();
        {
            let mut j = open + 1;
            while j < close {
                if self.tok(j).kind == TokenKind::Ident
                    && self.text(j) == "fn"
                    && self.is_ident(j + 1)
                {
                    // Find that fn's body and skip it.
                    let mut depth = 0i64;
                    let mut i = j + 2;
                    while i < close {
                        if self.tok(i).kind == TokenKind::Punct {
                            match self.text(i) {
                                "(" | "[" => depth += 1,
                                ")" | "]" => depth -= 1,
                                "{" if depth == 0 => {
                                    let c = self.match_brace(i);
                                    nested.push((i, c));
                                    j = c;
                                    break;
                                }
                                ";" if depth == 0 => {
                                    j = i;
                                    break;
                                }
                                _ => {}
                            }
                        }
                        i += 1;
                    }
                    if i >= close {
                        j = close;
                    }
                }
                j += 1;
            }
        }
        let in_nested = |k: usize| -> bool { nested.iter().any(|&(s, e)| k > s && k <= e) };

        // Single-assignment local aliases for lock receivers:
        // `let pool = POOL.get_or_init(…)` makes `pool` report `POOL`.
        let mut aliases: Vec<(String, String)> = Vec::new();

        let mut k = open + 1;
        while k < close {
            if in_nested(k) {
                k += 1;
                continue;
            }
            let t = self.tok(k);
            if t.kind != TokenKind::Ident {
                k += 1;
                continue;
            }
            let w = self.text(k);
            if matches!(w, "for" | "while" | "loop") {
                facts.loops.push(LoopSite {
                    line: t.line,
                    offset: t.start,
                });
                k += 1;
                continue;
            }
            if is_poll_evidence(w) {
                facts.polls = true;
            }
            if KEYWORDS.contains(&w) {
                // `let NAME = IDENT…` alias capture for lock receivers.
                if w == "let" && self.is_ident(k + 1) && self.is_punct(k + 2, "=") {
                    let name = self.text(k + 1);
                    if self.is_ident(k + 3) && !KEYWORDS.contains(&self.text(k + 3)) {
                        aliases.push((name.to_string(), self.text(k + 3).to_string()));
                    }
                }
                k += 1;
                continue;
            }

            // Lock acquisition: `.lock()`, `.read()`, `.write()`,
            // `.get_or_init(`.
            let lock_kind = match w {
                "lock" => Some(LockKind::Mutex),
                "read" => Some(LockKind::RwRead),
                "write" => Some(LockKind::RwWrite),
                "get_or_init" => Some(LockKind::OnceInit),
                _ => None,
            };
            if let (Some(kind), true, true) = (
                lock_kind,
                k > 0 && self.is_punct(k - 1, "."),
                self.is_punct(k + 1, "("),
            ) {
                let receiver = self.receiver_chain(k - 1, &aliases);
                // `get_or_init` returns a plain reference — its `let`
                // binding is not a guard; the cell's internal lock is
                // released at return, so the extent is the call's own
                // statement regardless of any binding.
                let force_temp = kind == LockKind::OnceInit;
                let (guard, extent_end) = self.guard_extent(k, close, force_temp);
                facts.locks.push(LockSite {
                    kind,
                    receiver,
                    guard,
                    line: t.line,
                    offset: t.start,
                    extent_end,
                });
                // `get_or_init` is also an ordinary method call; fall
                // through so the call graph sees it too.
            }

            // Call vs reference.
            let after_call = self.is_punct(k + 1, "(")
                || (self.is_punct(k + 1, ":")
                    && self.is_punct(k + 2, ":")
                    && self.is_punct(k + 3, "<")
                    && self.turbofish_call(k + 3));
            let is_macro = self.is_punct(k + 1, "!");
            let continues_path =
                self.is_punct(k + 1, ":") && self.is_punct(k + 2, ":") && self.is_ident(k + 3);
            if after_call {
                let method = k > 0 && self.is_punct(k - 1, ".");
                let segments = if method {
                    vec![w.to_string()]
                } else {
                    self.path_segments_ending_at(k)
                };
                // `self.f()`, but not `x.self…` chains like `a.b.f()`
                // where only the last hop before `.f` is inspected.
                let self_receiver = method
                    && k >= 2
                    && self.is_ident_text(k - 2, "self")
                    && !(k >= 3 && self.is_punct(k - 3, "."));
                facts.calls.push(CallSite {
                    segments,
                    method,
                    self_receiver,
                    line: t.line,
                    offset: t.start,
                });
            } else if !is_macro && !continues_path {
                facts.refs.push((w.to_string(), t.line));
            }
            k += 1;
        }
        facts
    }

    /// Is the `<` at significant index `lt` a turbofish that closes
    /// into a call `(`?
    fn turbofish_call(&self, lt: usize) -> bool {
        let mut depth = 0i64;
        let mut j = lt;
        while j < self.sig.len() && j < lt + 64 {
            if self.tok(j).kind == TokenKind::Punct {
                match self.text(j) {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            return self.is_punct(j + 1, "(");
                        }
                    }
                    ";" | "{" => return false,
                    _ => {}
                }
            }
            j += 1;
        }
        false
    }

    /// The `a::b::name` path whose final segment sits at `k`.
    fn path_segments_ending_at(&self, k: usize) -> Vec<String> {
        let mut segments = vec![self.text(k).to_string()];
        let mut j = k;
        while j >= 3
            && self.is_punct(j - 1, ":")
            && self.is_punct(j - 2, ":")
            && self.is_ident(j - 3)
        {
            let seg = self.text(j - 3);
            segments.push(seg.to_string());
            j -= 3;
        }
        segments.reverse();
        segments
    }

    /// The receiver chain preceding the `.` at significant index `dot`:
    /// the longest run of `Ident(.Ident)*` / `Ident::Ident` ending
    /// there, with a one-step local-alias resolution. Unattributable
    /// receivers (`foo().lock()`) report `<expr>`.
    fn receiver_chain(&self, dot: usize, aliases: &[(String, String)]) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut j = dot;
        loop {
            if j >= 1 && self.is_ident(j - 1) {
                parts.push(self.text(j - 1).to_string());
                if j >= 3
                    && (self.is_punct(j - 2, ".")
                        || (self.is_punct(j - 2, ":") && self.is_punct(j - 3, ":")))
                {
                    j -= if self.is_punct(j - 2, ".") { 2 } else { 3 };
                    continue;
                }
            } else if parts.is_empty() {
                return "<expr>".to_string();
            }
            break;
        }
        parts.reverse();
        // Resolve a leading local alias one step.
        if let Some(first) = parts.first() {
            if let Some((_, root)) = aliases.iter().rev().find(|(n, _)| n == first) {
                parts[0] = root.clone();
            }
        }
        parts.join(".")
    }

    /// Infers the guard extent of the acquisition whose method token
    /// sits at `k` inside the body closing at `close`. Returns the
    /// `let` binding (if the statement is `let NAME = …`) and the byte
    /// offset one past the extent's end. `force_temp` treats the site
    /// as unbound even under a `let` (for acquisitions that do not
    /// return a guard).
    fn guard_extent(&self, k: usize, close: usize, force_temp: bool) -> (Option<String>, usize) {
        // Find the statement start: walk back to the previous `;`,
        // `{`, or `}` at depth 0 relative to k.
        let mut depth = 0i64;
        let mut j = k;
        let mut stmt_start = 0usize;
        while j > 0 {
            j -= 1;
            if self.tok(j).kind == TokenKind::Punct {
                match self.text(j) {
                    ")" | "]" | "}" if self.text(j) == "}" => {}
                    _ => {}
                }
                match self.text(j) {
                    ")" | "]" => depth += 1,
                    "(" | "[" => depth -= 1,
                    ";" | "{" | "}" if depth <= 0 => {
                        stmt_start = j + 1;
                        break;
                    }
                    _ => {}
                }
            }
        }
        let guard = if self.is_ident(stmt_start)
            && self.text(stmt_start) == "let"
            && self.is_ident(stmt_start + 1)
        {
            // `let mut NAME` or `let NAME`.
            let n = if self.text(stmt_start + 1) == "mut" && self.is_ident(stmt_start + 2) {
                self.text(stmt_start + 2)
            } else {
                self.text(stmt_start + 1)
            };
            Some(n.to_string())
        } else {
            None
        };
        let guard = if force_temp { None } else { guard };

        match &guard {
            Some(name) => {
                // Extent: to `drop(name)` after k, else to the end of
                // the enclosing block.
                let mut depth = 0i64;
                let mut j = k;
                while j < close {
                    j += 1;
                    if self.tok(j).kind == TokenKind::Punct {
                        match self.text(j) {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth < 0 {
                                    return (guard.clone(), self.tok(j).end);
                                }
                            }
                            _ => {}
                        }
                    } else if self.tok(j).kind == TokenKind::Ident
                        && self.text(j) == "drop"
                        && self.is_punct(j + 1, "(")
                        && self.is_ident(j + 2)
                        && self.text(j + 2) == name
                        && self.is_punct(j + 3, ")")
                    {
                        return (guard.clone(), self.tok(j + 3).end);
                    }
                }
                (guard, self.tok(close).end)
            }
            None => {
                // Temporary: to the first `;` at the same depth, or —
                // for `if let`/`match` scrutinees whose statement ends
                // in a block — to that block's `}` (pre-2024 temporary
                // lifetime: the guard lives for the whole statement,
                // and the statement ends with its last block, not at
                // the next statement's `;`). An `else` chains the
                // extent into the next block.
                let mut depth = 0i64;
                let mut j = k;
                while j < close {
                    j += 1;
                    if self.tok(j).kind != TokenKind::Punct {
                        continue;
                    }
                    match self.text(j) {
                        "(" | "[" => depth += 1,
                        ")" | "]" => {
                            depth -= 1;
                            if depth < 0 {
                                return (None, self.tok(j).end);
                            }
                        }
                        "{" if depth == 0 => {
                            // Statement-ending block: skip it, chain
                            // through `else`, then stop.
                            let mut end = self.match_brace(j);
                            while end + 2 < self.sig.len()
                                && self.is_ident(end + 1)
                                && self.text(end + 1) == "else"
                            {
                                // `else {` or `else if … {`.
                                let mut i = end + 2;
                                let mut d = 0i64;
                                let mut found = None;
                                while i < self.sig.len() {
                                    if self.tok(i).kind == TokenKind::Punct {
                                        match self.text(i) {
                                            "(" | "[" => d += 1,
                                            ")" | "]" => d -= 1,
                                            "{" if d == 0 => {
                                                found = Some(i);
                                                break;
                                            }
                                            ";" if d == 0 => break,
                                            _ => {}
                                        }
                                    }
                                    i += 1;
                                }
                                match found {
                                    Some(open) => end = self.match_brace(open),
                                    None => break,
                                }
                            }
                            let end = end.min(close);
                            return (None, self.tok(end).end);
                        }
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth < 0 {
                                return (None, self.tok(j).end);
                            }
                        }
                        ";" if depth == 0 => return (None, self.tok(j).end),
                        _ => {}
                    }
                }
                (None, self.tok(close).end)
            }
        }
    }
}

#[derive(Debug, Default)]
struct BodyFacts {
    calls: Vec<CallSite>,
    refs: Vec<(String, u32)>,
    loops: Vec<LoopSite>,
    polls: bool,
    locks: Vec<LockSite>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_context_and_visibility() {
        let src = "mod inner {\n  pub struct Foo;\n  impl Foo {\n    pub fn api(&self) {}\n    fn helper() {}\n    pub(crate) fn half() {}\n  }\n  impl std::fmt::Display for Foo {\n    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n  }\n}\npub fn top() {}\n";
        let p = parse_source(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["api", "helper", "half", "fmt", "top"]);
        let api = &p.fns[0];
        assert_eq!(api.modules, ["inner"]);
        assert_eq!(api.impl_type.as_deref(), Some("Foo"));
        assert!(api.is_pub);
        assert!(!p.fns[1].is_pub);
        assert!(!p.fns[2].is_pub, "pub(crate) is restricted");
        let fmt = &p.fns[3];
        assert_eq!(fmt.impl_type.as_deref(), Some("Foo"));
        assert_eq!(fmt.impl_trait.as_deref(), Some("Display"));
        assert!(p.fns[4].impl_type.is_none());
        assert!(p.fns[4].is_pub);
    }

    #[test]
    fn calls_refs_and_loops() {
        let src = "fn f(xs: &[u8]) {\n  helper(xs);\n  crate::m::other(1);\n  xs.iter().map(transform).count();\n  for x in xs { inner_work(*x); }\n  let g = compute;\n}\n";
        let p = parse_source(src);
        let f = &p.fns[0];
        let calls: Vec<(String, bool)> = f
            .calls
            .iter()
            .map(|c| (c.segments.join("::"), c.method))
            .collect();
        assert!(calls.contains(&("helper".to_string(), false)));
        assert!(calls.contains(&("crate::m::other".to_string(), false)));
        assert!(calls.contains(&("iter".to_string(), true)));
        assert!(calls.contains(&("inner_work".to_string(), false)));
        let refs: Vec<&str> = f.refs.iter().map(|(n, _)| n.as_str()).collect();
        assert!(refs.contains(&"transform"), "{refs:?}");
        assert!(refs.contains(&"compute"), "{refs:?}");
        assert_eq!(f.loops.len(), 1);
    }

    #[test]
    fn nested_fn_bodies_are_excluded() {
        let src = "fn outer() { fn inner() { loop { spin(); } } inner(); }";
        let p = parse_source(src);
        assert_eq!(p.fns.len(), 2);
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.loops.is_empty());
        assert_eq!(inner.loops.len(), 1);
        assert!(outer.calls.iter().any(|c| c.name() == "inner"));
        assert!(inner.calls.iter().any(|c| c.name() == "spin"));
    }

    #[test]
    fn token_signature_detected() {
        let src = "fn a(token: &CancelToken) {}\nfn b(budget: Budget) {}\nfn c(x: u8) { let token = 1; }\n";
        let p = parse_source(src);
        assert!(p.fns[0].takes_token);
        assert!(p.fns[1].takes_token);
        assert!(!p.fns[2].takes_token);
    }

    #[test]
    fn lock_sites_with_guards_and_aliases() {
        let src = "struct C { rows: Mutex<u8>, data: RwLock<u8> }\nstatic POOL: OnceLock<Mutex<u8>> = OnceLock::new();\nimpl C {\n  fn f(&self) {\n    self.rows.lock().clear();\n    let mut g = self.data.write();\n    g.push(1);\n    drop(g);\n    let pool = POOL.get_or_init(init);\n    let guard = pool.lock();\n  }\n}\n";
        let p = parse_source(src);
        // Declarations cover every lock-bearing field/static.
        let decls: Vec<&str> = p.lock_decls.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(decls.contains(&"rows"), "{decls:?}");
        assert!(decls.contains(&"data"), "{decls:?}");
        assert!(decls.contains(&"POOL"), "{decls:?}");
        let f = &p.fns[0];
        assert_eq!(f.locks.len(), 4, "{:?}", f.locks);
        let temp = &f.locks[0];
        assert_eq!(temp.kind, LockKind::Mutex);
        assert_eq!(temp.receiver, "self.rows");
        assert!(temp.guard.is_none());
        // Temporary guard dies at its statement's `;`.
        assert!(src[..temp.extent_end].ends_with("clear();"));
        let bound = &f.locks[1];
        assert_eq!(bound.kind, LockKind::RwWrite);
        assert_eq!(bound.guard.as_deref(), Some("g"));
        assert!(src[..bound.extent_end].ends_with("drop(g)"));
        let once = &f.locks[2];
        assert_eq!(once.kind, LockKind::OnceInit);
        assert_eq!(once.receiver, "POOL");
        let aliased = &f.locks[3];
        assert_eq!(aliased.receiver, "POOL", "local alias resolves");
        assert_eq!(aliased.guard.as_deref(), Some("guard"));
    }

    #[test]
    fn poll_evidence_is_found() {
        let src = "fn hot(xs: &[u8], token: &CancelToken) { for x in xs { token.charge(1); } }";
        let p = parse_source(src);
        assert!(p.fns[0].polls);
    }

    #[test]
    fn total_on_garbage() {
        for src in [
            "fn",
            "fn (",
            "impl {",
            "mod m {",
            "fn f( {",
            "}}}{{{",
            "impl<T: ?Sized> X for",
        ] {
            let _ = parse_source(src); // must not panic
        }
    }
}
