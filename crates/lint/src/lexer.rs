//! A small, total Rust lexer.
//!
//! The rules in this crate are lexical: they must never mistake a
//! `panic!` inside a string literal, a doc comment, or a raw string for
//! library code. This lexer therefore handles exactly the token shapes
//! that can hide text — line and (nested) block comments, string /
//! raw-string / byte-string / char literals, lifetimes, raw
//! identifiers — and treats everything else as identifiers, numbers, or
//! single-character punctuation.
//!
//! The lexer is *total*: every byte sequence tokenizes without error
//! (unterminated literals extend to end of input), and the produced
//! tokens partition the input exactly — `src[t.start..t.end]`
//! concatenated over all tokens reproduces the source byte-for-byte, a
//! property pinned by the `lexer_props` proptest suite.

/// The classification of one source span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines, carriage returns.
    Whitespace,
    /// `// …` (including `///` and `//!` doc comments), newline excluded.
    LineComment,
    /// `/* … */`, nested, possibly unterminated.
    BlockComment,
    /// `"…"`, `b"…"` — escape-aware, possibly unterminated.
    Str,
    /// `r"…"` / `r#"…"#` / `br##"…"##` with any hash depth.
    RawStr,
    /// `'x'`, `b'x'`, `'\u{1F600}'`.
    Char,
    /// `'static`, `'a` — a quote followed by an identifier with no
    /// closing quote.
    Lifetime,
    /// Identifiers and keywords, including raw identifiers (`r#match`)
    /// and any non-ASCII ident characters.
    Ident,
    /// Numeric literals (integer, float, hex, suffixed).
    Number,
    /// A single punctuation character.
    Punct,
}

/// One lexed token: a classified byte span plus its 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Span classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src` completely (see the [module docs](self) for the
/// guarantees).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always advance");
            self.tokens.push(Token {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking newlines.
    fn bump(&mut self) {
        if self.src[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    /// Advances one whole UTF-8 character (so a token never ends inside
    /// a multi-byte character).
    fn bump_char(&mut self) {
        self.bump();
        while self.peek(0).is_some_and(|b| b & 0xC0 == 0x80) {
            self.pos += 1;
        }
    }

    fn next_kind(&mut self) -> TokenKind {
        let b = self.src[self.pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                while self
                    .peek(0)
                    .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\r' | b'\n'))
                {
                    self.bump();
                }
                TokenKind::Whitespace
            }
            b'/' if self.peek(1) == Some(b'/') => {
                while self.peek(0).is_some_and(|c| c != b'\n') {
                    self.bump();
                }
                TokenKind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => {
                self.bump();
                self.bump();
                let mut depth = 1usize;
                while depth > 0 && self.pos < self.src.len() {
                    if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                        self.bump();
                        self.bump();
                        depth += 1;
                    } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                        self.bump();
                        self.bump();
                        depth -= 1;
                    } else {
                        self.bump();
                    }
                }
                TokenKind::BlockComment
            }
            b'r' if self.raw_string_ahead(1) => {
                self.bump(); // r
                self.raw_string_body()
            }
            b'b' if self.peek(1) == Some(b'r') && self.raw_string_ahead(2) => {
                self.bump(); // b
                self.bump(); // r
                self.raw_string_body()
            }
            b'b' if self.peek(1) == Some(b'"') => {
                self.bump();
                self.string_body()
            }
            b'b' if self.peek(1) == Some(b'\'') => {
                self.bump();
                self.char_body();
                TokenKind::Char
            }
            b'r' if self.peek(1) == Some(b'#') && self.peek(2).is_some_and(is_ident_start) => {
                // Raw identifier r#keyword.
                self.bump();
                self.bump();
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                TokenKind::Ident
            }
            b'"' => self.string_body(),
            b'\'' => {
                // Lifetime vs char literal: a quote followed by an
                // identifier run is a lifetime unless the run is a
                // single ident char closed by another quote ('a').
                if self.peek(1).is_some_and(is_ident_start) && self.peek(1) != Some(b'\\') {
                    let mut j = 2;
                    while self.peek(j).is_some_and(is_ident_continue) {
                        j += 1;
                    }
                    if self.peek(j) != Some(b'\'') {
                        for _ in 0..j {
                            self.bump();
                        }
                        return TokenKind::Lifetime;
                    }
                }
                self.char_body();
                TokenKind::Char
            }
            _ if is_ident_start(b) => {
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                TokenKind::Ident
            }
            _ if b.is_ascii_digit() => {
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                // A fractional part: `.` followed by a digit (so `0..n`
                // range syntax keeps its dots as punctuation).
                if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                }
                TokenKind::Number
            }
            _ => {
                self.bump();
                TokenKind::Punct
            }
        }
    }

    /// Is a raw-string opener (`#*"`) next, starting `ahead` bytes in?
    fn raw_string_ahead(&self, ahead: usize) -> bool {
        let mut j = ahead;
        while self.peek(j) == Some(b'#') {
            j += 1;
        }
        j > ahead && self.peek(j) == Some(b'"') || self.peek(ahead) == Some(b'"')
    }

    /// Consumes `#*" … "#*` (the leading `r`/`br` already consumed).
    fn raw_string_body(&mut self) -> TokenKind {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            self.bump();
            hashes += 1;
        }
        debug_assert_eq!(self.peek(0), Some(b'"'));
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some(b'"') => {
                    self.bump();
                    let mut closed = 0usize;
                    while closed < hashes && self.peek(0) == Some(b'#') {
                        self.bump();
                        closed += 1;
                    }
                    if closed == hashes {
                        break;
                    }
                }
                Some(_) => self.bump(),
            }
        }
        TokenKind::RawStr
    }

    /// Consumes `" … "` with escapes (the opening position at a `"`).
    fn string_body(&mut self) -> TokenKind {
        debug_assert_eq!(self.peek(0), Some(b'"'));
        self.bump();
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\\') => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
            }
        }
        TokenKind::Str
    }

    /// Consumes `' … '` with escapes (position at the opening `'`).
    fn char_body(&mut self) {
        debug_assert_eq!(self.peek(0), Some(b'\''));
        self.bump();
        match self.peek(0) {
            None => return,
            Some(b'\\') => {
                self.bump();
                if self.peek(0) == Some(b'u') {
                    // \u{…}
                    self.bump();
                    if self.peek(0) == Some(b'{') {
                        while self.peek(0).is_some_and(|c| c != b'}' && c != b'\'') {
                            self.bump();
                        }
                        if self.peek(0) == Some(b'}') {
                            self.bump();
                        }
                    }
                } else if self.peek(0).is_some() {
                    self.bump_char();
                }
            }
            Some(_) => self.bump_char(),
        }
        if self.peek(0) == Some(b'\'') {
            self.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| t.kind)
            .collect()
    }

    fn round_trip(src: &str) {
        let tokens = lex(src);
        let mut rebuilt = String::new();
        let mut cursor = 0usize;
        for t in &tokens {
            assert_eq!(t.start, cursor, "tokens must be contiguous in {src:?}");
            rebuilt.push_str(t.text(src));
            cursor = t.end;
        }
        assert_eq!(cursor, src.len(), "tokens must cover {src:?}");
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let src = r##"// panic! in a comment
let s = "panic!(\"no\")"; /* unwrap() /* nested */ */
let r = r#"expect("nope")"#;
"##;
        round_trip(src);
        let idents: Vec<&str> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(idents, ["let", "s", "let", "r"]);
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        round_trip(src);
        let k = kinds(src);
        assert!(k.contains(&TokenKind::Lifetime));
        assert!(k.contains(&TokenKind::Char));
        round_trip(r"let c = '\''; let u = '\u{1F600}'; let l: &'static str = s;");
        let src2 = r"let c = '\''; let l = &'static str;";
        let k2: Vec<_> = lex(src2)
            .into_iter()
            .filter(|t| matches!(t.kind, TokenKind::Char | TokenKind::Lifetime))
            .map(|t| t.kind)
            .collect();
        assert_eq!(k2, [TokenKind::Char, TokenKind::Lifetime]);
    }

    #[test]
    fn raw_identifiers_and_raw_strings() {
        let src = r###"let r#match = br##"raw "# inside"##; let y = r"plain";"###;
        round_trip(src);
        let raws: Vec<&str> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::RawStr)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(raws, [r###"br##"raw "# inside"##"###, r#"r"plain""#]);
        assert!(lex(src)
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "r#match"));
    }

    #[test]
    fn numbers_keep_range_dots() {
        let src = "for i in 0..n { let x = 1.5e3 + 0xFFu64; }";
        round_trip(src);
        let puncts = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Punct && t.text(src) == ".")
            .count();
        assert_eq!(puncts, 2, "0..n keeps both dots as punctuation");
    }

    #[test]
    fn unterminated_literals_extend_to_eof() {
        for src in ["\"open", "r#\"open", "/* open", "'", "b\"open"] {
            round_trip(src);
        }
    }

    #[test]
    fn line_numbers_are_tracked() {
        let src = "a\nb\n  c";
        let lines: Vec<u32> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.line)
            .collect();
        assert_eq!(lines, [1, 2, 3]);
    }
}
