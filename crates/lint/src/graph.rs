//! The workspace call graph.
//!
//! Built from every file's [parsed](crate::parser) fn items, the graph
//! carries the three interprocedural facts the
//! [graph rules](crate::graph_rules) consume: *reachability* from a
//! root set (with parent tracking, so `--explain` can print the
//! entry-point → … → site path), *backward closures* (does this fn
//! transitively poll cancellation? which locks does a call into it
//! acquire? does it reach a thread fan-out?), and the *lock-site
//! table* with normalized lock identities.
//!
//! Resolution is name-based and deliberately **over-approximate**:
//! a call edge goes to every plausible target, and bare identifiers
//! matching known fn names become `Ref` edges (fns passed as values,
//! closure captures). Over-approximation is the sound direction for
//! every rule here — it can only make *more* code reachable, never
//! hide a reachable panic or loop.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::parser::{FnItem, LockKind, ParsedFile};

/// How a call edge was established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// A call expression (`f(…)`, `a::b::f(…)`, `.f(…)`).
    Call,
    /// A bare identifier matching a known fn name — a function used as
    /// a value (`map(transform)`, closure captures).
    Ref,
}

/// One resolved edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Caller fn index.
    pub from: usize,
    /// Callee fn index.
    pub to: usize,
    /// Call or reference.
    pub kind: EdgeKind,
    /// 1-based line of the call/reference in the caller's file.
    pub line: u32,
    /// Byte offset of the callee name token in the caller's file.
    pub offset: usize,
    /// True when resolution was ambiguous (a `.method()` or
    /// workspace-fallback name matched several candidates and this is
    /// one of them). Approximate edges keep reachability sound for the
    /// panic/cancellation rules but are excluded where a false edge
    /// would *create* findings (lock-order's fan-out reach).
    pub approx: bool,
}

/// One fn node with its file context.
#[derive(Debug)]
pub struct GraphFn {
    /// Workspace-relative file path.
    pub file: String,
    /// Short crate name (`core`, `numeric`, …; `""` for the root
    /// package).
    pub krate: String,
    /// Is the file a binary target?
    pub is_binary: bool,
    /// The parsed item.
    pub item: FnItem,
    /// Display name `crate::module::Type::fn` for reports and DOT.
    pub qualname: String,
}

/// One normalized lock acquisition site.
#[derive(Debug, Clone)]
pub struct GraphLockSite {
    /// Index of the acquiring fn.
    pub fn_id: usize,
    /// Index into [`Graph::lock_ids`].
    pub lock: usize,
    /// The acquisition method kind.
    pub kind: LockKind,
    /// 1-based line.
    pub line: u32,
    /// Byte offset of the acquisition.
    pub offset: usize,
    /// Byte offset one past the guard's lexical extent.
    pub extent_end: usize,
    /// The `let` binding holding the guard, if any.
    pub guard: Option<String>,
}

/// One lock-bearing declaration (`Mutex`/`RwLock`/`OnceLock` field or
/// static) — the lock-order rule's coverage universe.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Workspace-relative file path.
    pub file: String,
    /// Declared field/static name.
    pub name: String,
    /// The lock type ident (`Mutex`, `RwLock`, `OnceLock`).
    pub lock_type: String,
    /// 1-based line of the declaration.
    pub line: u32,
}

/// One input file for [`Graph::build`].
pub struct GraphInput {
    /// Workspace-relative path.
    pub rel: String,
    /// Short crate name.
    pub krate: String,
    /// Binary target?
    pub is_binary: bool,
    /// The parsed items.
    pub parsed: ParsedFile,
}

/// The workspace call graph.
pub struct Graph {
    /// Every fn in the workspace, in file order.
    pub fns: Vec<GraphFn>,
    /// Every resolved edge.
    pub edges: Vec<Edge>,
    /// Outgoing edge indices per fn.
    pub out: Vec<Vec<usize>>,
    /// Incoming edge indices per fn.
    pub inc: Vec<Vec<usize>>,
    /// Normalized lock identities (`Type.field`, `STATIC`), sorted
    /// insertion order.
    pub lock_ids: Vec<String>,
    /// Every lock acquisition site.
    pub lock_sites: Vec<GraphLockSite>,
    /// Every lock-bearing declaration.
    pub lock_decls: Vec<LockDecl>,
}

/// Parent pointers from a [`Graph::reach`] traversal: for each fn,
/// `None` = unreachable, `Some(None)` = a root, `Some(Some(e))` =
/// first reached via edge `e`.
pub type Parents = Vec<Option<Option<usize>>>;

impl Graph {
    /// Builds the graph from parsed files. Call resolution order for a
    /// bare name: same file+module → same impl type → same crate →
    /// whole workspace (first non-empty tier wins); qualified paths
    /// filter by the qualifying segment (impl type, module, or crate).
    pub fn build(inputs: Vec<GraphInput>) -> Graph {
        let mut fns = Vec::new();
        let mut rwlock_names: BTreeSet<String> = BTreeSet::new();
        let mut lock_decls = Vec::new();
        for input in inputs {
            for (name, lock_type, line) in &input.parsed.lock_decls {
                if lock_type == "RwLock" {
                    rwlock_names.insert(name.clone());
                }
                lock_decls.push(LockDecl {
                    file: input.rel.clone(),
                    name: name.clone(),
                    lock_type: lock_type.clone(),
                    line: *line,
                });
            }
            for item in input.parsed.fns {
                let qualname = qualname(&input.krate, &input.rel, &item);
                fns.push(GraphFn {
                    file: input.rel.clone(),
                    krate: input.krate.clone(),
                    is_binary: input.is_binary,
                    item,
                    qualname,
                });
            }
        }

        // Name index over all fns.
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.item.name.as_str()).or_default().push(i);
        }

        let mut edges: Vec<Edge> = Vec::new();
        for (i, f) in fns.iter().enumerate() {
            for call in &f.item.calls {
                let (targets, ambiguous) = resolve_call(&fns, &by_name, i, call);
                for t in targets {
                    edges.push(Edge {
                        from: i,
                        to: t,
                        kind: EdgeKind::Call,
                        line: call.line,
                        offset: call.offset,
                        approx: ambiguous,
                    });
                }
            }
            for (name, line) in &f.item.refs {
                if let Some(cands) = by_name.get(name.as_str()) {
                    for &t in cands {
                        edges.push(Edge {
                            from: i,
                            to: t,
                            kind: EdgeKind::Ref,
                            line: *line,
                            // Refs carry no per-site offset the rules
                            // need; reuse the line for determinism.
                            offset: 0,
                            approx: true,
                        });
                    }
                }
            }
        }
        // Dedup parallel edges. Call edges keep one entry *per site*
        // (the lock-order rule asks whether a call lies inside a guard
        // extent, so distinct offsets must survive); ref edges collapse
        // to one per (from, to) pair.
        let mut seen: BTreeSet<(usize, usize, bool, usize)> = BTreeSet::new();
        edges.retain(|e| {
            let site = if e.kind == EdgeKind::Call {
                e.offset
            } else {
                0
            };
            seen.insert((e.from, e.to, e.kind == EdgeKind::Ref, site))
        });

        let mut out = vec![Vec::new(); fns.len()];
        let mut inc = vec![Vec::new(); fns.len()];
        for (k, e) in edges.iter().enumerate() {
            out[e.from].push(k);
            inc[e.to].push(k);
        }

        // Lock sites with normalized identities. `.read()`/`.write()`
        // are only lock acquisitions when the receiver's last component
        // names a declared RwLock — otherwise they are io/accessor
        // methods and are skipped.
        let mut lock_ids: Vec<String> = Vec::new();
        let mut id_index: HashMap<String, usize> = HashMap::new();
        let mut lock_sites = Vec::new();
        for (i, f) in fns.iter().enumerate() {
            for site in &f.item.locks {
                if matches!(site.kind, LockKind::RwRead | LockKind::RwWrite) {
                    let last = site.receiver.rsplit('.').next().unwrap_or("");
                    if !rwlock_names.contains(last) {
                        continue;
                    }
                }
                let norm = normalize_lock(&site.receiver, f, site.line);
                let lock = *id_index.entry(norm.clone()).or_insert_with(|| {
                    lock_ids.push(norm);
                    lock_ids.len() - 1
                });
                lock_sites.push(GraphLockSite {
                    fn_id: i,
                    lock,
                    kind: site.kind,
                    line: site.line,
                    offset: site.offset,
                    extent_end: site.extent_end,
                    guard: site.guard.clone(),
                });
            }
        }

        Graph {
            fns,
            edges,
            out,
            inc,
            lock_ids,
            lock_sites,
            lock_decls,
        }
    }

    /// Forward reachability from `roots` over both edge kinds, with
    /// parent pointers for path reconstruction.
    pub fn reach(&self, roots: &[usize]) -> Parents {
        let mut parents: Parents = vec![None; self.fns.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if parents[r].is_none() {
                parents[r] = Some(None);
                queue.push(r);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &ek in &self.out[u] {
                let v = self.edges[ek].to;
                if parents[v].is_none() {
                    parents[v] = Some(Some(ek));
                    queue.push(v);
                }
            }
        }
        parents
    }

    /// The root → … → `target` fn-index path from a [`Graph::reach`]
    /// traversal (empty when `target` is unreachable).
    pub fn path_to(&self, parents: &Parents, target: usize) -> Vec<usize> {
        let mut path = Vec::new();
        let mut cur = target;
        loop {
            match parents.get(cur).and_then(|p| *p) {
                None => return Vec::new(),
                Some(None) => {
                    path.push(cur);
                    break;
                }
                Some(Some(ek)) => {
                    path.push(cur);
                    cur = self.edges[ek].from;
                }
            }
        }
        path.reverse();
        path
    }

    /// Backward closure of a boolean property: `out[f]` is true when
    /// `init[f]` is, or when any fn `f` has an edge *to* satisfies it
    /// (i.e. "f transitively calls a fn with the property").
    pub fn closure_or(&self, init: &[bool]) -> Vec<bool> {
        self.closure_or_impl(init, false)
    }

    /// [`closure_or`](Graph::closure_or) restricted to *precise* `Call`
    /// edges. `Ref` edges record fns whose values escape (callbacks, fn
    /// pointers) and approximate edges are multi-candidate guesses; for
    /// questions about what definitely executes on this thread's stack
    /// — "does this call fan out into threads?" — following either
    /// would poison nearly the whole graph.
    pub fn closure_or_calls(&self, init: &[bool]) -> Vec<bool> {
        self.closure_or_impl(init, true)
    }

    fn closure_or_impl(&self, init: &[bool], precise_calls_only: bool) -> Vec<bool> {
        let mut val = init.to_vec();
        let mut queue: Vec<usize> = (0..val.len()).filter(|&i| val[i]).collect();
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            for &ek in &self.inc[v] {
                let e = &self.edges[ek];
                if precise_calls_only && (e.kind != EdgeKind::Call || e.approx) {
                    continue;
                }
                let u = e.from;
                if !val[u] {
                    val[u] = true;
                    queue.push(u);
                }
            }
        }
        val
    }

    /// Backward closure of lock sets: which locks can a call into each
    /// fn transitively acquire? Follows only precise `Call` edges — an
    /// order edge inferred through a guessed callee would put fabricated
    /// cycles in the global-order report, the one artifact that must
    /// stay trustworthy.
    pub fn lock_closure(&self) -> Vec<BTreeSet<usize>> {
        let mut val: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); self.fns.len()];
        for site in &self.lock_sites {
            val[site.fn_id].insert(site.lock);
        }
        // Worklist fixpoint over reverse edges.
        let mut queue: Vec<usize> = (0..val.len()).filter(|&i| !val[i].is_empty()).collect();
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            let add = val[v].clone();
            for &ek in &self.inc[v] {
                let e = &self.edges[ek];
                if e.kind != EdgeKind::Call || e.approx {
                    continue;
                }
                let u = e.from;
                let before = val[u].len();
                val[u].extend(add.iter().copied());
                if val[u].len() != before {
                    queue.push(u);
                }
            }
        }
        val
    }

    /// Fns that *are* thread fan-out primitives: their own body calls
    /// `thread::scope` / `spawn` / `Builder::spawn`.
    pub fn fanout_primitives(&self) -> Vec<bool> {
        self.fns
            .iter()
            .map(|f| {
                f.item.calls.iter().any(|c| {
                    let n = c.name();
                    (n == "scope" && c.segments.iter().any(|s| s == "thread"))
                        || n == "spawn"
                        || n == "spawn_scoped"
                })
            })
            .collect()
    }

    /// The fn indices whose spans contain `line` in `file`, innermost
    /// first (nested fns before their parents).
    pub fn enclosing_fns(&self, file: &str, line: u32) -> Vec<usize> {
        let mut hits: Vec<usize> = self
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && f.item.line <= line && line <= f.item.end_line)
            .map(|(i, _)| i)
            .collect();
        // Innermost = latest start line (ties: shortest span).
        hits.sort_by_key(|&i| {
            (
                std::cmp::Reverse(self.fns[i].item.line),
                self.fns[i].item.end_line - self.fns[i].item.line,
            )
        });
        hits
    }

    /// `GRAPH_report.json`: nodes, edges, lock table, and the sections
    /// the graph rules attach (hand-rolled JSON — the workspace has no
    /// serde).
    pub fn to_json(&self, extra_sections: &[(&str, String)]) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema_version\": 1,\n");
        out.push_str(&format!(
            "  \"fn_count\": {},\n  \"edge_count\": {},\n",
            self.fns.len(),
            self.edges.len()
        ));
        out.push_str("  \"fns\": [");
        for (i, f) in self.fns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"id\": {i}, \"name\": {}, \"file\": {}, \"line\": {}, \"pub\": {}, \"takes_token\": {}, \"test\": {}, \"loops\": {}, \"polls\": {}}}",
                crate::report::json_str(&f.qualname),
                crate::report::json_str(&f.file),
                f.item.line,
                f.item.is_pub,
                f.item.takes_token,
                f.item.is_test,
                f.item.loops.len(),
                f.item.polls,
            ));
        }
        out.push_str(if self.fns.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"edges\": [");
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"from\": {}, \"to\": {}, \"kind\": \"{}\", \"line\": {}, \"approx\": {}}}",
                e.from,
                e.to,
                match e.kind {
                    EdgeKind::Call => "call",
                    EdgeKind::Ref => "ref",
                },
                e.line,
                e.approx
            ));
        }
        out.push_str(if self.edges.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"locks\": {\n    \"declarations\": [");
        for (i, d) in self.lock_decls.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n      {{\"name\": {}, \"type\": {}, \"file\": {}, \"line\": {}}}",
                crate::report::json_str(&d.name),
                crate::report::json_str(&d.lock_type),
                crate::report::json_str(&d.file),
                d.line
            ));
        }
        out.push_str(if self.lock_decls.is_empty() {
            "],\n"
        } else {
            "\n    ],\n"
        });
        out.push_str("    \"sites\": [");
        for (i, s) in self.lock_sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n      {{\"lock\": {}, \"method\": \"{}\", \"fn\": {}, \"file\": {}, \"line\": {}, \"bound\": {}}}",
                crate::report::json_str(&self.lock_ids[s.lock]),
                s.kind.method(),
                crate::report::json_str(&self.fns[s.fn_id].qualname),
                crate::report::json_str(&self.fns[s.fn_id].file),
                s.line,
                s.guard.is_some()
            ));
        }
        out.push_str(if self.lock_sites.is_empty() {
            "]\n  }"
        } else {
            "\n    ]\n  }"
        });
        for (key, body) in extra_sections {
            out.push_str(&format!(",\n  \"{key}\": {body}"));
        }
        out.push_str("\n}\n");
        out
    }

    /// GraphViz DOT rendering: one node per fn (clustered by crate),
    /// call edges solid, ref edges dashed. Test fns are omitted to keep
    /// the artifact readable.
    pub fn to_dot(&self) -> String {
        let mut out =
            String::from("digraph cqshap {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n");
        let mut by_crate: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in self.fns.iter().enumerate() {
            if !f.item.is_test {
                by_crate.entry(f.krate.as_str()).or_default().push(i);
            }
        }
        for (krate, ids) in &by_crate {
            let label = if krate.is_empty() { "cqshap" } else { krate };
            out.push_str(&format!(
                "  subgraph \"cluster_{label}\" {{\n    label=\"{label}\";\n"
            ));
            for &i in ids {
                let f = &self.fns[i];
                let style = if f.item.is_pub {
                    ", style=bold"
                } else if f.item.takes_token {
                    ", color=blue"
                } else {
                    ""
                };
                out.push_str(&format!(
                    "    n{i} [label=\"{}\"{style}];\n",
                    dot_escape(&f.qualname)
                ));
            }
            out.push_str("  }\n");
        }
        for e in &self.edges {
            if self.fns[e.from].item.is_test || self.fns[e.to].item.is_test {
                continue;
            }
            let style = match e.kind {
                EdgeKind::Call => "",
                EdgeKind::Ref => " [style=dashed]",
            };
            out.push_str(&format!("  n{} -> n{}{style};\n", e.from, e.to));
        }
        out.push_str("}\n");
        out
    }
}

fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// `crate::module::Type::fn` display name.
fn qualname(krate: &str, rel: &str, item: &FnItem) -> String {
    let mut parts: Vec<String> = Vec::new();
    parts.push(if krate.is_empty() {
        "cqshap".to_string()
    } else {
        krate.to_string()
    });
    parts.extend(file_modules(rel));
    parts.extend(item.modules.iter().cloned());
    if let Some(t) = &item.impl_type {
        parts.push(t.clone());
    }
    parts.push(item.name.clone());
    parts.join("::")
}

/// Module path segments a file contributes (`crates/core/src/a/b.rs`
/// → `[a, b]`; `lib.rs`/`main.rs`/`mod.rs` contribute their directory
/// only).
fn file_modules(rel: &str) -> Vec<String> {
    let Some(idx) = rel.find("src/") else {
        return Vec::new();
    };
    let tail = &rel[idx + 4..];
    let mut parts: Vec<String> = tail.split('/').map(|s| s.to_string()).collect();
    let Some(last) = parts.pop() else {
        return Vec::new();
    };
    let stem = last.trim_end_matches(".rs");
    if !matches!(stem, "lib" | "main" | "mod") {
        parts.push(stem.to_string());
    }
    // `src/bin/x.rs` binaries are their own roots.
    if parts.first().is_some_and(|p| p == "bin") {
        parts.remove(0);
    }
    parts
}

/// Resolves one call site to candidate fn indices.
fn resolve_call(
    fns: &[GraphFn],
    by_name: &HashMap<&str, Vec<usize>>,
    caller: usize,
    call: &crate::parser::CallSite,
) -> (Vec<usize>, bool) {
    let segments = &call.segments;
    let Some(name) = segments.last() else {
        return (Vec::new(), false);
    };
    let Some(all) = by_name.get(name.as_str()) else {
        return (Vec::new(), false);
    };
    let cf = &fns[caller];
    // Library code cannot call `#[cfg(test)]` fns; only keep test
    // candidates when the caller is itself test code.
    let cands: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&t| cf.item.is_test || !fns[t].item.is_test)
        .collect();
    // A multi-candidate resolution is a guess: each edge is possible,
    // none is certain.
    let tag = |v: Vec<usize>| {
        let ambiguous = v.len() > 1;
        (v, ambiguous)
    };
    if call.method {
        // `self.f(…)`: the receiver's impl is the caller's own — a
        // same-impl match is as certain as a bare-name call.
        if call.self_receiver && cf.item.impl_type.is_some() {
            let same_impl: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&t| fns[t].item.impl_type == cf.item.impl_type && fns[t].krate == cf.krate)
                .collect();
            if !same_impl.is_empty() {
                return tag(same_impl);
            }
        }
        // Any other `.f(…)`: the receiver's type is unknown and the
        // callee may well live in std (iterator adapters, collection
        // methods). Every candidate edge is a guess — keep them for
        // reachability, but always approximate, even a lone candidate
        // (`.enumerate()` must not pin the one workspace fn named
        // `enumerate`).
        let impls: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&t| fns[t].item.impl_type.is_some())
            .collect();
        let guessed = if impls.is_empty() { cands } else { impls };
        return (guessed, true);
    }
    if segments.len() == 1 {
        // Bare name: same file+module → same impl type → same crate →
        // workspace.
        let same_module: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&t| fns[t].file == cf.file && fns[t].item.modules == cf.item.modules)
            .collect();
        if !same_module.is_empty() {
            return tag(same_module);
        }
        let same_impl: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&t| cf.item.impl_type.is_some() && fns[t].item.impl_type == cf.item.impl_type)
            .collect();
        if !same_impl.is_empty() {
            return tag(same_impl);
        }
        let same_crate: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&t| fns[t].krate == cf.krate)
            .collect();
        if !same_crate.is_empty() {
            return tag(same_crate);
        }
        return tag(cands);
    }
    // Qualified: filter by the segment before the name.
    let qual = &segments[segments.len() - 2];
    let filtered: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&t| {
            let tf = &fns[t];
            match qual.as_str() {
                "Self" => tf.item.impl_type == cf.item.impl_type && tf.krate == cf.krate,
                "self" | "crate" | "super" => tf.krate == cf.krate,
                q => {
                    tf.item.impl_type.as_deref() == Some(q)
                        || tf.item.modules.last().is_some_and(|m| m == q)
                        || file_modules(&tf.file).last().is_some_and(|m| m == q)
                        || crate_matches(q, &tf.krate)
                }
            }
        })
        .collect();
    tag(filtered)
}

/// Does path qualifier `q` name crate `krate` (`cqshap_core` /
/// `cqshap-core` / `core` all match `core`)?
fn crate_matches(q: &str, krate: &str) -> bool {
    if krate.is_empty() {
        return q == "cqshap";
    }
    q == krate
        || q.strip_prefix("cqshap_").is_some_and(|r| r == krate)
        || q.strip_prefix("cqshap-").is_some_and(|r| r == krate)
}

/// Normalizes a lock receiver to a stable identity: `self.field` →
/// `Type.field` (via the acquiring fn's impl type), statics keep their
/// name, and unattributable `<expr>` receivers get a per-site id.
fn normalize_lock(receiver: &str, f: &GraphFn, line: u32) -> String {
    if receiver == "<expr>" {
        return format!("{}:{}:<expr>", f.file, line);
    }
    if let Some(rest) = receiver.strip_prefix("self.") {
        let ty = f.item.impl_type.as_deref().unwrap_or("Self");
        return format!("{ty}.{rest}");
    }
    receiver.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::scanner::FileMap;

    fn input(rel: &str, krate: &str, src: &str) -> GraphInput {
        let map = FileMap::build(src, lex(src));
        GraphInput {
            rel: rel.to_string(),
            krate: krate.to_string(),
            is_binary: false,
            parsed: parse(src, &map),
        }
    }

    fn build(files: &[(&str, &str, &str)]) -> Graph {
        Graph::build(
            files
                .iter()
                .map(|(rel, krate, src)| input(rel, krate, src))
                .collect(),
        )
    }

    fn id(g: &Graph, name: &str) -> usize {
        g.fns
            .iter()
            .position(|f| f.item.name == name)
            .unwrap_or_else(|| panic!("no fn `{name}`"))
    }

    #[test]
    fn bare_calls_prefer_same_module_then_crate() {
        let g = build(&[
            (
                "crates/a/src/x.rs",
                "a",
                "pub fn entry() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/b/src/y.rs", "b", "fn helper() {}\n"),
        ]);
        let entry = id(&g, "entry");
        let local = g
            .fns
            .iter()
            .position(|f| f.item.name == "helper" && f.krate == "a")
            .unwrap();
        let callees: Vec<usize> = g.out[entry].iter().map(|&e| g.edges[e].to).collect();
        assert_eq!(callees, vec![local], "same-file helper wins");
    }

    #[test]
    fn qualified_calls_filter_by_module_and_crate() {
        let g = build(&[
            (
                "crates/a/src/x.rs",
                "a",
                "pub fn entry() { m::go(); cqshap_b::go(); }\nmod m { pub fn go() {} }\n",
            ),
            ("crates/b/src/lib.rs", "b", "pub fn go() {}\n"),
        ]);
        let entry = id(&g, "entry");
        let callees: std::collections::BTreeSet<String> = g.out[entry]
            .iter()
            .map(|&e| g.fns[g.edges[e].to].qualname.clone())
            .collect();
        assert!(callees.contains("a::x::m::go"), "{callees:?}");
        assert!(callees.contains("b::go"), "{callees:?}");
    }

    #[test]
    fn reach_and_path() {
        let g = build(&[(
            "crates/a/src/x.rs",
            "a",
            "pub fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}\n",
        )]);
        let root = id(&g, "root");
        let leaf = id(&g, "leaf");
        let island = id(&g, "island");
        let parents = g.reach(&[root]);
        assert!(parents[leaf].is_some());
        assert!(parents[island].is_none());
        let path: Vec<&str> = g
            .path_to(&parents, leaf)
            .into_iter()
            .map(|i| g.fns[i].item.name.as_str())
            .collect();
        assert_eq!(path, ["root", "mid", "leaf"]);
        assert!(g.path_to(&parents, island).is_empty());
    }

    #[test]
    fn ref_edges_make_value_passed_fns_reachable() {
        let g = build(&[(
            "crates/a/src/x.rs",
            "a",
            "pub fn root(xs: &[u8]) { xs.iter().map(transform).count(); }\nfn transform() {}\n",
        )]);
        let parents = g.reach(&[id(&g, "root")]);
        assert!(parents[id(&g, "transform")].is_some());
    }

    #[test]
    fn closure_or_flows_backward() {
        let g = build(&[(
            "crates/a/src/x.rs",
            "a",
            "pub fn top() { mid(); }\nfn mid() { base(); }\nfn base() {}\nfn other() {}\n",
        )]);
        let mut init = vec![false; g.fns.len()];
        init[id(&g, "base")] = true;
        let c = g.closure_or(&init);
        assert!(c[id(&g, "top")]);
        assert!(c[id(&g, "mid")]);
        assert!(!c[id(&g, "other")]);
    }

    #[test]
    fn lock_normalization_and_closure() {
        let g = build(&[(
            "crates/a/src/x.rs",
            "a",
            "struct C { cache: Mutex<u8> }\nimpl C {\n  fn inner(&self) { self.cache.lock(); }\n  pub fn outer(&self) { self.inner(); }\n}\n",
        )]);
        assert_eq!(g.lock_ids, vec!["C.cache".to_string()]);
        let lc = g.lock_closure();
        assert!(lc[id(&g, "outer")].contains(&0), "closure flows to caller");
        assert_eq!(g.lock_decls.len(), 1);
    }

    #[test]
    fn rwlock_read_write_only_on_declared_names() {
        let g = build(&[(
            "crates/a/src/x.rs",
            "a",
            "struct C { table: RwLock<u8> }\nimpl C {\n  fn a(&self, f: &mut std::fs::File) { self.table.read(); f.read(); }\n}\n",
        )]);
        assert_eq!(g.lock_sites.len(), 1, "{:?}", g.lock_sites);
        assert_eq!(g.lock_ids[g.lock_sites[0].lock], "C.table");
    }

    #[test]
    fn fanout_primitives_found() {
        let g = build(&[(
            "crates/a/src/x.rs",
            "a",
            "fn fan() { std::thread::scope(|s| {}); }\nfn plain() {}\n",
        )]);
        let p = g.fanout_primitives();
        assert!(p[id(&g, "fan")]);
        assert!(!p[id(&g, "plain")]);
    }

    #[test]
    fn json_and_dot_render() {
        let g = build(&[(
            "crates/a/src/x.rs",
            "a",
            "pub fn root() { leaf(); }\nfn leaf() {}\n",
        )]);
        let j = g.to_json(&[("extra", "{\"k\": 1}".to_string())]);
        assert!(j.contains("\"fn_count\": 2"));
        assert!(j.contains("\"extra\""));
        let d = g.to_dot();
        assert!(d.starts_with("digraph"));
        assert!(d.contains("a::x::root"));
    }
}
