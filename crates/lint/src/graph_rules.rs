//! The interprocedural rules over the workspace [call graph](crate::graph).
//!
//! Three rules run here — `transitive-no-panic`,
//! `cancellation-reachability`, and `lock-order` — and each returns,
//! besides its findings, the set of *proven sites*: locations the graph
//! shows cannot violate the contract (unreachable from any relevant
//! entry point, or covered by a transitive callee). The
//! [workspace](crate::workspace) pipeline demotes raw lexical findings
//! at proven sites and converts pragmas that only guarded proven sites
//! into `unused-suppression` findings — the fourth rule,
//! `suppression-debt`, which turns the hand-written pragma count into
//! a ratcheted-down number instead of an append-only ledger.
//!
//! All three rules over-approximate reachability (see the graph
//! module), so a *proven* site really is safe under every resolution
//! the name-matcher could not rule out.

use std::collections::BTreeMap;

use crate::graph::{EdgeKind, Graph};
use crate::report::{
    json_str, Explanation, Finding, RULE_CANCELLATION_REACHABILITY, RULE_LOCK_ORDER, RULE_NO_PANIC,
    RULE_NO_PANIC_INDEX,
};

/// A site the graph proves safe: raw findings here are demoted and
/// pragmas that only guard it are redundant debt.
#[derive(Debug, Clone)]
pub struct ProvenSite {
    /// The rule names this proof discharges.
    pub rules: Vec<&'static str>,
    /// The site's file.
    pub file: String,
    /// The site's line.
    pub line: u32,
    /// Why the graph considers it safe.
    pub why: String,
}

/// One graph rule's outcome.
#[derive(Debug, Default)]
pub struct GraphRuleOutcome {
    /// New findings (empty on a healthy workspace).
    pub findings: Vec<Finding>,
    /// Call-graph paths for findings (live or later suppressed).
    pub explanations: Vec<Explanation>,
    /// Sites proven safe.
    pub proven: Vec<ProvenSite>,
    /// A `GRAPH_report.json` section: `(key, json value)`.
    pub section: (&'static str, String),
}

/// `transitive-no-panic`: a public engine API is panic-free iff every
/// fn reachable from it is. Roots are the non-test public fns and
/// trait-impl methods of the `no_panic_crates`; raw `no-panic` /
/// `no-panic-index` findings in fns unreachable from every root are
/// proven safe (the code cannot run under any public entry point), and
/// reachable sites get an explanation path. The per-root certificate
/// table lands in `GRAPH_report.json`.
pub fn transitive_no_panic(
    graph: &Graph,
    raw: &[Finding],
    no_panic_crates: &[&str],
) -> GraphRuleOutcome {
    let mut out = GraphRuleOutcome::default();
    let roots: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            no_panic_crates.contains(&f.krate.as_str())
                && !f.item.is_test
                && !f.is_binary
                && (f.item.is_pub || f.item.impl_trait.is_some())
        })
        .map(|(i, _)| i)
        .collect();
    let parents = graph.reach(&roots);

    // Which fns contain a raw panic site that stays live?
    let mut has_site = vec![false; graph.fns.len()];
    for f in raw {
        if f.rule != RULE_NO_PANIC && f.rule != RULE_NO_PANIC_INDEX {
            continue;
        }
        let enclosing = graph.enclosing_fns(&f.file, f.line);
        let Some(&inner) = enclosing.first() else {
            continue; // module-scope site: never demoted
        };
        let gf = &graph.fns[inner];
        let reachable = parents[inner].is_some();
        let root_eligible = gf.item.is_pub || gf.item.impl_trait.is_some();
        if !reachable && !root_eligible && !gf.item.is_test {
            out.proven.push(ProvenSite {
                rules: vec![RULE_NO_PANIC, RULE_NO_PANIC_INDEX],
                file: f.file.clone(),
                line: f.line,
                why: format!(
                    "`{}` is unreachable from every public fn or trait impl of the panic-free crates",
                    gf.qualname
                ),
            });
        } else {
            has_site[inner] = true;
            let mut path: Vec<String> = graph
                .path_to(&parents, inner)
                .into_iter()
                .map(|i| graph.fns[i].qualname.clone())
                .collect();
            if path.is_empty() {
                path.push(gf.qualname.clone());
            }
            out.explanations.push(Explanation {
                rule: f.rule.clone(),
                file: f.file.clone(),
                line: f.line,
                path,
            });
        }
    }

    // Certificates: one backward pass answers "can this fn reach a
    // live panic site?" for every root at once.
    let reaches_site = graph.closure_or(&has_site);
    let mut certs = String::from("[");
    for (n, &r) in roots.iter().enumerate() {
        if n > 0 {
            certs.push(',');
        }
        certs.push_str(&format!(
            "\n    {{\"api\": {}, \"status\": \"{}\"}}",
            json_str(&graph.fns[r].qualname),
            if reaches_site[r] {
                "panic-free-modulo-pragmas"
            } else {
                "panic-free"
            }
        ));
    }
    certs.push_str(if roots.is_empty() { "]" } else { "\n  ]" });
    out.section = (
        "transitive_no_panic",
        format!(
            "{{\"roots\": {}, \"reachable_fns\": {}, \"proven_unreachable_sites\": {}, \"certificates\": {certs}}}",
            roots.len(),
            parents.iter().filter(|p| p.is_some()).count(),
            out.proven.len()
        ),
    );
    out
}

/// `cancellation-reachability`: every loop in a fn transitively
/// reachable from a `Budget`/`CancelToken`-accepting entry point must
/// poll — lexically, or by (transitively) calling a fn that does. This
/// replaces the old per-file `cancellation-poll` scope list: coverage
/// is computed, not asserted. Fns whose loops are covered, or that no
/// entry point reaches, become proven sites; the rest are findings with
/// the entry-point path. Findings and proofs anchor at the *fn* line
/// (one per fn, loops listed in the message) — the same line the
/// lexical `cancellation-poll` rule used, so existing pragmas above the
/// `fn` keep suppressing and redundant ones are detected as debt.
pub fn cancellation_reachability(graph: &Graph) -> GraphRuleOutcome {
    let mut out = GraphRuleOutcome::default();
    let roots: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.item.takes_token && !f.item.is_test)
        .map(|(i, _)| i)
        .collect();
    let parents = graph.reach(&roots);
    let polls: Vec<bool> = graph.fns.iter().map(|f| f.item.polls).collect();
    let covered = graph.closure_or(&polls);

    let mut covered_loops = 0usize;
    let mut uncovered_loops = 0usize;
    for (i, f) in graph.fns.iter().enumerate() {
        if f.item.is_test || f.item.loops.is_empty() {
            continue;
        }
        let loop_lines: Vec<String> = f.item.loops.iter().map(|l| l.line.to_string()).collect();
        let reachable = parents[i].is_some();
        if reachable && !covered[i] {
            uncovered_loops += f.item.loops.len();
            let path: Vec<String> = graph
                .path_to(&parents, i)
                .into_iter()
                .map(|k| graph.fns[k].qualname.clone())
                .collect();
            let entry = path.first().cloned().unwrap_or_else(|| f.qualname.clone());
            out.findings.push(Finding {
                rule: RULE_CANCELLATION_REACHABILITY.to_string(),
                file: f.file.clone(),
                line: f.item.line,
                message: format!(
                    "`{}` loops (line {}) and is reachable from deadline-carrying entry `{entry}` but neither polls cancellation nor calls a polling fn",
                    f.qualname,
                    loop_lines.join(", ")
                ),
            });
            out.explanations.push(Explanation {
                rule: RULE_CANCELLATION_REACHABILITY.to_string(),
                file: f.file.clone(),
                line: f.item.line,
                path,
            });
        } else {
            covered_loops += f.item.loops.len();
            let why = if !reachable {
                format!(
                    "`{}` is unreachable from every Budget/CancelToken-accepting entry point",
                    f.qualname
                )
            } else if f.item.polls {
                format!("`{}` polls cancellation lexically", f.qualname)
            } else {
                format!("`{}` transitively calls a polling fn", f.qualname)
            };
            out.proven.push(ProvenSite {
                rules: vec![RULE_CANCELLATION_REACHABILITY, "cancellation-poll"],
                file: f.file.clone(),
                line: f.item.line,
                why,
            });
        }
    }

    out.section = (
        "cancellation_reachability",
        format!(
            "{{\"entry_points\": {}, \"reachable_fns\": {}, \"covered_loops\": {covered_loops}, \"uncovered_loops\": {uncovered_loops}}}",
            roots.len(),
            parents.iter().filter(|p| p.is_some()).count(),
        ),
    );
    out
}

/// `lock-order`: extracts every `Mutex`/`RwLock`/`OnceLock`
/// acquisition, builds the held-while-acquiring order relation (both
/// intra-fn — a second acquisition inside a guard's lexical extent —
/// and interprocedural — a call inside the extent whose callee
/// transitively acquires), and flags (a) any cycle in that relation,
/// including re-acquiring a held non-reentrant lock, and (b) any lock
/// held across a call that reaches a thread fan-out (`parallel::*`,
/// `thread::scope`) — the deadlock pre-conditions a concurrent server
/// must never ship. The inferred global acquisition order and the full
/// site table land in `GRAPH_report.json`.
pub fn lock_order(graph: &Graph) -> GraphRuleOutcome {
    let mut out = GraphRuleOutcome::default();
    let lock_closure = graph.lock_closure();
    let prim = graph.fanout_primitives();
    // Call edges only: a fn whose *value* escapes through a `Ref` edge
    // does not execute on this stack, so it cannot put a fan-out under
    // a guard held here.
    let fan_reach = graph.closure_or_calls(&prim);

    // Order edges between lock ids, with one human-readable witness.
    let mut order: BTreeMap<(usize, usize), String> = BTreeMap::new();
    let mut fanout_findings = 0usize;
    for s in &graph.lock_sites {
        let f = &graph.fns[s.fn_id];
        if f.item.is_test {
            continue;
        }
        let held = format!(
            "`{}` held in `{}` ({}:{})",
            graph.lock_ids[s.lock], f.qualname, f.file, s.line
        );
        // Intra-fn: another acquisition inside this guard's extent.
        for s2 in &graph.lock_sites {
            if s2.fn_id == s.fn_id && s.offset < s2.offset && s2.offset < s.extent_end {
                order.entry((s.lock, s2.lock)).or_insert_with(|| {
                    format!(
                        "{held}, then `{}` acquired at line {}",
                        graph.lock_ids[s2.lock], s2.line
                    )
                });
            }
        }
        // Interprocedural: a call inside the extent acquires through
        // its transitive closure, or reaches a fan-out.
        for &ek in &graph.out[s.fn_id] {
            let e = &graph.edges[ek];
            if e.kind != EdgeKind::Call
                || e.approx
                || e.offset <= s.offset
                || e.offset >= s.extent_end
            {
                continue;
            }
            for &l2 in &lock_closure[e.to] {
                order.entry((s.lock, l2)).or_insert_with(|| {
                    format!(
                        "{held}, then call to `{}` (line {}) acquires `{}`",
                        graph.fns[e.to].qualname, e.line, graph.lock_ids[l2]
                    )
                });
            }
            if prim[e.to] || fan_reach[e.to] {
                fanout_findings += 1;
                out.findings.push(Finding {
                    rule: RULE_LOCK_ORDER.to_string(),
                    file: f.file.clone(),
                    line: s.line,
                    message: format!(
                        "{held} across call to `{}` (line {}), which fans out into threads — release the guard before the fan-out",
                        graph.fns[e.to].qualname, e.line
                    ),
                });
                out.explanations.push(Explanation {
                    rule: RULE_LOCK_ORDER.to_string(),
                    file: f.file.clone(),
                    line: s.line,
                    path: vec![held.clone(), graph.fns[e.to].qualname.clone()],
                });
            }
        }
        // The acquiring fn itself fanning out inside the extent
        // (`thread::scope` is external, so no edge exists for it).
        for c in &f.item.calls {
            let is_prim = (c.name() == "scope" && c.segments.iter().any(|seg| seg == "thread"))
                || c.name() == "spawn"
                || c.name() == "spawn_scoped";
            if is_prim && c.offset > s.offset && c.offset < s.extent_end {
                fanout_findings += 1;
                out.findings.push(Finding {
                    rule: RULE_LOCK_ORDER.to_string(),
                    file: f.file.clone(),
                    line: s.line,
                    message: format!(
                        "{held} across the thread fan-out at line {} — release the guard first",
                        c.line
                    ),
                });
                out.explanations.push(Explanation {
                    rule: RULE_LOCK_ORDER.to_string(),
                    file: f.file.clone(),
                    line: s.line,
                    path: vec![held.clone(), format!("thread fan-out at line {}", c.line)],
                });
            }
        }
    }

    // Cycles (self-loops are the non-reentrant re-acquisition case).
    let n = graph.lock_ids.len();
    let mut cycles: Vec<Vec<usize>> = Vec::new();
    for (&(a, b), why) in &order {
        if a == b {
            cycles.push(vec![a]);
            out.findings.push(Finding {
                rule: RULE_LOCK_ORDER.to_string(),
                file: "(workspace)".to_string(),
                line: 0,
                message: format!(
                    "`{}` re-acquired while already held (non-reentrant deadlock): {why}",
                    graph.lock_ids[a]
                ),
            });
        }
    }
    // DFS cycle detection over the multi-lock relation.
    let adj: Vec<Vec<usize>> = (0..n)
        .map(|a| {
            order
                .keys()
                .filter(|&&(x, y)| x == a && y != a)
                .map(|&(_, y)| y)
                .collect()
        })
        .collect();
    let mut color = vec![0u8; n]; // 0 white, 1 gray, 2 black
    let mut stack_path: Vec<usize> = Vec::new();
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        // Iterative DFS with an explicit stack of (node, next-child).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = 1;
        stack_path.push(start);
        while let Some(&mut (u, ref mut ci)) = stack.last_mut() {
            if *ci < adj[u].len() {
                let v = adj[u][*ci];
                *ci += 1;
                match color[v] {
                    0 => {
                        color[v] = 1;
                        stack.push((v, 0));
                        stack_path.push(v);
                    }
                    1 => {
                        // Back edge: cycle from v to u along the path.
                        let pos = stack_path.iter().position(|&x| x == v).unwrap_or(0);
                        let cyc: Vec<usize> = stack_path[pos..].to_vec();
                        let names: Vec<String> =
                            cyc.iter().map(|&l| graph.lock_ids[l].clone()).collect();
                        cycles.push(cyc);
                        out.findings.push(Finding {
                            rule: RULE_LOCK_ORDER.to_string(),
                            file: "(workspace)".to_string(),
                            line: 0,
                            message: format!(
                                "lock acquisition cycle: {} → back to `{}` — impose a global order",
                                names.join(" → "),
                                names[0]
                            ),
                        });
                    }
                    _ => {}
                }
            } else {
                color[u] = 2;
                stack.pop();
                stack_path.pop();
            }
        }
    }

    // Global order: Kahn's topological sort (meaningful when acyclic).
    let mut indeg = vec![0usize; n];
    for &(a, b) in order.keys() {
        if a != b {
            indeg[b] += 1;
        }
    }
    let mut topo: Vec<usize> = Vec::new();
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    while let Some(u) = ready.pop() {
        topo.push(u);
        for &v in &adj[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                ready.push(v);
            }
        }
    }

    let mut sec = String::from("{");
    sec.push_str(&format!(
        "\"locks\": {}, \"sites\": {}, \"order_edges\": {}, \"cycles\": {}, \"held_across_fanout\": {fanout_findings},",
        n,
        graph.lock_sites.len(),
        order.len(),
        cycles.len()
    ));
    sec.push_str(" \"acquisition_order\": [");
    for (i, &l) in topo.iter().enumerate() {
        if i > 0 {
            sec.push_str(", ");
        }
        sec.push_str(&json_str(&graph.lock_ids[l]));
    }
    sec.push_str("], \"order_relation\": [");
    let mut first = true;
    for (&(a, b), why) in &order {
        if !first {
            sec.push(',');
        }
        first = false;
        sec.push_str(&format!(
            "\n    {{\"before\": {}, \"after\": {}, \"witness\": {}}}",
            json_str(&graph.lock_ids[a]),
            json_str(&graph.lock_ids[b]),
            json_str(why)
        ));
    }
    sec.push_str(if order.is_empty() { "]}" } else { "\n  ]}" });
    out.section = ("lock_order", sec);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphInput;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::scanner::FileMap;

    fn build(files: &[(&str, &str, &str)]) -> Graph {
        Graph::build(
            files
                .iter()
                .map(|(rel, krate, src)| {
                    let map = FileMap::build(src, lex(src));
                    GraphInput {
                        rel: rel.to_string(),
                        krate: krate.to_string(),
                        is_binary: false,
                        parsed: parse(src, &map),
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn unreachable_panic_sites_are_proven() {
        let src =
            "pub fn api() { used(); }\nfn used() { x.unwrap(); }\nfn dead() { y.unwrap(); }\n";
        let g = build(&[("crates/core/src/x.rs", "core", src)]);
        let raw = vec![
            Finding {
                rule: RULE_NO_PANIC.into(),
                file: "crates/core/src/x.rs".into(),
                line: 2,
                message: "unwrap".into(),
            },
            Finding {
                rule: RULE_NO_PANIC.into(),
                file: "crates/core/src/x.rs".into(),
                line: 3,
                message: "unwrap".into(),
            },
        ];
        let out = transitive_no_panic(&g, &raw, &["core"]);
        assert_eq!(out.proven.len(), 1, "{:?}", out.proven);
        assert_eq!(out.proven[0].line, 3);
        assert!(out.proven[0].why.contains("dead"));
        // The reachable site got an explanation path api → used.
        let ex = out
            .explanations
            .iter()
            .find(|e| e.line == 2)
            .expect("explanation");
        assert_eq!(ex.path, ["core::x::api", "core::x::used"]);
        assert!(out.section.1.contains("panic-free-modulo-pragmas"));
    }

    #[test]
    fn uncovered_reachable_loop_is_a_finding() {
        let src = "pub fn entry(b: &Budget) { hot(); }\nfn hot() { for i in 0..9 { step(i); } }\nfn step(_i: u32) {}\n";
        let g = build(&[("crates/core/src/x.rs", "core", src)]);
        let out = cancellation_reachability(&g);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].rule, RULE_CANCELLATION_REACHABILITY);
        assert_eq!(out.findings[0].line, 2);
        let ex = &out.explanations[0];
        assert_eq!(ex.path, ["core::x::entry", "core::x::hot"]);
    }

    #[test]
    fn transitively_polling_loops_are_proven() {
        let src = "pub fn entry(b: &Budget) { hot(); }\nfn hot() { for i in 0..9 { step(i); } }\nfn step(_i: u32) { poll_it(); }\nfn poll_it() { should_stop(); }\nfn unreachable_loop() { loop {} }\n";
        let g = build(&[("crates/core/src/x.rs", "core", src)]);
        let out = cancellation_reachability(&g);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        // Both the covered loop and the unreachable loop are proven.
        assert_eq!(out.proven.len(), 2, "{:?}", out.proven);
    }

    #[test]
    fn lock_cycle_and_fanout_are_findings() {
        let src = "struct C { a: Mutex<u8>, b: Mutex<u8> }\nimpl C {\n  fn ab(&self) { let g = self.a.lock(); self.b.lock(); drop(g); }\n  fn ba(&self) { let g = self.b.lock(); self.a.lock(); drop(g); }\n  fn fan(&self) { let g = self.a.lock(); std::thread::scope(|s| {}); drop(g); }\n}\n";
        let g = build(&[("crates/core/src/x.rs", "core", src)]);
        let out = lock_order(&g);
        assert!(
            out.findings.iter().any(|f| f.message.contains("cycle")),
            "{:?}",
            out.findings
        );
        assert!(
            out.findings.iter().any(|f| f.message.contains("fan-out")),
            "{:?}",
            out.findings
        );
    }

    #[test]
    fn disciplined_locks_are_clean_with_an_order() {
        let src = "struct C { a: Mutex<u8>, b: Mutex<u8> }\nimpl C {\n  fn ab(&self) { let g = self.a.lock(); self.b.lock(); drop(g); }\n  fn release_then_fan(&self) { let g = self.a.lock(); drop(g); std::thread::scope(|s| {}); }\n}\n";
        let g = build(&[("crates/core/src/x.rs", "core", src)]);
        let out = lock_order(&g);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert!(out.section.1.contains("\"cycles\": 0"));
        // a before b in the inferred order.
        let sec = &out.section.1;
        let a = sec.find("C.a").expect("C.a in order");
        let order_part = &sec[sec.find("acquisition_order").unwrap()..];
        let ai = order_part.find("C.a").expect("a");
        let bi = order_part.find("C.b").expect("b");
        assert!(ai < bi, "{order_part}");
        let _ = a;
    }

    #[test]
    fn reacquiring_held_lock_is_a_cycle() {
        let src = "struct C { a: Mutex<u8> }\nimpl C {\n  fn twice(&self) { let g = self.a.lock(); self.a.lock(); drop(g); }\n}\n";
        let g = build(&[("crates/core/src/x.rs", "core", src)]);
        let out = lock_order(&g);
        assert!(
            out.findings
                .iter()
                .any(|f| f.message.contains("re-acquired")),
            "{:?}",
            out.findings
        );
    }

    #[test]
    fn interprocedural_lock_edges_through_calls() {
        let src = "struct C { a: Mutex<u8>, b: Mutex<u8> }\nimpl C {\n  fn inner(&self) { self.b.lock(); }\n  fn outer(&self) { let g = self.a.lock(); self.inner(); drop(g); }\n}\n";
        let g = build(&[("crates/core/src/x.rs", "core", src)]);
        let out = lock_order(&g);
        assert!(
            out.section.1.contains("\"order_edges\": 1"),
            "{}",
            out.section.1
        );
        assert!(out.section.1.contains("call to"), "{}", out.section.1);
    }
}
