//! Suppression pragmas.
//!
//! A finding is silenced by an *explicit, reasoned* pragma comment:
//!
//! ```text
//! // cqshap-lint: allow(rule-name) -- why this site is sound
//! // cqshap-lint: allow(rule-a, rule-b) -- one reason for both
//! // cqshap-lint: allow-file(rule-name) -- why the whole file is exempt
//! ```
//!
//! A site pragma suppresses matching findings on its own line (trailing
//! comment) or on the line directly below (pragma on its own line). An
//! `allow-file` pragma suppresses the rule everywhere in the file and
//! conventionally sits at the top. The ` -- reason` part is mandatory;
//! a pragma without one, naming an unknown rule, or malformed in any
//! way is itself a finding (`bad-pragma`), and a pragma that suppresses
//! nothing is reported as `unused-suppression` so stale exemptions
//! cannot accumulate.

use crate::lexer::{Token, TokenKind};
use crate::report::{Finding, RULE_BAD_PRAGMA};

/// The reach of one pragma.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PragmaScope {
    /// Suppresses findings on the pragma's line and the line below.
    Site,
    /// Suppresses the named rules for the whole file.
    File,
}

/// One parsed suppression pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// 1-based line of the pragma comment.
    pub line: u32,
    /// Site or whole-file reach.
    pub scope: PragmaScope,
    /// The rule names it suppresses.
    pub rules: Vec<String>,
    /// The mandatory justification after ` -- `.
    pub reason: String,
    /// Set when the pragma suppressed at least one finding.
    pub used: bool,
}

/// The marker every pragma comment starts with (after `//`).
pub const MARKER: &str = "cqshap-lint:";

/// Extracts all pragmas from a file's line comments. Malformed pragmas
/// are reported as `bad-pragma` findings against `file`.
pub fn collect(
    src: &str,
    tokens: &[Token],
    file: &str,
    known_rules: &[&str],
) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut findings = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let body = t.text(src).trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix(MARKER) else {
            continue;
        };
        match parse(rest.trim(), known_rules) {
            Ok((scope, rules, reason)) => pragmas.push(Pragma {
                line: t.line,
                scope,
                rules,
                reason,
                used: false,
            }),
            Err(msg) => findings.push(Finding {
                rule: RULE_BAD_PRAGMA.to_string(),
                file: file.to_string(),
                line: t.line,
                message: msg,
            }),
        }
    }
    (pragmas, findings)
}

/// Parses `allow(rules) -- reason` / `allow-file(rules) -- reason`.
fn parse(rest: &str, known_rules: &[&str]) -> Result<(PragmaScope, Vec<String>, String), String> {
    let (scope, after) = if let Some(a) = rest.strip_prefix("allow-file") {
        (PragmaScope::File, a)
    } else if let Some(a) = rest.strip_prefix("allow") {
        (PragmaScope::Site, a)
    } else {
        // cqshap-lint: allow(error-hygiene) -- the formatted string IS the bad-pragma finding message, not an error channel
        return Err(format!(
            "expected `allow(...)` or `allow-file(...)` after `{MARKER}`, got `{rest}`"
        ));
    };
    let after = after.trim_start();
    let Some(after) = after.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some(close) = after.find(')') else {
        return Err("unclosed `(` in pragma".to_string());
    };
    let rules: Vec<String> = after[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("pragma names no rules".to_string());
    }
    for r in &rules {
        if !known_rules.contains(&r.as_str()) {
            // cqshap-lint: allow(error-hygiene) -- the formatted string IS the bad-pragma finding message, not an error channel
            return Err(format!("unknown rule `{r}` in pragma"));
        }
    }
    let tail = after[close + 1..].trim_start();
    let Some(reason) = tail.strip_prefix("--") else {
        return Err("missing mandatory ` -- reason` in pragma".to_string());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("empty reason in pragma — the reason is mandatory".to_string());
    }
    Ok((scope, rules, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const KNOWN: &[&str] = &["no-panic", "thread-discipline"];

    fn run(src: &str) -> (Vec<Pragma>, Vec<Finding>) {
        collect(src, &lex(src), "f.rs", KNOWN)
    }

    #[test]
    fn well_formed_pragmas_parse() {
        let (p, f) = run(
            "// cqshap-lint: allow(no-panic) -- bounded by construction\n\
             // cqshap-lint: allow-file(thread-discipline) -- the fan-out module\n\
             // cqshap-lint: allow(no-panic, thread-discipline) -- both\n",
        );
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].scope, PragmaScope::Site);
        assert_eq!(p[1].scope, PragmaScope::File);
        assert_eq!(p[2].rules.len(), 2);
        assert_eq!(p[0].reason, "bounded by construction");
    }

    #[test]
    fn missing_reason_is_a_finding() {
        for bad in [
            "// cqshap-lint: allow(no-panic)",
            "// cqshap-lint: allow(no-panic) -- ",
            "// cqshap-lint: allow(not-a-rule) -- reason",
            "// cqshap-lint: allow no-panic -- reason",
            "// cqshap-lint: disallow(no-panic) -- reason",
        ] {
            let (p, f) = run(bad);
            assert!(p.is_empty(), "{bad}");
            assert_eq!(f.len(), 1, "{bad}");
            assert_eq!(f[0].rule, RULE_BAD_PRAGMA);
        }
    }

    #[test]
    fn unrelated_comments_are_ignored() {
        let (p, f) = run("// plain comment\n/// doc about cqshap-lint: allow\n");
        assert!(p.is_empty());
        assert!(f.is_empty());
    }
}
