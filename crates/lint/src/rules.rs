//! The rule implementations.
//!
//! Every rule is a pure function over one file's [`FileCtx`]: lexical
//! pattern matching over the significant (non-trivia) tokens, with
//! test-only regions exempt. Which rules run on which files is decided
//! by [`crate::workspace`]; the rules themselves only know how to spot
//! their construct.

use crate::lexer::TokenKind;
use crate::report::{
    Finding, RULE_CANCELLATION_POLL, RULE_ERROR_HYGIENE, RULE_NO_PANIC, RULE_NO_PANIC_INDEX,
    RULE_NO_WALL_CLOCK, RULE_THREAD_DISCIPLINE,
};
use crate::scanner::FileMap;

/// One file prepared for rule evaluation.
pub struct FileCtx<'s> {
    /// Source text.
    pub src: &'s str,
    /// Workspace-relative path, forward slashes.
    pub path: &'s str,
    /// Structural map (tokens, test ranges, fns).
    pub map: &'s FileMap,
    /// Indices into `map.tokens` of the significant tokens.
    pub sig: &'s [usize],
}

impl FileCtx<'_> {
    fn tok(&self, k: usize) -> &crate::lexer::Token {
        &self.map.tokens[self.sig[k]]
    }

    fn text(&self, k: usize) -> &str {
        self.tok(k).text(self.src)
    }

    fn is(&self, k: usize, kind: TokenKind, text: &str) -> bool {
        k < self.sig.len() && self.tok(k).kind == kind && self.text(k) == text
    }

    fn finding(&self, rule: &str, k: usize, message: String) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: self.path.to_string(),
            line: self.tok(k).line,
            message,
        }
    }
}

/// Keywords that may directly precede a `[` that is *not* an index
/// expression (array literals, slice patterns, array types).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "yield",
];

/// **no-panic** — library code of the engine crates must not contain
/// `panic!` / `unreachable!` / `todo!` / `unimplemented!` macros,
/// `.unwrap()` / `.expect(…)` calls, or `[…]` index expressions (which
/// panic out of bounds). Test code is exempt.
pub fn no_panic(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    for k in 0..ctx.sig.len() {
        let t = ctx.tok(k);
        if ctx.map.in_test(t.start) {
            continue;
        }
        match t.kind {
            TokenKind::Ident => {
                let w = ctx.text(k);
                if matches!(w, "panic" | "unreachable" | "todo" | "unimplemented")
                    && ctx.is(k + 1, TokenKind::Punct, "!")
                {
                    out.push(ctx.finding(
                        RULE_NO_PANIC,
                        k,
                        format!("`{w}!` in library code — return a typed error instead"),
                    ));
                }
                if matches!(w, "unwrap" | "expect")
                    && k > 0
                    && ctx.is(k - 1, TokenKind::Punct, ".")
                    && ctx.is(k + 1, TokenKind::Punct, "(")
                {
                    out.push(ctx.finding(
                        RULE_NO_PANIC,
                        k,
                        format!("`.{w}(…)` in library code — propagate the error or prove the invariant with a pragma"),
                    ));
                }
            }
            TokenKind::Punct if ctx.text(k) == "[" && k > 0 => {
                let prev = ctx.tok(k - 1);
                let indexable = match prev.kind {
                    TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&ctx.text(k - 1)),
                    TokenKind::Punct => matches!(ctx.text(k - 1), ")" | "]"),
                    _ => false,
                };
                // `[` must be adjacent to the indexed expression — a
                // gap means an array literal/type on a new line.
                if indexable && prev.end == t.start {
                    out.push(ctx.finding(
                        RULE_NO_PANIC_INDEX,
                        k,
                        "`[…]` index expression can panic — use `get`/`get_mut` or prove bounds with a pragma".to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

/// Identifier evidence that a function participates in cooperative
/// cancellation: it polls, charges, or threads a token/budget through.
fn is_poll_evidence(word: &str) -> bool {
    word == "check"
        || word == "check_partial"
        || word == "charge"
        || word == "budget"
        || word == "token"
        || word == "should_stop"
        || word.to_ascii_lowercase().contains("cancel")
}

/// **cancellation-poll** — in the designated exact-path files, every
/// non-test `fn` whose body contains a loop must show cancellation
/// evidence (a `budget::check` / `token.charge` call, or a token passed
/// down to a `*_cancel` kernel). Bodies of *nested* fns are excluded
/// from the enclosing fn's scan — each fn answers for itself.
pub fn cancellation_poll(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, f) in ctx.map.fns.iter().enumerate() {
        if ctx.map.in_test(f.sig_start) {
            continue;
        }
        let nested: Vec<(usize, usize)> = ctx
            .map
            .fns
            .iter()
            .enumerate()
            .filter(|(j, g)| *j != i && g.sig_start > f.body_start && g.body_end <= f.body_end)
            .map(|(_, g)| (g.body_start, g.body_end))
            .collect();
        let mut has_loop = false;
        let mut has_evidence = false;
        for k in 0..ctx.sig.len() {
            let t = ctx.tok(k);
            if t.start < f.sig_start || t.start >= f.body_end {
                continue;
            }
            if t.kind != TokenKind::Ident {
                continue;
            }
            let w = ctx.text(k);
            let in_nested = nested.iter().any(|&(s, e)| t.start >= s && t.start < e);
            if !in_nested && t.start >= f.body_start && matches!(w, "for" | "while" | "loop") {
                has_loop = true;
            }
            if !in_nested && is_poll_evidence(w) {
                has_evidence = true;
            }
        }
        if has_loop && !has_evidence {
            out.push(Finding {
                rule: RULE_CANCELLATION_POLL.to_string(),
                file: ctx.path.to_string(),
                line: f.line,
                message: format!(
                    "fn `{}` loops without polling cancellation — call `budget::check`/`token.charge` or justify with a pragma",
                    f.name
                ),
            });
        }
    }
    out
}

/// **thread-discipline** — `thread::spawn` / `thread::scope` /
/// `available_parallelism` appear only in the sanctioned fan-out
/// modules, so `ShapleyOptions::threads` caps every worker pool.
pub fn thread_discipline(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    for k in 0..ctx.sig.len() {
        let t = ctx.tok(k);
        if t.kind != TokenKind::Ident || ctx.map.in_test(t.start) {
            continue;
        }
        let w = ctx.text(k);
        if matches!(w, "spawn" | "scope")
            && k >= 3
            && ctx.is(k - 1, TokenKind::Punct, ":")
            && ctx.is(k - 2, TokenKind::Punct, ":")
            && ctx.is(k - 3, TokenKind::Ident, "thread")
        {
            out.push(ctx.finding(
                RULE_THREAD_DISCIPLINE,
                k,
                format!(
                    "direct `thread::{w}` — route the fan-out through `parallel::par_map_with` so the thread cap applies"
                ),
            ));
        }
        if w == "available_parallelism" {
            out.push(ctx.finding(
                RULE_THREAD_DISCIPLINE,
                k,
                "direct `available_parallelism` probe — use `parallel::resolve_thread_cap` / `poly::resolve_threads`"
                    .to_string(),
            ));
        }
    }
    out
}

/// **no-wall-clock** — `Instant::now` / `SystemTime::now` only inside
/// the deadline modules (`cancel.rs` / `budget.rs`), so time is read in
/// exactly one place and every deadline flows through `Budget`.
pub fn no_wall_clock(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    for k in 0..ctx.sig.len() {
        let t = ctx.tok(k);
        if t.kind != TokenKind::Ident || ctx.map.in_test(t.start) {
            continue;
        }
        let w = ctx.text(k);
        if matches!(w, "Instant" | "SystemTime")
            && ctx.is(k + 1, TokenKind::Punct, ":")
            && ctx.is(k + 2, TokenKind::Punct, ":")
            && ctx.is(k + 3, TokenKind::Ident, "now")
        {
            out.push(ctx.finding(
                RULE_NO_WALL_CLOCK,
                k,
                format!(
                    "`{w}::now()` outside the deadline modules — use `cancel::Stopwatch` or a `Budget` so clock reads stay centralized"
                ),
            ));
        }
    }
    out
}

/// **error-hygiene** — first-party library code returns typed errors:
/// no `Box<dyn … Error …>` and no stringly `Err(format!(…))`.
pub fn error_hygiene(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    for k in 0..ctx.sig.len() {
        let t = ctx.tok(k);
        if t.kind != TokenKind::Ident || ctx.map.in_test(t.start) {
            continue;
        }
        let w = ctx.text(k);
        if w == "Box"
            && ctx.is(k + 1, TokenKind::Punct, "<")
            && ctx.is(k + 2, TokenKind::Ident, "dyn")
        {
            // Scan a few tokens for an `…Error` ident before the `>`.
            let mut j = k + 3;
            while j < ctx.sig.len() && j < k + 12 {
                if ctx.is(j, TokenKind::Punct, ">") {
                    break;
                }
                if ctx.tok(j).kind == TokenKind::Ident && ctx.text(j).ends_with("Error") {
                    out.push(ctx.finding(
                        RULE_ERROR_HYGIENE,
                        k,
                        "`Box<dyn Error>` erases the error type — use the crate's typed error enum"
                            .to_string(),
                    ));
                    break;
                }
                j += 1;
            }
        }
        if w == "Err"
            && ctx.is(k + 1, TokenKind::Punct, "(")
            && ctx.is(k + 2, TokenKind::Ident, "format")
            && ctx.is(k + 3, TokenKind::Punct, "!")
        {
            out.push(
                ctx.finding(
                    RULE_ERROR_HYGIENE,
                    k,
                    "stringly `Err(format!(…))` — wrap the message in a typed error variant"
                        .to_string(),
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scanner::FileMap;

    fn ctx_run(src: &str, rule: fn(&FileCtx<'_>) -> Vec<Finding>) -> Vec<Finding> {
        let map = FileMap::build(src, lex(src));
        let sig: Vec<usize> = map
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        let ctx = FileCtx {
            src,
            path: "crates/core/src/x.rs",
            map: &map,
            sig: &sig,
        };
        rule(&ctx)
    }

    #[test]
    fn no_panic_catches_the_constructs() {
        let src = "fn f(v: &[u8]) -> u8 { let x = v[0]; opt.unwrap(); res.expect(\"msg\"); panic!(\"boom\"); unreachable!() }";
        let found = ctx_run(src, no_panic);
        let rules: Vec<&str> = found.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(found.len(), 5, "{rules:?}");
    }

    #[test]
    fn no_panic_skips_literals_comments_and_patterns() {
        let src = r#"
// panic! here is fine
fn f() {
    let s = "panic! and x.unwrap() in a string";
    let arr = [1, 2, 3];
    let [a, b] = pair;
    let t: [u8; 2] = [0; 2];
    for i in [1, 2] {}
    g(&mut [0u8; 4]);
}
"#;
        assert!(ctx_run(src, no_panic).is_empty());
    }

    #[test]
    fn no_panic_ignores_unwrap_or_variants() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.expect_err(\"e\"); }";
        // `expect_err` still panics but is a different method name; the
        // rule names exactly the constructs from the contract.
        assert!(ctx_run(src, no_panic)
            .iter()
            .all(|f| !f.message.contains("unwrap_or")));
    }

    #[test]
    fn cancellation_poll_needs_loop_and_evidence() {
        let flagged = "fn hot(xs: &[u8]) { for x in xs { work(x); } }";
        assert_eq!(ctx_run(flagged, cancellation_poll).len(), 1);
        let polling = "fn hot(xs: &[u8], token: &CancelToken) { for x in xs { if token.charge(1) { return; } } }";
        assert!(ctx_run(polling, cancellation_poll).is_empty());
        let loopless = "fn cold(x: u8) -> u8 { x + 1 }";
        assert!(ctx_run(loopless, cancellation_poll).is_empty());
        let nested = "fn outer() { fn inner() { loop {} } inner(); }";
        // The loop belongs to `inner`; only `inner` is flagged.
        let f = ctx_run(nested, cancellation_poll);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`inner`"));
    }

    #[test]
    fn thread_discipline_catches_spawn_scope_probe() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); thread::spawn(|| {}); let n = std::thread::available_parallelism(); }";
        assert_eq!(ctx_run(src, thread_discipline).len(), 3);
    }

    #[test]
    fn wall_clock_and_error_hygiene() {
        let src = "fn f() -> Result<(), Box<dyn std::error::Error>> { let t = Instant::now(); let u = std::time::SystemTime::now(); Err(format!(\"bad {t:?} {u:?}\"))?; Ok(()) }";
        assert_eq!(ctx_run(src, no_wall_clock).len(), 2);
        assert_eq!(ctx_run(src, error_hygiene).len(), 2);
        let clean =
            "fn f() -> Result<(), CoreError> { Err(CoreError::Unsupported(format!(\"x\"))) }";
        assert!(ctx_run(clean, error_hygiene).is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { v[0].unwrap(); panic!(); } }";
        assert!(ctx_run(src, no_panic).is_empty());
    }
}
