//! `cqshap-lint` — the workspace invariant checker.
//!
//! The engine carries three cross-cutting contracts that ordinary
//! compilation cannot enforce: the anytime tier's promise that every
//! long-running exact path polls its `Budget`/`CancelToken`, the
//! session's promise that failures surface as typed errors instead of
//! panics mid-patch, and the thread-cap discipline that routes every
//! fan-out through `parallel::par_map_with`. This crate checks those
//! contracts mechanically, in three passes: a small total Rust
//! [lexer] plus item/block [scanner] feed the per-file lexical
//! [rules]; an item [parser] extracts every fn with its calls, loops,
//! and lock acquisitions; and the workspace call [graph] built from
//! those items runs the interprocedural [graph_rules], with reasoned
//! suppression pragmas ([pragma]) and scope policy ([workspace]) on
//! top.
//!
//! | rule | layer | contract |
//! |------|-------|----------|
//! | `no-panic` | lexical | engine-crate library code never panics |
//! | `thread-discipline` | lexical | threads only via the sanctioned fan-outs |
//! | `no-wall-clock` | lexical | clock reads only in the deadline modules |
//! | `error-hygiene` | lexical | typed errors, no `Box<dyn Error>` / `Err(format!…)` |
//! | `transitive-no-panic` | graph | public APIs are panic-free iff everything they reach is; dead panic sites are demoted |
//! | `cancellation-reachability` | graph | every loop reachable from a `Budget`/`CancelToken` entry polls, directly or via a callee |
//! | `lock-order` | graph | lock acquisitions admit a global order: no cycles, no lock held across a thread fan-out |
//! | `suppression-debt` | graph | pragmas the graph proves redundant are flagged; the count ratchets against a committed baseline |
//!
//! Run `cargo run -p cqshap-lint` from the workspace root; it prints
//! `file:line` findings, writes `LINT_report.json` /
//! `GRAPH_report.json` / `GRAPH.dot`, enforces the suppression
//! ratchet (`crates/lint/suppression-baseline.txt`), and exits nonzero
//! on any unsuppressed violation. `--rule NAME --explain` prints the
//! call-graph path behind each finding. See the README's "Static
//! analysis" section for the suppression pragma syntax.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod graph;
pub mod graph_rules;
pub mod lexer;
pub mod parser;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod scanner;
pub mod workspace;

pub use report::{Demoted, Explanation, Finding, Report, Suppressed, SuppressionDebt};
pub use workspace::{
    lint_files, lint_source, lint_workspace, lint_workspace_timed, FileSpec, WorkspaceOutcome,
};

use std::fmt;
use std::path::PathBuf;

/// Errors from driving the linter itself (not findings).
#[derive(Debug)]
pub enum LintError {
    /// A file or directory could not be read or written.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// `--root` does not contain a `Cargo.toml`.
    NotAWorkspace {
        /// The rejected root.
        root: PathBuf,
    },
}

impl LintError {
    fn io(path: &std::path::Path, source: std::io::Error) -> LintError {
        LintError::Io {
            path: path.to_path_buf(),
            source,
        }
    }
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            LintError::NotAWorkspace { root } => {
                write!(
                    f,
                    "{} has no Cargo.toml — run from the workspace root or pass --root",
                    root.display()
                )
            }
        }
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LintError::Io { source, .. } => Some(source),
            LintError::NotAWorkspace { .. } => None,
        }
    }
}
