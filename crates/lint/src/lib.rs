//! `cqshap-lint` — the workspace invariant checker.
//!
//! The engine carries three cross-cutting contracts that ordinary
//! compilation cannot enforce: the anytime tier's promise that every
//! long-running exact path polls its `Budget`/`CancelToken`, the
//! session's promise that failures surface as typed errors instead of
//! panics mid-patch, and the thread-cap discipline that routes every
//! fan-out through `parallel::par_map_with`. This crate checks those
//! contracts mechanically: a small total Rust [lexer], an
//! item/block [scanner] that attributes code to test vs
//! library context, reasoned suppression pragmas ([pragma]), and five
//! [rules] scoped by [workspace] policy:
//!
//! | rule | contract |
//! |------|----------|
//! | `no-panic` | engine-crate library code never panics |
//! | `cancellation-poll` | exact-path loops poll cancellation |
//! | `thread-discipline` | threads only via the sanctioned fan-outs |
//! | `no-wall-clock` | clock reads only in the deadline modules |
//! | `error-hygiene` | typed errors, no `Box<dyn Error>` / `Err(format!…)` |
//!
//! Run `cargo run -p cqshap-lint` from the workspace root; it prints
//! `file:line` findings, writes `LINT_report.json`, and exits nonzero
//! on any unsuppressed violation. See the README's "Static analysis"
//! section for the suppression pragma syntax.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod scanner;
pub mod workspace;

pub use report::{Finding, Report, Suppressed};
pub use workspace::{lint_source, lint_workspace};

use std::fmt;
use std::path::PathBuf;

/// Errors from driving the linter itself (not findings).
#[derive(Debug)]
pub enum LintError {
    /// A file or directory could not be read or written.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// `--root` does not contain a `Cargo.toml`.
    NotAWorkspace {
        /// The rejected root.
        root: PathBuf,
    },
}

impl LintError {
    fn io(path: &std::path::Path, source: std::io::Error) -> LintError {
        LintError::Io {
            path: path.to_path_buf(),
            source,
        }
    }
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            LintError::NotAWorkspace { root } => {
                write!(
                    f,
                    "{} has no Cargo.toml — run from the workspace root or pass --root",
                    root.display()
                )
            }
        }
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LintError::Io { source, .. } => Some(source),
            LintError::NotAWorkspace { .. } => None,
        }
    }
}
