//! Drives [`cqshap_lint::lint_files`] — the full interprocedural
//! pipeline — over the graph fixture corpus: for each graph rule a
//! positive fixture (the violation must be found, with a call-graph
//! explanation), a suppressed fixture (a reasoned pragma silences it
//! without `unused-suppression` residue), and a test-exempt fixture
//! (the same constructs inside `#[cfg(test)]` are ignored). A golden
//! test pins the `GRAPH_report.json` rendering of a small fixture
//! workspace byte for byte.

use std::path::{Path, PathBuf};

use cqshap_lint::{lint_files, FileSpec, WorkspaceOutcome};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/graph")
        .join(name)
}

fn fixture(name: &str) -> String {
    let path = fixture_path(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Runs the whole pipeline over in-memory fixture files, no timing.
fn run(files: &[(&str, &str, &str)]) -> WorkspaceOutcome {
    let specs: Vec<FileSpec> = files
        .iter()
        .map(|(rel, krate, name)| FileSpec {
            rel: rel.to_string(),
            krate: krate.to_string(),
            is_binary: false,
            src: fixture(name),
        })
        .collect();
    lint_files(&specs, &mut || 0)
}

/// One core-crate library file at a generic path (all graph rules run;
/// `parallel.rs` is used for the fan-out fixtures so the lexical
/// `thread-discipline` rule stays out of the way).
fn run_core(name: &str) -> WorkspaceOutcome {
    run(&[("crates/core/src/fixture.rs", "core", name)])
}

fn run_parallel(name: &str) -> WorkspaceOutcome {
    run(&[("crates/core/src/parallel.rs", "core", name)])
}

// ---- cancellation-reachability ------------------------------------

#[test]
fn cancellation_positive_is_found_with_path() {
    let out = run_core("cancel_reach_positive.rs");
    let r = &out.report;
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.rule, "cancellation-reachability");
    // Anchored at the `fn hot` line, loop line in the message.
    assert_eq!(f.line, 5, "{f:?}");
    assert!(f.message.contains("`core::fixture::hot`"), "{f:?}");
    assert!(f.message.contains("entry"), "{f:?}");
    let ex = r
        .explanations
        .iter()
        .find(|e| e.rule == "cancellation-reachability")
        .expect("explanation");
    assert_eq!(ex.path, ["core::fixture::entry", "core::fixture::hot"]);
}

#[test]
fn cancellation_pragma_suppresses_without_residue() {
    let out = run_core("cancel_reach_suppressed.rs");
    let r = &out.report;
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed.len(), 1, "{:?}", r.suppressed);
    assert_eq!(r.suppressed[0].finding.rule, "cancellation-reachability");
    assert!(r.suppressed[0].reason.contains("bounded"));
}

#[test]
fn cancellation_test_code_is_exempt() {
    let out = run_core("cancel_reach_test_exempt.rs");
    assert!(out.report.findings.is_empty(), "{:?}", out.report.findings);
}

#[test]
fn cancellation_partial_progress_pattern_is_proven() {
    // The batched-engine shape (poll between facts, surface completed
    // answers on the deadline error) is exactly what the rule wants:
    // its loop is covered, so the file lints clean with zero findings
    // and the section reports full coverage.
    let out = run_core("cancel_reach_partial_progress.rs");
    assert!(out.report.findings.is_empty(), "{:?}", out.report.findings);
    let (_, cr) = out
        .sections
        .iter()
        .find(|(k, _)| *k == "cancellation_reachability")
        .expect("section");
    assert!(cr.contains("\"uncovered_loops\": 0"), "{cr}");
    assert!(cr.contains("\"covered_loops\": 1"), "{cr}");
    assert!(cr.contains("\"entry_points\": 1"), "{cr}");
}

// ---- lock-order ---------------------------------------------------

#[test]
fn lock_cycle_is_found() {
    let out = run_parallel("lock_order_cycle.rs");
    let r = &out.report;
    assert!(
        r.findings
            .iter()
            .any(|f| f.rule == "lock-order" && f.message.contains("cycle")),
        "{:?}",
        r.findings
    );
    let (_, lo) = out
        .sections
        .iter()
        .find(|(k, _)| *k == "lock_order")
        .expect("section");
    assert!(lo.contains("\"locks\": 2"), "{lo}");
    assert!(!lo.contains("\"cycles\": 0"), "{lo}");
}

#[test]
fn lock_held_across_fanout_is_found() {
    let out = run_parallel("lock_order_fanout_positive.rs");
    let f = out
        .report
        .findings
        .iter()
        .find(|f| f.rule == "lock-order")
        .unwrap_or_else(|| panic!("{:?}", out.report.findings));
    // Anchored at the acquisition line so a pragma there can cover it.
    assert_eq!(f.line, 7, "{f:?}");
    assert!(f.message.contains("fan-out"), "{f:?}");
}

#[test]
fn lock_fanout_pragma_suppresses_without_residue() {
    let out = run_parallel("lock_order_fanout_suppressed.rs");
    let r = &out.report;
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed.len(), 1, "{:?}", r.suppressed);
    assert_eq!(r.suppressed[0].finding.rule, "lock-order");
}

#[test]
fn lock_sites_in_test_code_are_exempt() {
    let out = run_parallel("lock_order_test_exempt.rs");
    assert!(out.report.findings.is_empty(), "{:?}", out.report.findings);
}

// ---- transitive-no-panic ------------------------------------------

#[test]
fn unreachable_panic_site_is_demoted_not_reported() {
    let out = run_core("tnp_demoted.rs");
    let r = &out.report;
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.demoted.len(), 1, "{:?}", r.demoted);
    assert_eq!(r.demoted[0].finding.rule, "no-panic");
    assert!(r.demoted[0].why.contains("unreachable"), "{:?}", r.demoted);
    assert_eq!(r.debt.demoted, 1);
    // Every public root certifies panic-free.
    let (_, tnp) = out
        .sections
        .iter()
        .find(|(k, _)| *k == "transitive_no_panic")
        .expect("section");
    assert!(tnp.contains("\"status\": \"panic-free\""), "{tnp}");
    assert!(!tnp.contains("modulo-pragmas"), "{tnp}");
}

#[test]
fn reachable_panic_site_stays_live_with_path() {
    let out = run_core("tnp_reachable.rs");
    let r = &out.report;
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    assert_eq!(r.findings[0].rule, "no-panic");
    let ex = r
        .explanations
        .iter()
        .find(|e| e.rule == "no-panic")
        .expect("explanation");
    assert_eq!(ex.path, ["core::fixture::api", "core::fixture::risky"]);
    let (_, tnp) = out
        .sections
        .iter()
        .find(|(k, _)| *k == "transitive_no_panic")
        .expect("section");
    assert!(tnp.contains("panic-free-modulo-pragmas"), "{tnp}");
}

// ---- golden graph -------------------------------------------------

/// Pins the `GRAPH_report.json` rendering (nodes, edges with their
/// `approx` precision flags, lock table, rule sections) of a two-file
/// fixture workspace byte for byte. Regenerate deliberately with
/// `UPDATE_GOLDEN=1 cargo test -p cqshap-lint --test graph_fixtures`.
#[test]
fn golden_graph_report_is_stable() {
    let out = run(&[
        ("crates/core/src/fixture_api.rs", "core", "golden_api.rs"),
        ("crates/core/src/fixture_pool.rs", "core", "golden_pool.rs"),
    ]);
    assert!(out.report.findings.is_empty(), "{:?}", out.report.findings);
    let json = out.graph.to_json(&out.sections);
    let path = fixture_path("golden_graph.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &json).unwrap();
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {} ({e}) — run with UPDATE_GOLDEN=1", path.display()));
    assert_eq!(
        json, want,
        "GRAPH_report.json drifted — if intentional, rerun with UPDATE_GOLDEN=1"
    );
}
