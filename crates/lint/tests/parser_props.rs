//! Property tests pinning the item parser to the lexer/scanner layer
//! beneath it: `parse` is total on arbitrary input, finds *exactly* the
//! fns the scanner's `FileMap` finds (same order, byte-exact spans —
//! no item dropped, none invented), and every fact it attributes to a
//! fn (calls, loops, locks) lies inside that fn's body span.

use cqshap_lint::lexer::lex;
use cqshap_lint::parser::{parse, parse_source};
use cqshap_lint::scanner::FileMap;
use proptest::prelude::*;

/// Fragments bibliographically biased toward item structure: fn/impl/
/// mod headers, bodies, braces in strings and comments, lock types,
/// loops, and call/path syntax — the shapes the parser attributes.
const FRAGMENTS: &[&str] = &[
    "fn f() { ",
    "pub fn g(b: &Budget) -> u32 { ",
    "fn h(token: &CancelToken) { ",
    "impl Widget { ",
    "impl Display for Widget { ",
    "mod m { ",
    "#[cfg(test)]\nmod tests { ",
    "#[test]\nfn t() { ",
    "}",
    "} ",
    "{ ",
    ";",
    "loop { ",
    "for i in 0..9 { ",
    "while x { ",
    "self.a.lock();",
    "POOL.get_or_init(|| 0);",
    "cache.read();",
    "let g = m.lock();",
    "drop(g);",
    "a: Mutex<u8>,",
    "static P: OnceLock<u8> = OnceLock::new();",
    "budget::check(token)?;",
    "x.unwrap()",
    "helper(1, 2)",
    "path::to::thing()",
    "Widget::new()",
    "let fptr: fn(u8) -> u8 = id;",
    "// } fn fake() { \n",
    "/* fn also_fake() { */",
    "\"} fn in_string() {\"",
    "'{'",
    "r#\"raw } fn \"#",
    "fn",
    "fn (",
    "struct S;",
    "pub(crate) fn private_vis() { ",
    "match x { _ => {} }",
    "|c| c + 1",
    "Some(3)",
    "\n",
    " ",
];

fn arb_item_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..FRAGMENTS.len(), 0..60)
        .prop_map(|picks| picks.into_iter().map(|i| FRAGMENTS[i]).collect::<String>())
}

fn arb_chars() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u32>(), 0..80).prop_map(|codes| {
        codes
            .into_iter()
            .filter_map(|c| char::from_u32(c % 0x110000))
            .collect::<String>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser finds exactly the scanner's fns: same count, same
    /// order, and byte-exact `sig_start`/`body_start`/`body_end` spans
    /// with matching names and lines. Any drift here would silently
    /// detach graph facts from the spans the lexical rules report on.
    #[test]
    fn parser_items_pin_scanner_fns(src in arb_item_soup()) {
        let map = FileMap::build(&src, lex(&src));
        let parsed = parse(&src, &map);
        prop_assert_eq!(
            parsed.fns.len(),
            map.fns.len(),
            "item count diverged on {:?}",
            src
        );
        for (item, info) in parsed.fns.iter().zip(&map.fns) {
            prop_assert_eq!(&item.name, &info.name, "name diverged in {:?}", src);
            prop_assert_eq!(item.sig_start, info.sig_start, "sig_start in {:?}", src);
            prop_assert_eq!(item.body_start, info.body_start, "body_start in {:?}", src);
            prop_assert_eq!(item.body_end, info.body_end, "body_end in {:?}", src);
            prop_assert_eq!(item.line, info.line, "line in {:?}", src);
        }
    }

    /// Every fact a fn carries lies inside its own body span, and the
    /// body span sits inside the file: the graph never attributes a
    /// call, loop, or lock acquisition to the wrong item.
    #[test]
    fn fn_facts_stay_inside_their_body(src in arb_item_soup()) {
        let parsed = parse_source(&src);
        for f in &parsed.fns {
            prop_assert!(f.sig_start <= f.body_start && f.body_start < f.body_end);
            prop_assert!(f.body_end <= src.len());
            for c in &f.calls {
                prop_assert!(
                    c.offset > f.body_start && c.offset < f.body_end,
                    "call at {} escapes fn `{}` [{}, {}) in {:?}",
                    c.offset, f.name, f.body_start, f.body_end, src
                );
            }
            for l in &f.loops {
                prop_assert!(
                    l.offset > f.body_start && l.offset < f.body_end,
                    "loop at {} escapes fn `{}` in {:?}",
                    l.offset, f.name, src
                );
            }
            for s in &f.locks {
                prop_assert!(
                    s.offset > f.body_start && s.offset < f.body_end,
                    "lock site at {} escapes fn `{}` in {:?}",
                    s.offset, f.name, src
                );
                prop_assert!(
                    s.extent_end > s.offset && s.extent_end <= f.body_end,
                    "guard extent [{}, {}) escapes fn `{}` in {:?}",
                    s.offset, s.extent_end, f.name, src
                );
            }
        }
    }

    /// Totality: like the lexer and scanner beneath it, the parser must
    /// accept completely arbitrary text without panicking.
    #[test]
    fn parser_is_total_on_arbitrary_text(src in arb_chars()) {
        let _ = parse_source(&src);
    }
}
