//! Fixture: tests may use throwaway error types.
//! Expected: 0 findings, 0 suppressed.

#[cfg(test)]
mod tests {
    #[test]
    fn stringly_errors_in_tests() -> Result<(), Box<dyn std::error::Error>> {
        if false {
            return Err(format!("never").into());
        }
        Ok(())
    }
}
