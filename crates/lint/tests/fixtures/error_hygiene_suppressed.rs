//! Fixture: the same shapes, justified.
//! Expected: 0 findings, 2 suppressed.

// cqshap-lint: allow(error-hygiene) -- fixture: public API frozen on Box<dyn Error> for compatibility
fn fallible(flag: bool) -> Result<(), Box<dyn std::error::Error>> {
    if flag {
        // cqshap-lint: allow(error-hygiene) -- fixture: message-only error at an outermost boundary
        return Err(format!("bad flag {flag}").into());
    }
    Ok(())
}
