//! Fixture: malformed pragmas are findings themselves.
//! Expected: 3 × `bad-pragma` (missing reason, unknown rule, wrong verb).

// cqshap-lint: allow(no-panic)
fn missing_reason() {}

// cqshap-lint: allow(made-up-rule) -- a reason does not rescue an unknown rule
fn unknown_rule() {}

// cqshap-lint: disallow(no-panic) -- there is no disallow verb
fn wrong_verb() {}
