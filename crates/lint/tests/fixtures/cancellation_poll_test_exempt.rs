//! Fixture: test fns may loop without polling cancellation.
//! Expected: 0 findings, 0 suppressed.

#[cfg(test)]
mod tests {
    #[test]
    fn loops_freely() {
        let mut acc = 0u64;
        for x in 0..1000u64 {
            acc = acc.wrapping_add(x);
        }
        assert!(acc > 0);
    }
}
