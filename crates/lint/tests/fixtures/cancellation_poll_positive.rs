//! Fixture: in an exact-path file, a loop without cancellation
//! evidence is flagged; a polling loop is not.
//! Expected: 1 × `cancellation-poll` (on `hot_loop`).

fn hot_loop(xs: &[u64]) -> u64 {
    let mut acc = 0u64;
    for x in xs {
        acc = acc.wrapping_add(*x);
    }
    acc
}

fn polled(xs: &[u64], token: &CancelToken) -> u64 {
    let mut acc = 0u64;
    for x in xs {
        if token.charge(1) {
            break;
        }
        acc = acc.wrapping_add(*x);
    }
    acc
}

fn loopless(x: u64) -> u64 {
    x.wrapping_mul(3)
}
