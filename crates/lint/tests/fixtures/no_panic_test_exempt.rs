//! Fixture: test code may panic freely; only library code is checked.
//! Expected: 0 findings, 0 suppressed.

/// The library part stays clean.
pub fn lib(x: u8) -> u8 {
    x.saturating_add(1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_panics_freely() {
        let v = [1u8];
        assert_eq!(v[0], 1);
        Some(1).unwrap();
        Err::<u8, _>(()).expect("fine in tests");
    }
}
