//! Fixture: the unpolled loop carries a reasoned pragma.
//! Expected: 0 findings, 1 suppressed.

// cqshap-lint: allow(cancellation-poll) -- fixture: the loop is bounded by the arity, at most 8 iterations
fn hot_loop(xs: &[u64]) -> u64 {
    let mut acc = 0u64;
    for x in xs {
        acc = acc.wrapping_add(*x);
    }
    acc
}
