//! Fixture: direct threading outside the sanctioned fan-out modules.
//! Expected: 2 × `thread-discipline` (`thread::scope`,
//! `available_parallelism`); the closure-local `s.spawn` is not a
//! `thread::spawn` path and is not flagged.

fn fan_out(n: usize) -> usize {
    std::thread::scope(|s| {
        s.spawn(move || n + 1);
    });
    std::thread::available_parallelism().map_or(1, |c| c.get())
}
