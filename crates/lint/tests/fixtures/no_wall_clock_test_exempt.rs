//! Fixture: tests may time themselves.
//! Expected: 0 findings, 0 suppressed.

#[cfg(test)]
mod tests {
    #[test]
    fn times_itself() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_nanos() < u128::MAX);
    }
}
