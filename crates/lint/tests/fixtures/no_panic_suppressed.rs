//! Fixture: the same constructs, each silenced by a reasoned pragma.
//! Expected: 0 findings, 3 suppressed (1 file-scope index, 2 site).
// cqshap-lint: allow-file(no-panic-index) -- fixture: indexes are bounds-checked by the caller

fn lib(v: &[u8], opt: Option<u8>, res: Result<u8, ()>) -> u8 {
    let first = v[0];
    // cqshap-lint: allow(no-panic) -- fixture: the option is always Some by construction
    let a = opt.unwrap();
    let b = res.expect("must"); // cqshap-lint: allow(no-panic) -- fixture: trailing-comment pragma form
    first + a + b
}
