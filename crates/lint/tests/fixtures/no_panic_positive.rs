//! Fixture: every `no-panic` construct, in library context, unsuppressed.
//! Expected: 4 × `no-panic` (unwrap, expect, panic!, unreachable!) and
//! 1 × `no-panic-index` (`v[0]`).

fn lib(v: &[u8], opt: Option<u8>, res: Result<u8, ()>) -> u8 {
    let first = v[0];
    let a = opt.unwrap();
    let b = res.expect("must be Ok");
    if first > a + b {
        panic!("boom");
    }
    unreachable!()
}
