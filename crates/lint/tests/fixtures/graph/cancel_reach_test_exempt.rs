pub fn lib_code() -> u64 {
    7
}

#[cfg(test)]
mod tests {
    fn entry(budget: &Budget) -> u64 {
        hot()
    }

    fn hot() -> u64 {
        let mut acc = 0;
        for i in 0..4 {
            acc += i;
        }
        acc
    }
}
