pub fn entry(budget: &Budget) -> u64 {
    budget.check(1);
    let mut acc = 0;
    for i in 0..4 {
        acc += work(i);
    }
    acc
}

fn work(i: u64) -> u64 {
    twice(i)
}

fn twice(i: u64) -> u64 {
    i + i
}
