pub struct Pair {
    a: Mutex<u8>,
    b: Mutex<u8>,
}

impl Pair {
    pub fn ab(&self) {
        let g = self.a.lock();
        self.b.lock();
        drop(g);
    }

    pub fn ba(&self) {
        let g = self.b.lock();
        self.a.lock();
        drop(g);
    }
}
