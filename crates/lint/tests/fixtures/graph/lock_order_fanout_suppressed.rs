pub struct Pool {
    slots: Mutex<u8>,
}

impl Pool {
    pub fn fan(&self) {
        // cqshap-lint: allow(lock-order) -- scope body only reads thread-local state
        let g = self.slots.lock();
        std::thread::scope(|s| {
            let _ = s;
        });
        drop(g);
    }
}
