pub struct Pool {
    slots: Mutex<u8>,
}

impl Pool {
    pub fn acquire(&self) -> u64 {
        let g = self.slots.lock();
        drop(g);
        work_units()
    }
}

fn work_units() -> u64 {
    let f = helper;
    f()
}

fn helper() -> u64 {
    3
}
