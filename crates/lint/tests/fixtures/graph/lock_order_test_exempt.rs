pub fn lib_code() -> u64 {
    7
}

#[cfg(test)]
mod tests {
    struct Pool {
        slots: Mutex<u8>,
    }

    impl Pool {
        fn fan(&self) {
            let g = self.slots.lock();
            std::thread::scope(|s| {
                let _ = s;
            });
            drop(g);
        }
    }
}
