pub fn api() -> u8 {
    0
}

fn dead() -> u8 {
    maybe().unwrap()
}

fn maybe() -> Option<u8> {
    None
}
