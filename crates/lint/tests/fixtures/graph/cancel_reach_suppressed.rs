pub fn entry(budget: &Budget) -> u64 {
    hot()
}

// cqshap-lint: allow(cancellation-poll) -- bounded: exactly four steps
fn hot() -> u64 {
    let mut acc = 0;
    for i in 0..4 {
        acc += step(i);
    }
    acc
}

fn step(i: u64) -> u64 {
    i
}
