pub struct Pool {
    slots: Mutex<u8>,
}

impl Pool {
    pub fn fan(&self) {
        let g = self.slots.lock();
        std::thread::scope(|s| {
            let _ = s;
        });
        drop(g);
    }
}
