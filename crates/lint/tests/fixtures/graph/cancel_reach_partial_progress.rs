/// The batched-engine shape: one per-fact answer per trip around the
/// loop, the budget polled between facts, and on a deadline trip the
/// completed answers surfaced on the error instead of being dropped.
pub fn batched(facts: &[u64], budget: &Budget) -> Result<Vec<u64>, CoreError> {
    let mut values = Vec::new();
    for fact in facts {
        if let Err(e) = budget.check_partial(Some(values.len())) {
            let answers = values.iter().cloned().enumerate().collect();
            return Err(e.with_partial_answers(answers));
        }
        values.push(per_fact(*fact));
    }
    Ok(values)
}

fn per_fact(fact: u64) -> u64 {
    fact
}
