pub fn api() -> u8 {
    risky()
}

fn risky() -> u8 {
    maybe().unwrap()
}

fn maybe() -> Option<u8> {
    None
}
