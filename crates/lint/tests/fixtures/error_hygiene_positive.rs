//! Fixture: type-erased and stringly errors in library code.
//! Expected: 2 × `error-hygiene`.

fn fallible(flag: bool) -> Result<(), Box<dyn std::error::Error>> {
    if flag {
        return Err(format!("bad flag {flag}").into());
    }
    Ok(())
}
