//! Fixture: a pragma that silences nothing is itself a finding, so
//! stale exemptions cannot accumulate.
//! Expected: 1 × `unused-suppression`.

// cqshap-lint: allow-file(no-wall-clock) -- fixture: nothing here reads the clock any more
fn clean(x: u8) -> u8 {
    x.saturating_add(1)
}
