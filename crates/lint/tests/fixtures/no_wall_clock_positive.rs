//! Fixture: wall-clock reads outside the deadline modules.
//! Expected: 2 × `no-wall-clock`.

fn timed(work: impl Fn()) -> u128 {
    let t0 = std::time::Instant::now();
    let _stamp = std::time::SystemTime::now();
    work();
    t0.elapsed().as_nanos()
}
