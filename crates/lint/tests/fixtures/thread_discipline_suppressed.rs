//! Fixture: the same fan-out, justified site by site.
//! Expected: 0 findings, 2 suppressed.

fn fan_out(n: usize) -> usize {
    // cqshap-lint: allow(thread-discipline) -- fixture: pretend this is a sanctioned fan-out
    std::thread::scope(|s| {
        s.spawn(move || n + 1);
    });
    // cqshap-lint: allow(thread-discipline) -- fixture: pretend this is the one sanctioned probe
    std::thread::available_parallelism().map_or(1, |c| c.get())
}
