//! Fixture: each clock read carries its own site pragma on the line
//! directly above (site pragmas cover their own line and the next).
//! Expected: 0 findings, 2 suppressed.

fn timed(work: impl Fn()) -> u128 {
    // cqshap-lint: allow(no-wall-clock) -- fixture: measurement code, not a deadline
    let t0 = std::time::Instant::now();
    work();
    // cqshap-lint: allow(no-wall-clock) -- fixture: measurement code, not a deadline
    let _stamp = std::time::SystemTime::now();
    t0.elapsed().as_nanos()
}
