//! Fixture: tests may thread directly (they exercise the pools).
//! Expected: 0 findings, 0 suppressed.

#[cfg(test)]
mod tests {
    #[test]
    fn spawns_in_tests() {
        std::thread::scope(|s| {
            s.spawn(|| 1 + 1);
        });
        let _ = std::thread::available_parallelism();
    }
}
