//! Property tests pinning the lexer's totality guarantees (see the
//! `lexer` module docs): every input tokenizes, the tokens partition
//! the input byte-for-byte in order, token boundaries never split a
//! UTF-8 character, and text inside comments and string literals never
//! leaks out as identifier tokens the rules could mistake for code.

use cqshap_lint::lexer::{lex, Token, TokenKind};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Fragments chosen to stress every tricky lexer state: quote and hash
/// openers/closers, escapes, comment delimiters (nested and
/// unterminated), lifetimes vs chars, raw identifiers, multi-byte
/// UTF-8, and the panic-words the rules search for.
const FRAGMENTS: &[&str] = &[
    "\"", "'", "\\", "#", "r", "b", "br", "r#", "r#\"", "\"#", "//", "/*", "*/", "\n", " ", "\t",
    "\r\n", "panic", "unwrap", "!", ".", "(", ")", "[", "]", "::", "0", "1.5", "0x1F", "..",
    "ident", "r#match", "'a", "'x'", "b'\\n'", "é", "🦀", "\u{80}", "0..n", "1e9", "_",
];

/// A soup of fragments: adversarial but always valid UTF-8.
fn arb_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..FRAGMENTS.len(), 0..40)
        .prop_map(|picks| picks.into_iter().map(|i| FRAGMENTS[i]).collect::<String>())
}

/// Fully arbitrary characters (no fragment structure at all).
fn arb_chars() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u32>(), 0..60).prop_map(|codes| {
        codes
            .into_iter()
            .filter_map(|c| char::from_u32(c % 0x110000))
            .collect::<String>()
    })
}

/// Asserts the partition guarantee for `src`, returning the tokens.
fn check_partition(src: &str) -> Result<Vec<Token>, TestCaseError> {
    let tokens = lex(src);
    let mut cursor = 0usize;
    for t in &tokens {
        prop_assert_eq!(t.start, cursor, "gap/overlap at {} in {:?}", t.start, src);
        prop_assert!(t.end > t.start, "empty token in {:?}", src);
        prop_assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "token boundary splits a UTF-8 char in {:?}",
            src
        );
        cursor = t.end;
    }
    prop_assert_eq!(cursor, src.len(), "tokens do not cover {:?}", src);
    Ok(tokens)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Round trip: concatenating token texts reproduces any fragment
    /// soup byte-for-byte, and line numbers never decrease.
    #[test]
    fn fragment_soup_round_trips(src in arb_soup()) {
        let tokens = check_partition(&src)?;
        let rebuilt: String = tokens.iter().map(|t| t.text(&src)).collect();
        prop_assert_eq!(&rebuilt, &src);
        let mut last_line = 1u32;
        for t in &tokens {
            prop_assert!(t.line >= last_line, "line went backwards in {:?}", src);
            last_line = t.line;
        }
    }

    /// The same partition guarantee for completely arbitrary text.
    #[test]
    fn arbitrary_text_round_trips(src in arb_chars()) {
        let tokens = check_partition(&src)?;
        let rebuilt: String = tokens.iter().map(|t| t.text(&src)).collect();
        prop_assert_eq!(&rebuilt, &src);
    }

    /// A line comment absorbs everything to the newline: no soup
    /// (newlines stripped) can smuggle identifier tokens out of one.
    #[test]
    fn line_comments_absorb_their_line(soup in arb_soup()) {
        let body: String = soup.chars().filter(|&c| c != '\n' && c != '\r').collect();
        let src = format!("// {body}\nafter");
        let tokens = check_partition(&src)?;
        let idents: Vec<&str> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(&src))
            .collect();
        prop_assert_eq!(idents, vec!["after"], "comment leaked tokens: {:?}", src);
    }

    /// A string literal hides panic-words from the rules: wrapping an
    /// escaped soup in quotes yields one Str token plus the `after`
    /// identifier, never an `unwrap`/`panic` ident.
    #[test]
    fn string_literals_hide_their_content(soup in arb_soup()) {
        let escaped: String = soup
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                c => vec![c],
            })
            .collect();
        let src = format!("\"{escaped}\" after");
        let tokens = check_partition(&src)?;
        prop_assert_eq!(tokens[0].kind, TokenKind::Str, "{:?}", src);
        let idents: Vec<&str> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(&src))
            .collect();
        prop_assert_eq!(idents, vec!["after"], "literal leaked tokens: {:?}", src);
    }
}
