//! Drives [`cqshap_lint::lint_source`] over the fixture corpus: for
//! every rule, a positive fixture (seeded violations must be caught), a
//! suppressed fixture (reasoned pragmas must silence them without
//! leaving `unused-suppression` residue), and a test-exempt fixture
//! (the same constructs inside `#[cfg(test)]` are ignored). The meta
//! rules (`bad-pragma`, `unused-suppression`) and the binary-target
//! exemptions get their own cases.

use std::path::Path;

use cqshap_lint::{lint_source, Finding, Suppressed};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lints `name` as if it were library code of the `core` crate at a
/// path where all generally-scoped rules apply.
fn lint_as_core(name: &str) -> (Vec<Finding>, Vec<Suppressed>) {
    let out = lint_source("crates/core/src/fixture.rs", "core", false, &fixture(name));
    (out.findings, out.suppressed)
}

/// Lints `name` at an exact-path file, where `cancellation-poll` runs.
fn lint_as_cancel_file(name: &str) -> (Vec<Finding>, Vec<Suppressed>) {
    let out = lint_source("crates/core/src/domain.rs", "core", false, &fixture(name));
    (out.findings, out.suppressed)
}

/// Lints `name` as `workloads` library code: outside the panic-free and
/// clock-disciplined crates, so only `thread-discipline`,
/// `error-hygiene`, and the meta rules run.
fn lint_as_workloads(name: &str) -> (Vec<Finding>, Vec<Suppressed>) {
    let out = lint_source(
        "crates/workloads/src/fixture.rs",
        "workloads",
        false,
        &fixture(name),
    );
    (out.findings, out.suppressed)
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn no_panic_positive_is_caught() {
    let (findings, suppressed) = lint_as_core("no_panic_positive.rs");
    assert!(suppressed.is_empty());
    let mut rules = rules_of(&findings);
    rules.sort_unstable();
    assert_eq!(
        rules,
        [
            "no-panic",
            "no-panic",
            "no-panic",
            "no-panic",
            "no-panic-index"
        ],
        "{findings:?}"
    );
    // Findings carry 1-based lines pointing at the construct.
    assert!(findings.iter().all(|f| f.line >= 6 && f.line <= 13));
}

#[test]
fn no_panic_suppressions_silence_without_residue() {
    let (findings, suppressed) = lint_as_core("no_panic_suppressed.rs");
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed.len(), 3, "{suppressed:?}");
    assert!(suppressed.iter().all(|s| !s.reason.is_empty()));
    assert!(suppressed
        .iter()
        .any(|s| s.finding.rule == "no-panic-index"));
}

#[test]
fn no_panic_test_code_is_exempt() {
    let (findings, suppressed) = lint_as_core("no_panic_test_exempt.rs");
    assert!(findings.is_empty(), "{findings:?}");
    assert!(suppressed.is_empty());
}

#[test]
fn no_panic_does_not_apply_to_binaries() {
    let out = lint_source(
        "crates/core/src/main.rs",
        "core",
        true,
        &fixture("no_panic_positive.rs"),
    );
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn cancellation_poll_positive_is_caught() {
    let (findings, suppressed) = lint_as_cancel_file("cancellation_poll_positive.rs");
    assert!(suppressed.is_empty());
    assert_eq!(rules_of(&findings), ["cancellation-poll"], "{findings:?}");
    assert!(
        findings[0].message.contains("hot_loop"),
        "{}",
        findings[0].message
    );
}

#[test]
fn cancellation_poll_suppression_works() {
    let (findings, suppressed) = lint_as_cancel_file("cancellation_poll_suppressed.rs");
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed.len(), 1);
}

#[test]
fn cancellation_poll_test_code_is_exempt() {
    let (findings, suppressed) = lint_as_cancel_file("cancellation_poll_test_exempt.rs");
    assert!(findings.is_empty(), "{findings:?}");
    assert!(suppressed.is_empty());
}

#[test]
fn cancellation_poll_does_not_run_outside_exact_path_files() {
    let (findings, _) = lint_as_core("cancellation_poll_positive.rs");
    assert!(
        !rules_of(&findings).contains(&"cancellation-poll"),
        "{findings:?}"
    );
}

#[test]
fn thread_discipline_positive_is_caught() {
    let (findings, suppressed) = lint_as_workloads("thread_discipline_positive.rs");
    assert!(suppressed.is_empty());
    assert_eq!(
        rules_of(&findings),
        ["thread-discipline", "thread-discipline"],
        "{findings:?}"
    );
}

#[test]
fn thread_discipline_applies_to_binaries_too() {
    let out = lint_source(
        "crates/workloads/src/bin/gen.rs",
        "workloads",
        true,
        &fixture("thread_discipline_positive.rs"),
    );
    assert_eq!(out.findings.len(), 2, "{:?}", out.findings);
}

#[test]
fn thread_discipline_suppression_works() {
    let (findings, suppressed) = lint_as_workloads("thread_discipline_suppressed.rs");
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed.len(), 2);
}

#[test]
fn thread_discipline_test_code_is_exempt() {
    let (findings, suppressed) = lint_as_workloads("thread_discipline_test_exempt.rs");
    assert!(findings.is_empty(), "{findings:?}");
    assert!(suppressed.is_empty());
}

#[test]
fn thread_discipline_is_off_in_sanctioned_modules() {
    let out = lint_source(
        "crates/core/src/parallel.rs",
        "core",
        false,
        &fixture("thread_discipline_positive.rs"),
    );
    assert!(
        !rules_of(&out.findings).contains(&"thread-discipline"),
        "{:?}",
        out.findings
    );
}

#[test]
fn no_wall_clock_positive_is_caught() {
    let (findings, suppressed) = lint_as_core("no_wall_clock_positive.rs");
    assert!(suppressed.is_empty());
    assert_eq!(
        rules_of(&findings),
        ["no-wall-clock", "no-wall-clock"],
        "{findings:?}"
    );
}

#[test]
fn no_wall_clock_suppression_works() {
    let (findings, suppressed) = lint_as_core("no_wall_clock_suppressed.rs");
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed.len(), 2);
}

#[test]
fn no_wall_clock_test_code_is_exempt() {
    let (findings, suppressed) = lint_as_core("no_wall_clock_test_exempt.rs");
    assert!(findings.is_empty(), "{findings:?}");
    assert!(suppressed.is_empty());
}

#[test]
fn no_wall_clock_is_off_in_deadline_modules() {
    let out = lint_source(
        "crates/numeric/src/cancel.rs",
        "numeric",
        false,
        &fixture("no_wall_clock_positive.rs"),
    );
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn error_hygiene_positive_is_caught() {
    let (findings, suppressed) = lint_as_workloads("error_hygiene_positive.rs");
    assert!(suppressed.is_empty());
    assert_eq!(
        rules_of(&findings),
        ["error-hygiene", "error-hygiene"],
        "{findings:?}"
    );
}

#[test]
fn error_hygiene_suppression_works() {
    let (findings, suppressed) = lint_as_workloads("error_hygiene_suppressed.rs");
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed.len(), 2);
}

#[test]
fn error_hygiene_test_code_is_exempt() {
    let (findings, suppressed) = lint_as_workloads("error_hygiene_test_exempt.rs");
    assert!(findings.is_empty(), "{findings:?}");
    assert!(suppressed.is_empty());
}

#[test]
fn malformed_pragmas_are_findings() {
    let (findings, suppressed) = lint_as_workloads("bad_pragma.rs");
    assert!(suppressed.is_empty());
    assert_eq!(
        rules_of(&findings),
        ["bad-pragma", "bad-pragma", "bad-pragma"],
        "{findings:?}"
    );
}

#[test]
fn stale_suppressions_are_findings() {
    let (findings, suppressed) = lint_as_core("unused_suppression.rs");
    assert!(suppressed.is_empty());
    assert_eq!(rules_of(&findings), ["unused-suppression"], "{findings:?}");
}
