//! Tuple-independent probabilistic databases (Section 4.3).
//!
//! Fink and Olteanu established that query evaluation over
//! tuple-independent databases is in PTIME for hierarchical CQ¬s and
//! `FP^{#P}`-complete otherwise. Theorem 4.10 of the paper extends this
//! with *deterministic relations* (probability-1 facts): evaluation is
//! polynomial exactly when the query has no non-hierarchical path, via
//! the same `ExoShap` rewriting used for Shapley values.
//!
//! This crate provides:
//!
//! * [`ProbDatabase`] — a [`Database`] whose endogenous facts carry
//!   marginal probabilities (exogenous facts are deterministic);
//! * [`ProbDatabase::query_probability`] — lifted inference for
//!   hierarchical self-join-free CQ¬s, mirroring the structure of the
//!   `CntSat` recursion (independent products over components and root
//!   values);
//! * [`ProbDatabase::query_probability_with_rewriting`] — the Theorem
//!   4.10 pipeline: `ExoShap`-rewrite, then lifted inference;
//! * [`ProbDatabase::query_probability_enumerated`] — explicit
//!   possible-world enumeration, the ground truth for tests.

use cqshap_core::{exoshap, CoreError};
use cqshap_db::{Database, FactId, World};
use cqshap_engine::{satisfies_compiled, CompiledQuery};
use cqshap_query::{has_self_join, is_hierarchical, ConjunctiveQuery, Term};

mod lifted;

use crate::lifted::{LiftedAtom, LiftedTerm};

/// A tuple-independent probabilistic database.
///
/// Endogenous facts of the wrapped [`Database`] are probabilistic;
/// exogenous facts (and hence all facts of declared exogenous relations)
/// are deterministic with probability 1.
#[derive(Debug, Clone)]
pub struct ProbDatabase {
    db: Database,
    /// Probability per fact id; exogenous entries are fixed at 1.
    probs: Vec<f64>,
}

impl ProbDatabase {
    /// Wraps `db`, giving every endogenous fact probability `default_p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= default_p <= 1.0`.
    pub fn new(db: Database, default_p: f64) -> Self {
        assert!((0.0..=1.0).contains(&default_p), "probability out of range");
        let probs = db
            .fact_ids()
            .map(|f| {
                if db.fact(f).provenance.is_endogenous() {
                    default_p
                } else {
                    1.0
                }
            })
            .collect();
        ProbDatabase { db, probs }
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The probability of fact `f`.
    pub fn prob(&self, f: FactId) -> f64 {
        self.probs[f.index()]
    }

    /// Sets the probability of an endogenous fact.
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] for deterministic facts;
    /// [`CoreError::Unsupported`] for out-of-range probabilities.
    pub fn set_prob(&mut self, f: FactId, p: f64) -> Result<(), CoreError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(CoreError::Unsupported(format!(
                "probability {p} out of [0,1]"
            )));
        }
        if self.db.endo_index(f).is_none() {
            return Err(CoreError::FactNotEndogenous {
                fact: self.db.render_fact(f),
            });
        }
        self.probs[f.index()] = p;
        Ok(())
    }

    /// `Pr[D ⊨ q]` by lifted inference — polynomial time, for
    /// hierarchical self-join-free CQ¬s (Fink & Olteanu's tractable
    /// class, extended to CQ¬ exactly as in Lemma 3.2).
    ///
    /// # Errors
    /// [`CoreError::NotHierarchical`] / [`CoreError::NotSelfJoinFree`].
    pub fn query_probability(&self, q: &ConjunctiveQuery) -> Result<f64, CoreError> {
        if has_self_join(q) {
            return Err(CoreError::NotSelfJoinFree {
                query: q.to_string(),
            });
        }
        if !is_hierarchical(q) {
            return Err(CoreError::NotHierarchical {
                query: q.to_string(),
            });
        }
        let mut atoms: Vec<LiftedAtom> = Vec::new();
        let mut scopes: Vec<Vec<FactId>> = Vec::new();
        for atom in q.atoms() {
            let rel = self.db.schema().id(&atom.relation);
            let mut unknown = false;
            let terms: Vec<LiftedTerm> = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => LiftedTerm::Var(v.0),
                    Term::Const(name) => match self.db.interner().get(name) {
                        Some(c) => LiftedTerm::Const(c),
                        None => {
                            unknown = true;
                            LiftedTerm::Var(u32::MAX)
                        }
                    },
                })
                .collect();
            if rel.is_none() || unknown {
                if atom.negated {
                    continue; // the negated fact can never exist
                }
                return Ok(0.0); // unsatisfiable positive atom
            }
            let a = LiftedAtom {
                negated: atom.negated,
                terms,
            };
            let rel = rel.expect("checked");
            let scope: Vec<FactId> = self
                .db
                .relation_facts(rel)
                .iter()
                .copied()
                .filter(|&f| a.matches(self.db.fact(f).tuple.values()))
                .collect();
            atoms.push(a);
            scopes.push(scope);
        }
        if atoms.is_empty() {
            return Ok(1.0); // all atoms were vacuous negations
        }
        Ok(lifted::probability(&self.db, &self.probs, &atoms, &scopes))
    }

    /// `Pr[D ⊨ q]` under Theorem 4.10: rewrite away the deterministic
    /// relations (`ExoShap`), then run lifted inference on the resulting
    /// hierarchical query. Applicable whenever `q` has no
    /// non-hierarchical path with respect to the declared exogenous
    /// (deterministic) relations.
    pub fn query_probability_with_rewriting(
        &self,
        q: &ConjunctiveQuery,
        tuple_budget: usize,
    ) -> Result<f64, CoreError> {
        let outcome = exoshap::rewrite(&self.db, q, tuple_budget)?;
        if outcome.always_false {
            return Ok(0.0);
        }
        // Fact ids are preserved by the rewriting; fresh facts are
        // exogenous (deterministic), so extending the probability vector
        // with 1s is exact.
        let mut probs = self.probs.clone();
        probs.resize(outcome.db.fact_count(), 1.0);
        let rewritten = ProbDatabase {
            db: outcome.db,
            probs,
        };
        rewritten.query_probability(&outcome.query)
    }

    /// `Pr[D ⊨ q]` by explicit possible-world enumeration over the
    /// probabilistic facts — exponential; the ground truth for tests.
    ///
    /// # Errors
    /// [`CoreError::TooManyEndogenousFacts`] when more than `limit`
    /// facts are probabilistic.
    pub fn query_probability_enumerated(
        &self,
        q: &ConjunctiveQuery,
        limit: usize,
    ) -> Result<f64, CoreError> {
        let uncertain: Vec<FactId> = self
            .db
            .endo_facts()
            .iter()
            .copied()
            .filter(|&f| self.prob(f) < 1.0)
            .collect();
        if uncertain.len() > limit {
            return Err(CoreError::TooManyEndogenousFacts {
                count: uncertain.len(),
                limit,
            });
        }
        let certain: Vec<FactId> = self
            .db
            .endo_facts()
            .iter()
            .copied()
            .filter(|&f| self.prob(f) >= 1.0)
            .collect();
        let compiled = CompiledQuery::compile(&self.db, q);
        let mut total = 0.0f64;
        for mask in 0u64..(1u64 << uncertain.len()) {
            let mut world = World::empty(&self.db);
            for &f in &certain {
                world.insert(&self.db, f);
            }
            let mut weight = 1.0f64;
            for (bit, &f) in uncertain.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    world.insert(&self.db, f);
                    weight *= self.prob(f);
                } else {
                    weight *= 1.0 - self.prob(f);
                }
            }
            if weight > 0.0 && satisfies_compiled(&self.db, &world, &compiled) {
                total += weight;
            }
        }
        Ok(total)
    }
}

/// Convenience: deterministic-relation names of the wrapped database.
pub fn deterministic_relations(pdb: &ProbDatabase) -> Vec<String> {
    pdb.database().exogenous_relation_names()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    fn university() -> Database {
        Database::parse(
            "exo Stud(Adam)\nexo Stud(Ben)\nexo Stud(Caroline)\nexo Stud(David)\n\
             endo TA(Adam)\nendo TA(Ben)\nendo TA(David)\n\
             exo Course(OS, EE)\nexo Course(IC, EE)\nexo Course(DB, CS)\nexo Course(AI, CS)\n\
             endo Reg(Adam, OS)\nendo Reg(Adam, AI)\nendo Reg(Ben, OS)\n\
             endo Reg(Caroline, DB)\nendo Reg(Caroline, IC)\n\
             exo Adv(Michael, Adam)\nexo Adv(Michael, Ben)\nexo Adv(Naomi, Caroline)\n\
             exo Adv(Michael, David)\n",
        )
        .unwrap()
    }

    fn with_varied_probs(db: Database) -> ProbDatabase {
        let mut pdb = ProbDatabase::new(db, 0.5);
        // Deterministic-ish spread of probabilities.
        let endo: Vec<FactId> = pdb.database().endo_facts().to_vec();
        for (i, f) in endo.into_iter().enumerate() {
            let p = [0.1, 0.3, 0.5, 0.7, 0.9, 0.25, 0.75, 0.6][i % 8];
            pdb.set_prob(f, p).unwrap();
        }
        pdb
    }

    #[test]
    fn lifted_matches_enumeration_on_running_example() {
        let pdb = with_varied_probs(university());
        for text in [
            "q() :- Stud(x), !TA(x), Reg(x, y)",
            "q() :- Reg(x, y)",
            "q() :- TA(x), Reg(x, y)",
            "q() :- Stud(x), !TA(x)",
            "q() :- Reg(x, 'OS'), !TA(x)",
            "q() :- TA(x), Course(y, 'CS')",
        ] {
            let q = cqshap_query::parse_cq(text).unwrap();
            let fast = pdb.query_probability(&q).unwrap();
            let slow = pdb.query_probability_enumerated(&q, 20).unwrap();
            assert!(
                close(fast, slow),
                "{text}: lifted {fast} vs enumerated {slow}"
            );
        }
    }

    #[test]
    fn extreme_probabilities() {
        let mut pdb = ProbDatabase::new(university(), 0.5);
        let ta = pdb.database().find_fact("TA", &["Adam"]).unwrap();
        pdb.set_prob(ta, 0.0).unwrap();
        let reg = pdb
            .database()
            .find_fact("Reg", &["Caroline", "DB"])
            .unwrap();
        pdb.set_prob(reg, 1.0).unwrap();
        let q = cqshap_query::parse_cq("q() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        // Reg(Caroline, DB) certain and Caroline is never a TA → P = 1.
        assert!(close(pdb.query_probability(&q).unwrap(), 1.0));
        let q2 = cqshap_query::parse_cq("q() :- TA(x), Reg(x, 'AI')").unwrap();
        let fast = pdb.query_probability(&q2).unwrap();
        let slow = pdb.query_probability_enumerated(&q2, 20).unwrap();
        assert!(close(fast, slow));
    }

    #[test]
    fn theorem_4_10_rewriting() {
        // Example 4.1's query with deterministic Pub and Citations: not
        // hierarchical, but evaluable after rewriting.
        let db = Database::parse(
            "exorel Pub\nexorel Citations\n\
             endo Author(alice, i1)\nendo Author(bob, i2)\nendo Author(carol, i1)\n\
             exo Pub(alice, p1)\nexo Pub(alice, p2)\nexo Pub(bob, p3)\nexo Pub(carol, p4)\n\
             exo Citations(p1, c10)\nexo Citations(p3, c5)\nexo Citations(p4, c2)\n",
        )
        .unwrap();
        let q = cqshap_query::parse_cq("q() :- Author(x, y), Pub(x, z), Citations(z, w)").unwrap();
        let mut pdb = ProbDatabase::new(db, 0.5);
        let alice = pdb
            .database()
            .find_fact("Author", &["alice", "i1"])
            .unwrap();
        pdb.set_prob(alice, 0.9).unwrap();

        assert!(matches!(
            pdb.query_probability(&q),
            Err(CoreError::NotHierarchical { .. })
        ));
        let fast = pdb.query_probability_with_rewriting(&q, 1_000_000).unwrap();
        let slow = pdb.query_probability_enumerated(&q, 20).unwrap();
        assert!(close(fast, slow), "rewritten {fast} vs enumerated {slow}");
    }

    #[test]
    fn negation_with_deterministic_relations() {
        // q2 with deterministic Stud/Course (the Section 4 example).
        let mut db = university();
        for name in ["Stud", "Course", "Adv"] {
            let rel = db.schema().id(name).unwrap();
            db.declare_exogenous_relation(rel).unwrap();
        }
        let q =
            cqshap_query::parse_cq("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')").unwrap();
        let pdb = with_varied_probs(db);
        let fast = pdb.query_probability_with_rewriting(&q, 1_000_000).unwrap();
        let slow = pdb.query_probability_enumerated(&q, 20).unwrap();
        assert!(close(fast, slow), "rewritten {fast} vs enumerated {slow}");
    }

    #[test]
    fn validation() {
        let mut pdb = ProbDatabase::new(university(), 0.5);
        let exo = pdb.database().find_fact("Stud", &["Adam"]).unwrap();
        assert!(pdb.set_prob(exo, 0.5).is_err());
        let ta = pdb.database().find_fact("TA", &["Adam"]).unwrap();
        assert!(pdb.set_prob(ta, 1.5).is_err());
        assert!(pdb.set_prob(ta, 0.25).is_ok());
        assert!(close(pdb.prob(ta), 0.25));
        assert!(close(pdb.prob(exo), 1.0));
    }

    #[test]
    fn vacuous_and_unsatisfiable_atoms() {
        let pdb = ProbDatabase::new(university(), 0.5);
        let q = cqshap_query::parse_cq("q() :- Ghost(x)").unwrap();
        assert!(close(pdb.query_probability(&q).unwrap(), 0.0));
        let q2 = cqshap_query::parse_cq("q() :- !Ghost('a')").unwrap();
        assert!(close(pdb.query_probability(&q2).unwrap(), 1.0));
    }
}
