//! Tuple-independent probabilistic databases (Section 4.3).
//!
//! Fink and Olteanu established that query evaluation over
//! tuple-independent databases is in PTIME for hierarchical CQ¬s and
//! `FP^{#P}`-complete otherwise. Theorem 4.10 of the paper extends this
//! with *deterministic relations* (probability-1 facts): evaluation is
//! polynomial exactly when the query has no non-hierarchical path, via
//! the same `ExoShap` rewriting used for Shapley values.
//!
//! Evaluation routes through [`cqshap_core::CompiledProbability`] — the
//! compiled engine's resolution/scope/component/root-group pipeline
//! instantiated at the probability domain — so probabilistic inference
//! and Shapley counting share one compiled structure. The crate's
//! original hand-rolled traversal survives only as the reference oracle
//! in [`lifted`]. Arithmetic is exact rational throughout; the `f64`
//! methods are thin conversion shims over the exact ones.
//!
//! This crate provides:
//!
//! * [`ProbDatabase`] — a [`Database`] whose endogenous facts carry
//!   marginal probabilities (exogenous facts are deterministic);
//! * [`ProbDatabase::query_probability`] /
//!   [`ProbDatabase::query_probability_exact`] — lifted inference for
//!   hierarchical self-join-free CQ¬s through the compiled engine;
//! * [`ProbDatabase::query_probability_with_rewriting`] — the Theorem
//!   4.10 pipeline: `ExoShap`-rewrite, then compiled inference;
//! * [`ProbDatabase::query_probability_enumerated`] — explicit
//!   possible-world enumeration, the ground truth for tests.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use cqshap_core::{
    exoshap, probability_by_enumeration, AnyQuery, CompiledProbability, CoreError,
    FactProbabilities,
};
use cqshap_db::{Database, FactId};
use cqshap_numeric::BigRational;
use cqshap_query::ConjunctiveQuery;

pub mod lifted;

/// A tuple-independent probabilistic database.
///
/// Endogenous facts of the wrapped [`Database`] are probabilistic;
/// exogenous facts (and hence all facts of declared exogenous relations)
/// are deterministic with probability 1. Probabilities are stored as
/// exact rationals — the `f64` accessors convert losslessly on the way
/// in ([`cqshap_numeric::BigRational::from_f64`] is exact for every
/// finite double) and round only on the way out.
#[derive(Debug, Clone)]
pub struct ProbDatabase {
    db: Database,
    /// Per-fact probabilities of the endogenous facts (exogenous facts
    /// never consult this — they are deterministic by provenance).
    probs: FactProbabilities,
}

impl ProbDatabase {
    /// Wraps `db`, giving every endogenous fact probability `default_p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= default_p <= 1.0`.
    pub fn new(db: Database, default_p: f64) -> Self {
        let default = BigRational::from_f64(default_p)
            .filter(FactProbabilities::is_valid)
            // cqshap-lint: allow(no-panic) -- documented panic: the constructor rejects out-of-range probabilities
            .expect("probability out of range");
        ProbDatabase {
            db,
            probs: FactProbabilities::uniform(default),
        }
    }

    /// Wraps `db` with explicit exact probabilities.
    pub fn with_probabilities(db: Database, probs: FactProbabilities) -> Self {
        ProbDatabase { db, probs }
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The exact per-fact probabilities (endogenous facts only — see
    /// [`ProbDatabase::prob`] for the provenance-aware view).
    pub fn probabilities(&self) -> &FactProbabilities {
        &self.probs
    }

    /// The probability of fact `f`, rounded to `f64`.
    pub fn prob(&self, f: FactId) -> f64 {
        self.prob_exact(f).to_f64()
    }

    /// The exact probability of fact `f` (1 for deterministic facts).
    pub fn prob_exact(&self, f: FactId) -> BigRational {
        if self.db.endo_index(f).is_some() {
            self.probs.get(f).clone()
        } else {
            BigRational::one()
        }
    }

    /// Sets the probability of an endogenous fact (exact dyadic
    /// conversion of `p`).
    ///
    /// # Errors
    /// [`CoreError::FactNotEndogenous`] for deterministic facts;
    /// [`CoreError::Unsupported`] for out-of-range probabilities.
    pub fn set_prob(&mut self, f: FactId, p: f64) -> Result<(), CoreError> {
        let exact = BigRational::from_f64(p).ok_or_else(|| {
            CoreError::Unsupported(format!("probability {p} is not a finite number"))
        })?;
        self.set_prob_exact(f, exact)
    }

    /// Sets the exact probability of an endogenous fact.
    ///
    /// # Errors
    /// As [`ProbDatabase::set_prob`].
    pub fn set_prob_exact(&mut self, f: FactId, p: BigRational) -> Result<(), CoreError> {
        if !FactProbabilities::is_valid(&p) {
            return Err(CoreError::Unsupported(format!(
                "probability {p} out of [0,1]"
            )));
        }
        if self.db.endo_index(f).is_none() {
            return Err(CoreError::FactNotEndogenous {
                fact: self.db.render_fact(f),
            });
        }
        self.probs.set(f, p);
        Ok(())
    }

    /// `Pr[D ⊨ q]` by lifted inference — polynomial time, for
    /// hierarchical self-join-free CQ¬s (Fink & Olteanu's tractable
    /// class, extended to CQ¬ exactly as in Lemma 3.2). Runs through the
    /// compiled engine shared with Shapley counting.
    ///
    /// # Errors
    /// [`CoreError::NotHierarchical`] / [`CoreError::NotSelfJoinFree`].
    pub fn query_probability(&self, q: &ConjunctiveQuery) -> Result<f64, CoreError> {
        Ok(self.query_probability_exact(q)?.to_f64())
    }

    /// [`ProbDatabase::query_probability`] in exact rational arithmetic.
    ///
    /// # Errors
    /// As [`ProbDatabase::query_probability`].
    pub fn query_probability_exact(&self, q: &ConjunctiveQuery) -> Result<BigRational, CoreError> {
        let engine = CompiledProbability::compile(&self.db, q, self.probs.clone())?;
        Ok(engine.probability().clone())
    }

    /// `Pr[D ⊨ q]` under Theorem 4.10: rewrite away the deterministic
    /// relations (`ExoShap`), then run compiled inference on the
    /// resulting hierarchical query. Applicable whenever `q` has no
    /// non-hierarchical path with respect to the declared exogenous
    /// (deterministic) relations.
    pub fn query_probability_with_rewriting(
        &self,
        q: &ConjunctiveQuery,
        tuple_budget: usize,
    ) -> Result<f64, CoreError> {
        Ok(self
            .query_probability_with_rewriting_exact(q, tuple_budget)?
            .to_f64())
    }

    /// [`ProbDatabase::query_probability_with_rewriting`] in exact
    /// rational arithmetic.
    ///
    /// # Errors
    /// As [`ProbDatabase::query_probability_with_rewriting`].
    pub fn query_probability_with_rewriting_exact(
        &self,
        q: &ConjunctiveQuery,
        tuple_budget: usize,
    ) -> Result<BigRational, CoreError> {
        let outcome = exoshap::rewrite(&self.db, q, tuple_budget)?;
        if outcome.always_false {
            return Ok(BigRational::zero());
        }
        // Fact ids are preserved by the rewriting, and every fresh fact
        // is exogenous (deterministic), so the probability assignment
        // carries over unchanged: the endogenous set is the same.
        let engine = CompiledProbability::compile(&outcome.db, &outcome.query, self.probs.clone())?;
        Ok(engine.probability().clone())
    }

    /// `Pr[D ⊨ q]` by explicit possible-world enumeration over the
    /// probabilistic facts — exponential; the ground truth for tests.
    ///
    /// # Errors
    /// [`CoreError::TooManyEndogenousFacts`] when more than `limit`
    /// facts are probabilistic.
    pub fn query_probability_enumerated(
        &self,
        q: &ConjunctiveQuery,
        limit: usize,
    ) -> Result<f64, CoreError> {
        Ok(self.query_probability_enumerated_exact(q, limit)?.to_f64())
    }

    /// [`ProbDatabase::query_probability_enumerated`] in exact rational
    /// arithmetic.
    ///
    /// # Errors
    /// As [`ProbDatabase::query_probability_enumerated`].
    pub fn query_probability_enumerated_exact(
        &self,
        q: &ConjunctiveQuery,
        limit: usize,
    ) -> Result<BigRational, CoreError> {
        probability_by_enumeration(&self.db, AnyQuery::Cq(q), &self.probs, None, limit)
    }
}

/// Convenience: deterministic-relation names of the wrapped database.
pub fn deterministic_relations(pdb: &ProbDatabase) -> Vec<String> {
    pdb.database().exogenous_relation_names()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    fn university() -> Database {
        Database::parse(
            "exo Stud(Adam)\nexo Stud(Ben)\nexo Stud(Caroline)\nexo Stud(David)\n\
             endo TA(Adam)\nendo TA(Ben)\nendo TA(David)\n\
             exo Course(OS, EE)\nexo Course(IC, EE)\nexo Course(DB, CS)\nexo Course(AI, CS)\n\
             endo Reg(Adam, OS)\nendo Reg(Adam, AI)\nendo Reg(Ben, OS)\n\
             endo Reg(Caroline, DB)\nendo Reg(Caroline, IC)\n\
             exo Adv(Michael, Adam)\nexo Adv(Michael, Ben)\nexo Adv(Naomi, Caroline)\n\
             exo Adv(Michael, David)\n",
        )
        .unwrap()
    }

    fn with_varied_probs(db: Database) -> ProbDatabase {
        let mut pdb = ProbDatabase::new(db, 0.5);
        // Deterministic-ish spread of probabilities.
        let endo: Vec<FactId> = pdb.database().endo_facts().to_vec();
        for (i, f) in endo.into_iter().enumerate() {
            let p = [0.1, 0.3, 0.5, 0.7, 0.9, 0.25, 0.75, 0.6][i % 8];
            pdb.set_prob(f, p).unwrap();
        }
        pdb
    }

    #[test]
    fn lifted_matches_enumeration_on_running_example() {
        let pdb = with_varied_probs(university());
        for text in [
            "q() :- Stud(x), !TA(x), Reg(x, y)",
            "q() :- Reg(x, y)",
            "q() :- TA(x), Reg(x, y)",
            "q() :- Stud(x), !TA(x)",
            "q() :- Reg(x, 'OS'), !TA(x)",
            "q() :- TA(x), Course(y, 'CS')",
        ] {
            let q = cqshap_query::parse_cq(text).unwrap();
            // Unified path ≡ enumeration ≡ seed oracle, bit-identically.
            let fast = pdb.query_probability_exact(&q).unwrap();
            let slow = pdb.query_probability_enumerated_exact(&q, 20).unwrap();
            assert_eq!(fast, slow, "{text}: unified vs enumerated");
            let oracle =
                lifted::oracle_probability(pdb.database(), pdb.probabilities(), &q).unwrap();
            assert_eq!(fast, oracle, "{text}: unified vs seed oracle");
        }
    }

    #[test]
    fn extreme_probabilities() {
        let mut pdb = ProbDatabase::new(university(), 0.5);
        let ta = pdb.database().find_fact("TA", &["Adam"]).unwrap();
        pdb.set_prob(ta, 0.0).unwrap();
        let reg = pdb
            .database()
            .find_fact("Reg", &["Caroline", "DB"])
            .unwrap();
        pdb.set_prob(reg, 1.0).unwrap();
        let q = cqshap_query::parse_cq("q() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        // Reg(Caroline, DB) certain and Caroline is never a TA → P = 1.
        assert!(close(pdb.query_probability(&q).unwrap(), 1.0));
        let q2 = cqshap_query::parse_cq("q() :- TA(x), Reg(x, 'AI')").unwrap();
        let fast = pdb.query_probability_exact(&q2).unwrap();
        let slow = pdb.query_probability_enumerated_exact(&q2, 20).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn theorem_4_10_rewriting() {
        // Example 4.1's query with deterministic Pub and Citations: not
        // hierarchical, but evaluable after rewriting.
        let db = Database::parse(
            "exorel Pub\nexorel Citations\n\
             endo Author(alice, i1)\nendo Author(bob, i2)\nendo Author(carol, i1)\n\
             exo Pub(alice, p1)\nexo Pub(alice, p2)\nexo Pub(bob, p3)\nexo Pub(carol, p4)\n\
             exo Citations(p1, c10)\nexo Citations(p3, c5)\nexo Citations(p4, c2)\n",
        )
        .unwrap();
        let q = cqshap_query::parse_cq("q() :- Author(x, y), Pub(x, z), Citations(z, w)").unwrap();
        let mut pdb = ProbDatabase::new(db, 0.5);
        let alice = pdb
            .database()
            .find_fact("Author", &["alice", "i1"])
            .unwrap();
        pdb.set_prob(alice, 0.9).unwrap();

        assert!(matches!(
            pdb.query_probability(&q),
            Err(CoreError::NotHierarchical { .. })
        ));
        let fast = pdb.query_probability_with_rewriting(&q, 1_000_000).unwrap();
        let slow = pdb.query_probability_enumerated(&q, 20).unwrap();
        assert!(close(fast, slow), "rewritten {fast} vs enumerated {slow}");
    }

    #[test]
    fn negation_with_deterministic_relations() {
        // q2 with deterministic Stud/Course (the Section 4 example).
        let mut db = university();
        for name in ["Stud", "Course", "Adv"] {
            let rel = db.schema().id(name).unwrap();
            db.declare_exogenous_relation(rel).unwrap();
        }
        let q =
            cqshap_query::parse_cq("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')").unwrap();
        let pdb = with_varied_probs(db);
        let fast = pdb.query_probability_with_rewriting(&q, 1_000_000).unwrap();
        let slow = pdb.query_probability_enumerated(&q, 20).unwrap();
        assert!(close(fast, slow), "rewritten {fast} vs enumerated {slow}");
    }

    #[test]
    fn validation() {
        let mut pdb = ProbDatabase::new(university(), 0.5);
        let exo = pdb.database().find_fact("Stud", &["Adam"]).unwrap();
        assert!(pdb.set_prob(exo, 0.5).is_err());
        let ta = pdb.database().find_fact("TA", &["Adam"]).unwrap();
        assert!(pdb.set_prob(ta, 1.5).is_err());
        assert!(pdb.set_prob(ta, 0.25).is_ok());
        assert!(close(pdb.prob(ta), 0.25));
        assert!(close(pdb.prob(exo), 1.0));
        // f64 probabilities convert exactly: 0.25 is dyadic.
        assert_eq!(pdb.prob_exact(ta), BigRational::from_i64_ratio(1, 4));
    }

    #[test]
    fn vacuous_and_unsatisfiable_atoms() {
        let pdb = ProbDatabase::new(university(), 0.5);
        let q = cqshap_query::parse_cq("q() :- Ghost(x)").unwrap();
        assert!(close(pdb.query_probability(&q).unwrap(), 0.0));
        let q2 = cqshap_query::parse_cq("q() :- !Ghost('a')").unwrap();
        assert!(close(pdb.query_probability(&q2).unwrap(), 1.0));
        // The seed oracle agrees on the degenerate shapes too.
        for text in ["q() :- Ghost(x)", "q() :- !Ghost('a')"] {
            let q = cqshap_query::parse_cq(text).unwrap();
            assert_eq!(
                pdb.query_probability_exact(&q).unwrap(),
                lifted::oracle_probability(pdb.database(), pdb.probabilities(), &q).unwrap(),
            );
        }
    }
}
