//! The seed lifted-inference traversal, retained as a reference oracle.
//!
//! Production evaluation routes through
//! [`cqshap_core::CompiledProbability`] — the compiled
//! resolution/scope/component/root-group pipeline instantiated at the
//! probability domain — so this module no longer backs
//! [`crate::ProbDatabase::query_probability`]. It survives as an
//! *independent implementation of the same recursion* (`CntSat` with
//! probabilities in place of counts: component probabilities multiply,
//! the disjunction over root values becomes `1 − Π (1 − P_c)`), used by
//! the proptests to pin the unified path and by the bench harness as the
//! uncompiled baseline. Arithmetic is exact [`BigRational`], so oracle
//! comparisons are bit-identical, not epsilon-close.
// cqshap-lint: allow-file(no-panic-index) -- lifted inference indexes per-atom tables sized at build

use cqshap_core::{CoreError, FactProbabilities};
use cqshap_db::{ConstId, Database, FactId};
use cqshap_numeric::BigRational;
use cqshap_query::{has_self_join, is_hierarchical, ConjunctiveQuery, Term};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LiftedTerm {
    Var(u32),
    Const(ConstId),
}

#[derive(Debug, Clone)]
pub(crate) struct LiftedAtom {
    pub(crate) negated: bool,
    pub(crate) terms: Vec<LiftedTerm>,
}

impl LiftedAtom {
    pub(crate) fn matches(&self, values: &[ConstId]) -> bool {
        let mut bound: Vec<(u32, ConstId)> = Vec::new();
        for (t, &val) in self.terms.iter().zip(values) {
            match t {
                LiftedTerm::Const(c) => {
                    if *c != val {
                        return false;
                    }
                }
                LiftedTerm::Var(v) => match bound.iter().find(|(bv, _)| bv == v) {
                    Some((_, bval)) => {
                        if *bval != val {
                            return false;
                        }
                    }
                    None => bound.push((*v, val)),
                },
            }
        }
        true
    }

    fn has_vars(&self) -> bool {
        self.terms.iter().any(|t| matches!(t, LiftedTerm::Var(_)))
    }

    fn vars(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .terms
            .iter()
            .filter_map(|t| match t {
                LiftedTerm::Var(v) => Some(*v),
                LiftedTerm::Const(_) => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn value_of(&self, v: u32, values: &[ConstId]) -> ConstId {
        for (t, &val) in self.terms.iter().zip(values) {
            if *t == LiftedTerm::Var(v) {
                return val;
            }
        }
        // cqshap-lint: allow(no-panic) -- callers scan variables collected from this atom's own terms
        unreachable!("variable does not occur in atom");
    }

    fn substitute(&self, v: u32, c: ConstId) -> LiftedAtom {
        LiftedAtom {
            negated: self.negated,
            terms: self
                .terms
                .iter()
                .map(|t| {
                    if *t == LiftedTerm::Var(v) {
                        LiftedTerm::Const(c)
                    } else {
                        *t
                    }
                })
                .collect(),
        }
    }
}

/// `Pr[D ⊨ q]` by the seed traversal: atom resolution against the
/// database, then the uncompiled lifted-inference recursion. Exogenous
/// facts are deterministic; endogenous facts draw from `probs`.
///
/// # Errors
/// [`CoreError::NotSelfJoinFree`] / [`CoreError::NotHierarchical`] when
/// the structural preconditions fail, exactly like the compiled path.
pub fn oracle_probability(
    db: &Database,
    probs: &FactProbabilities,
    q: &ConjunctiveQuery,
) -> Result<BigRational, CoreError> {
    if has_self_join(q) {
        return Err(CoreError::NotSelfJoinFree {
            query: q.to_string(),
        });
    }
    if !is_hierarchical(q) {
        return Err(CoreError::NotHierarchical {
            query: q.to_string(),
        });
    }
    let mut atoms: Vec<LiftedAtom> = Vec::new();
    let mut scopes: Vec<Vec<FactId>> = Vec::new();
    for atom in q.atoms() {
        let rel = db.schema().id(&atom.relation);
        let mut unknown = false;
        let terms: Vec<LiftedTerm> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => LiftedTerm::Var(v.0),
                Term::Const(name) => match db.interner().get(name) {
                    Some(c) => LiftedTerm::Const(c),
                    None => {
                        unknown = true;
                        LiftedTerm::Var(u32::MAX)
                    }
                },
            })
            .collect();
        if rel.is_none() || unknown {
            if atom.negated {
                continue; // the negated fact can never exist
            }
            return Ok(BigRational::zero()); // unsatisfiable positive atom
        }
        let a = LiftedAtom {
            negated: atom.negated,
            terms,
        };
        // cqshap-lint: allow(no-panic) -- the guard above returns early unless a relation matched
        let rel = rel.expect("checked");
        let scope: Vec<FactId> = db
            .relation_facts(rel)
            .iter()
            .copied()
            .filter(|&f| a.matches(db.fact(f).tuple.values()))
            .collect();
        atoms.push(a);
        scopes.push(scope);
    }
    if atoms.is_empty() {
        return Ok(BigRational::one()); // all atoms were vacuous negations
    }
    // Dense per-fact presence probabilities (deterministic facts at 1).
    let dense: Vec<BigRational> = db
        .fact_ids()
        .map(|f| {
            if db.endo_index(f).is_some() {
                probs.get(f).clone()
            } else {
                BigRational::one()
            }
        })
        .collect();
    Ok(probability(db, &dense, &atoms, &scopes))
}

/// `Pr[q satisfied]` for pattern-filtered scopes (every fact in
/// `scopes[i]` matches `atoms[i]`).
fn probability(
    db: &Database,
    probs: &[BigRational],
    atoms: &[LiftedAtom],
    scopes: &[Vec<FactId>],
) -> BigRational {
    // Ground base case.
    if atoms.iter().all(|a| !a.has_vars()) {
        let mut p = BigRational::one();
        for (atom, scope) in atoms.iter().zip(scopes) {
            debug_assert!(scope.len() <= 1);
            let present = scope
                .first()
                .map_or(BigRational::zero(), |&f| probs[f.index()].clone());
            let factor = if atom.negated {
                BigRational::one() - &present
            } else {
                present
            };
            p = p * &factor;
            if p.is_zero() {
                return p;
            }
        }
        return p;
    }

    // Disconnected components multiply.
    let comps = components(atoms);
    if comps.len() > 1 {
        let mut p = BigRational::one();
        for comp in comps {
            let sub_atoms: Vec<LiftedAtom> = comp.iter().map(|&i| atoms[i].clone()).collect();
            let sub_scopes: Vec<Vec<FactId>> = comp.iter().map(|&i| scopes[i].clone()).collect();
            p = p * &probability(db, probs, &sub_atoms, &sub_scopes);
            if p.is_zero() {
                return p;
            }
        }
        return p;
    }

    // Connected with variables: decompose over the root variable.
    // cqshap-lint: allow(no-panic) -- hierarchical connected sub-queries always expose a root variable
    let root = find_root(atoms).expect("hierarchical connected sub-query has a root variable");
    let mut candidates: Option<Vec<ConstId>> = None;
    for (atom, scope) in atoms.iter().zip(scopes) {
        if atom.negated {
            continue;
        }
        let mut vals: Vec<ConstId> = scope
            .iter()
            .map(|&f| atom.value_of(root, db.fact(f).tuple.values()))
            .collect();
        vals.sort_unstable();
        vals.dedup();
        candidates = Some(match candidates {
            None => vals,
            Some(prev) => prev
                .into_iter()
                .filter(|c| vals.binary_search(c).is_ok())
                .collect(),
        });
    }
    // cqshap-lint: allow(no-panic) -- a connected sub-query contains at least one positive atom
    let candidates = candidates.expect("connected sub-query has a positive atom");
    let mut p_unsat = BigRational::one();
    for c in candidates {
        let sub_atoms: Vec<LiftedAtom> = atoms.iter().map(|a| a.substitute(root, c)).collect();
        let sub_scopes: Vec<Vec<FactId>> = atoms
            .iter()
            .zip(scopes)
            .map(|(atom, scope)| {
                scope
                    .iter()
                    .copied()
                    .filter(|&f| atom.value_of(root, db.fact(f).tuple.values()) == c)
                    .collect()
            })
            .collect();
        let p_c = probability(db, probs, &sub_atoms, &sub_scopes);
        p_unsat = p_unsat * &(BigRational::one() - &p_c);
        if p_unsat.is_zero() {
            return BigRational::one();
        }
    }
    BigRational::one() - &p_unsat
}

fn components(atoms: &[LiftedAtom]) -> Vec<Vec<usize>> {
    let n = atoms.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, a: usize) -> usize {
        if parent[a] == a {
            a
        } else {
            let r = find(parent, parent[a]);
            parent[a] = r;
            r
        }
    }
    for i in 0..n {
        for j in i + 1..n {
            let vi = atoms[i].vars();
            if atoms[j].vars().iter().any(|v| vi.binary_search(v).is_ok()) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut out: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in 0..n {
        let r = find(&mut parent, i);
        out.entry(r).or_default().push(i);
    }
    out.into_values().collect()
}

fn find_root(atoms: &[LiftedAtom]) -> Option<u32> {
    let first = atoms.first()?.vars();
    first
        .into_iter()
        .find(|v| atoms.iter().all(|a| a.vars().binary_search(v).is_ok()))
}
