//! Lifted inference for hierarchical self-join-free CQ¬s.
//!
//! The recursion mirrors `CntSat` (Lemma 3.2), with probabilities in
//! place of counts: independence of tuple events makes component
//! probabilities multiply, and the disjunction over root-variable values
//! becomes `1 − Π (1 − P_c)` over disjoint fact groups.

use cqshap_db::{ConstId, Database, FactId};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LiftedTerm {
    Var(u32),
    Const(ConstId),
}

#[derive(Debug, Clone)]
pub(crate) struct LiftedAtom {
    pub(crate) negated: bool,
    pub(crate) terms: Vec<LiftedTerm>,
}

impl LiftedAtom {
    pub(crate) fn matches(&self, values: &[ConstId]) -> bool {
        let mut bound: Vec<(u32, ConstId)> = Vec::new();
        for (t, &val) in self.terms.iter().zip(values) {
            match t {
                LiftedTerm::Const(c) => {
                    if *c != val {
                        return false;
                    }
                }
                LiftedTerm::Var(v) => match bound.iter().find(|(bv, _)| bv == v) {
                    Some((_, bval)) => {
                        if *bval != val {
                            return false;
                        }
                    }
                    None => bound.push((*v, val)),
                },
            }
        }
        true
    }

    fn has_vars(&self) -> bool {
        self.terms.iter().any(|t| matches!(t, LiftedTerm::Var(_)))
    }

    fn vars(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .terms
            .iter()
            .filter_map(|t| match t {
                LiftedTerm::Var(v) => Some(*v),
                LiftedTerm::Const(_) => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn value_of(&self, v: u32, values: &[ConstId]) -> ConstId {
        for (t, &val) in self.terms.iter().zip(values) {
            if *t == LiftedTerm::Var(v) {
                return val;
            }
        }
        unreachable!("variable does not occur in atom");
    }

    fn substitute(&self, v: u32, c: ConstId) -> LiftedAtom {
        LiftedAtom {
            negated: self.negated,
            terms: self
                .terms
                .iter()
                .map(|t| {
                    if *t == LiftedTerm::Var(v) {
                        LiftedTerm::Const(c)
                    } else {
                        *t
                    }
                })
                .collect(),
        }
    }
}

/// `Pr[q satisfied]` for pattern-filtered scopes (every fact in
/// `scopes[i]` matches `atoms[i]`).
pub(crate) fn probability(
    db: &Database,
    probs: &[f64],
    atoms: &[LiftedAtom],
    scopes: &[Vec<FactId>],
) -> f64 {
    // Ground base case.
    if atoms.iter().all(|a| !a.has_vars()) {
        let mut p = 1.0f64;
        for (atom, scope) in atoms.iter().zip(scopes) {
            debug_assert!(scope.len() <= 1);
            let present = scope.first().map_or(0.0, |&f| probs[f.index()]);
            p *= if atom.negated { 1.0 - present } else { present };
            if p == 0.0 {
                return 0.0;
            }
        }
        return p;
    }

    // Disconnected components multiply.
    let comps = components(atoms);
    if comps.len() > 1 {
        let mut p = 1.0f64;
        for comp in comps {
            let sub_atoms: Vec<LiftedAtom> = comp.iter().map(|&i| atoms[i].clone()).collect();
            let sub_scopes: Vec<Vec<FactId>> = comp.iter().map(|&i| scopes[i].clone()).collect();
            p *= probability(db, probs, &sub_atoms, &sub_scopes);
            if p == 0.0 {
                return 0.0;
            }
        }
        return p;
    }

    // Connected with variables: decompose over the root variable.
    let root = find_root(atoms).expect("hierarchical connected sub-query has a root variable");
    let mut candidates: Option<Vec<ConstId>> = None;
    for (atom, scope) in atoms.iter().zip(scopes) {
        if atom.negated {
            continue;
        }
        let mut vals: Vec<ConstId> = scope
            .iter()
            .map(|&f| atom.value_of(root, db.fact(f).tuple.values()))
            .collect();
        vals.sort_unstable();
        vals.dedup();
        candidates = Some(match candidates {
            None => vals,
            Some(prev) => prev
                .into_iter()
                .filter(|c| vals.binary_search(c).is_ok())
                .collect(),
        });
    }
    let candidates = candidates.expect("connected sub-query has a positive atom");
    let mut p_unsat = 1.0f64;
    for c in candidates {
        let sub_atoms: Vec<LiftedAtom> = atoms.iter().map(|a| a.substitute(root, c)).collect();
        let sub_scopes: Vec<Vec<FactId>> = atoms
            .iter()
            .zip(scopes)
            .map(|(atom, scope)| {
                scope
                    .iter()
                    .copied()
                    .filter(|&f| atom.value_of(root, db.fact(f).tuple.values()) == c)
                    .collect()
            })
            .collect();
        let p_c = probability(db, probs, &sub_atoms, &sub_scopes);
        p_unsat *= 1.0 - p_c;
        if p_unsat == 0.0 {
            return 1.0;
        }
    }
    1.0 - p_unsat
}

fn components(atoms: &[LiftedAtom]) -> Vec<Vec<usize>> {
    let n = atoms.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, a: usize) -> usize {
        if parent[a] == a {
            a
        } else {
            let r = find(parent, parent[a]);
            parent[a] = r;
            r
        }
    }
    for i in 0..n {
        for j in i + 1..n {
            let vi = atoms[i].vars();
            if atoms[j].vars().iter().any(|v| vi.binary_search(v).is_ok()) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut out: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in 0..n {
        let r = find(&mut parent, i);
        out.entry(r).or_default().push(i);
    }
    out.into_values().collect()
}

fn find_root(atoms: &[LiftedAtom]) -> Option<u32> {
    let first = atoms.first()?.vars();
    first
        .into_iter()
        .find(|v| atoms.iter().all(|a| a.vars().binary_search(v).is_ok()))
}
