//! Shapley-preserving hardness embeddings.
//!
//! The hardness sides of both dichotomies transfer hardness from the
//! four basic queries (`q_RST`, `q_¬RS¬T`, `q_R¬ST`, `q_RS¬T`) to
//! arbitrary queries by *embedding* an instance of the basic query into
//! an instance of the target query, preserving every fact's Shapley
//! value:
//!
//! * [`embed_triplet`] — Lemma B.4: the target's non-hierarchical
//!   triplet `(αx, αx,y, αy)` plays `(R, S, T)`; every other variable is
//!   pinned to the constant `⊙`.
//! * [`embed_path`] — Appendix C (Theorem 4.3's hardness side): the
//!   target's non-hierarchical *path* carries the `S(a,b)` connection as
//!   a pair constant `⟨a,b⟩`; relations of negated atoms are then
//!   complemented over the active domain.
//!
//! Instances are assumed to be shaped like the hardness proofs' inputs:
//! `S` fully exogenous, every `S(a,b)` supported by `R(a)` and `T(b)`,
//! and disjoint `R`/`T` domains ([`base_instance_is_admissible`]).

use std::collections::HashMap;

use cqshap_core::CoreError;
use cqshap_db::{Database, FactId, Provenance, Tuple};
use cqshap_query::{
    non_hierarchical_path, parse_cq, preferred_triplet, Atom, ConjunctiveQuery, Term,
    TripletVariant, Var,
};

/// The basic hard query a [`TripletVariant`] reduces from.
pub fn base_query(variant: TripletVariant) -> ConjunctiveQuery {
    let text = match variant {
        TripletVariant::Rst => "qRST() :- R(x), S(x, y), T(y)",
        TripletVariant::NegRSNegT => "qnRSnT() :- !R(x), S(x, y), !T(y)",
        TripletVariant::RNegST => "qRnST() :- R(x), !S(x, y), T(y)",
        TripletVariant::RSNegT => "qRSnT() :- R(x), S(x, y), !T(y)",
    };
    parse_cq(text).expect("static query parses")
}

/// An embedded instance: the target database plus the fact
/// correspondence for endogenous facts.
#[derive(Debug, Clone)]
pub struct EmbeddedInstance {
    /// The database for the target query.
    pub db: Database,
    /// Base endogenous fact → embedded endogenous fact.
    pub fact_map: HashMap<FactId, FactId>,
    /// The basic query the base instance is over.
    pub base: ConjunctiveQuery,
}

/// Checks the hardness-instance shape: relations `R/1`, `S/2`, `T/1`;
/// `S` exogenous; `R(a)`, `T(b)` present for every `S(a,b)`; disjoint
/// `R`/`T` domains.
pub fn base_instance_is_admissible(db: &Database) -> bool {
    let (Some(r), Some(s), Some(t)) = (
        db.schema().id("R"),
        db.schema().id("S"),
        db.schema().id("T"),
    ) else {
        return false;
    };
    if db.schema().arity(r) != 1 || db.schema().arity(s) != 2 || db.schema().arity(t) != 1 {
        return false;
    }
    let r_dom: Vec<_> = db
        .relation_facts(r)
        .iter()
        .map(|&f| db.fact(f).tuple[0])
        .collect();
    let t_dom: Vec<_> = db
        .relation_facts(t)
        .iter()
        .map(|&f| db.fact(f).tuple[0])
        .collect();
    if r_dom.iter().any(|c| t_dom.contains(c)) {
        return false;
    }
    db.relation_facts(s).iter().all(|&f| {
        let fact = db.fact(f);
        !fact.provenance.is_endogenous()
            && r_dom.contains(&fact.tuple[0])
            && t_dom.contains(&fact.tuple[1])
    })
}

fn insert_dedup(
    db: &mut Database,
    rel: cqshap_db::RelId,
    tuple: Tuple,
    provenance: Provenance,
) -> Result<Option<FactId>, CoreError> {
    match db.insert_tuple(rel, tuple, provenance) {
        Ok(f) => Ok(Some(f)),
        Err(cqshap_db::DbError::DuplicateFact { .. }) => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// Maps an atom's terms under `x → a, y → b, path vars → pair, others
/// → ⊙`; `pair` is `None` outside the path construction.
#[allow(clippy::too_many_arguments)] // a grounding context, passed flat on purpose
fn image_tuple(
    db: &mut Database,
    atom: &Atom,
    var_x: Var,
    a: &str,
    var_y: Var,
    b: &str,
    path_vars: &[Var],
    pair: Option<&str>,
) -> Tuple {
    let vals: Vec<cqshap_db::ConstId> = atom
        .terms
        .iter()
        .map(|term| match term {
            Term::Const(c) => db.intern(c),
            Term::Var(v) if *v == var_x => db.intern(a),
            Term::Var(v) if *v == var_y => db.intern(b),
            Term::Var(v) if path_vars.contains(v) => {
                db.intern(pair.expect("path construction supplies pair constants"))
            }
            Term::Var(_) => db.intern("⊙"),
        })
        .collect();
    Tuple::from(vals)
}

/// Lemma B.4: embeds a base instance of the triplet's basic query into
/// an instance of the non-hierarchical target `q`, preserving Shapley
/// values of all (mapped) endogenous facts.
///
/// # Errors
/// [`CoreError::Unsupported`] when `q` is hierarchical or the base
/// instance is not admissible.
pub fn embed_triplet(q: &ConjunctiveQuery, base: &Database) -> Result<EmbeddedInstance, CoreError> {
    let (triplet, variant) = preferred_triplet(q)
        .ok_or_else(|| CoreError::Unsupported(format!("{q} is hierarchical")))?;
    if !base_instance_is_admissible(base) {
        return Err(CoreError::Unsupported(
            "base instance is not admissible".into(),
        ));
    }
    let mut db = Database::new();
    for atom in q.atoms() {
        db.add_relation(&atom.relation, atom.terms.len())?;
    }
    let mut fact_map = HashMap::new();
    let (r, s, t) = (
        base.schema().id("R").expect("admissible"),
        base.schema().id("S").expect("admissible"),
        base.schema().id("T").expect("admissible"),
    );
    let atom_x = &q.atoms()[triplet.atom_x];
    let atom_y = &q.atoms()[triplet.atom_y];
    let (vx, vy) = (triplet.var_x, triplet.var_y);

    // R(a) facts → images under αx; T(b) facts → images under αy.
    for (base_rel, atom) in [(r, atom_x), (t, atom_y)] {
        let target_rel = db.schema().id(&atom.relation).expect("registered");
        for &bf in base.relation_facts(base_rel) {
            let fact = base.fact(bf);
            let name = base.interner().resolve(fact.tuple[0]).to_string();
            let tuple = image_tuple(&mut db, atom, vx, &name, vy, &name, &[], None);
            if let Some(new) = insert_dedup(&mut db, target_rel, tuple, fact.provenance)? {
                if fact.provenance.is_endogenous() {
                    fact_map.insert(bf, new);
                }
            }
        }
    }

    // S(a,b) facts → exogenous images under αx,y and under every other
    // positive atom.
    for &bf in base.relation_facts(s) {
        let fact = base.fact(bf);
        let a = base.interner().resolve(fact.tuple[0]).to_string();
        let b = base.interner().resolve(fact.tuple[1]).to_string();
        for (i, atom) in q.atoms().iter().enumerate() {
            if i == triplet.atom_x || i == triplet.atom_y {
                continue;
            }
            if i != triplet.atom_xy && atom.negated {
                continue; // other negated relations stay empty
            }
            let target_rel = db.schema().id(&atom.relation).expect("registered");
            let tuple = image_tuple(&mut db, atom, vx, &a, vy, &b, &[], None);
            insert_dedup(&mut db, target_rel, tuple, Provenance::Exogenous)?;
        }
    }
    Ok(EmbeddedInstance {
        db,
        fact_map,
        base: base_query(variant),
    })
}

/// Appendix C: embeds a base instance along a non-hierarchical *path*
/// of `q` with respect to the exogenous relations `exo`, preserving
/// Shapley values. The base query is determined by the polarities of the
/// path-inducing atoms: both positive → `q_RST`; both negative →
/// `q_¬RS¬T`; mixed → `q_RS¬T`.
///
/// # Errors
/// [`CoreError::Unsupported`] when `q` has no non-hierarchical path, the
/// base is inadmissible, or a complement materialization exceeds
/// `tuple_budget`.
pub fn embed_path(
    q: &ConjunctiveQuery,
    exo: &std::collections::HashSet<String>,
    base: &Database,
    tuple_budget: usize,
) -> Result<EmbeddedInstance, CoreError> {
    let path = non_hierarchical_path(q, exo).ok_or_else(|| {
        CoreError::Unsupported(format!(
            "{q} has no non-hierarchical path w.r.t. the given X"
        ))
    })?;
    if !base_instance_is_admissible(base) {
        return Err(CoreError::Unsupported(
            "base instance is not admissible".into(),
        ));
    }
    // Orient so that a negated endpoint plays T when the other is
    // positive (the q_RS¬T case).
    let (mut ax, mut ay, mut vx, mut vy) = (path.atom_x, path.atom_y, path.var_x, path.var_y);
    let (nx, ny) = (q.atoms()[ax].negated, q.atoms()[ay].negated);
    if nx && !ny {
        std::mem::swap(&mut ax, &mut ay);
        std::mem::swap(&mut vx, &mut vy);
    }
    let variant = match (q.atoms()[ax].negated, q.atoms()[ay].negated) {
        (false, false) => TripletVariant::Rst,
        (true, true) => TripletVariant::NegRSNegT,
        (false, true) => TripletVariant::RSNegT,
        (true, false) => unreachable!("orientation fixed above"),
    };
    let inner: Vec<Var> = path
        .path
        .iter()
        .copied()
        .filter(|v| *v != path.var_x && *v != path.var_y)
        .collect();

    // ---- D′ ----
    let mut db = Database::new();
    for atom in q.atoms() {
        db.add_relation(&atom.relation, atom.terms.len())?;
    }
    let mut fact_map = HashMap::new();
    let (r, s, t) = (
        base.schema().id("R").expect("admissible"),
        base.schema().id("S").expect("admissible"),
        base.schema().id("T").expect("admissible"),
    );
    for (base_rel, atom_idx) in [(r, ax), (t, ay)] {
        let atom = &q.atoms()[atom_idx];
        let target_rel = db.schema().id(&atom.relation).expect("registered");
        for &bf in base.relation_facts(base_rel) {
            let fact = base.fact(bf);
            let name = base.interner().resolve(fact.tuple[0]).to_string();
            let tuple = image_tuple(&mut db, atom, vx, &name, vy, &name, &[], None);
            if let Some(new) = insert_dedup(&mut db, target_rel, tuple, fact.provenance)? {
                if fact.provenance.is_endogenous() {
                    fact_map.insert(bf, new);
                }
            }
        }
    }
    for &bf in base.relation_facts(s) {
        let fact = base.fact(bf);
        let a = base.interner().resolve(fact.tuple[0]).to_string();
        let b = base.interner().resolve(fact.tuple[1]).to_string();
        let pair = format!("⟨{a},{b}⟩");
        for (i, atom) in q.atoms().iter().enumerate() {
            if i == ax || i == ay {
                continue;
            }
            let target_rel = db.schema().id(&atom.relation).expect("registered");
            let tuple = image_tuple(&mut db, atom, vx, &a, vy, &b, &inner, Some(&pair));
            insert_dedup(&mut db, target_rel, tuple, Provenance::Exogenous)?;
        }
    }

    // ---- D″: relations of negated atoms are *replaced* by their
    // complement over the domain of D′ (endogenous facts are copied
    // unchanged; exogenous facts of negated relations are dropped). ----
    let negated_rels: std::collections::HashSet<cqshap_db::RelId> = q
        .atoms()
        .iter()
        .filter(|a| a.negated)
        .map(|a| db.schema().id(&a.relation).expect("registered"))
        .collect();
    // A negated endpoint atom must carry only endogenous facts — this is
    // the shape of all the hardness-proof instances; an exogenous
    // endpoint fact would be erased by the complementation.
    for (atom_idx, base_rel) in [(ax, r), (ay, t)] {
        if q.atoms()[atom_idx].negated {
            let all_endo = base
                .relation_facts(base_rel)
                .iter()
                .all(|&f| base.fact(f).provenance.is_endogenous());
            if !all_endo {
                return Err(CoreError::Unsupported(
                    "a negated path endpoint requires an all-endogenous base relation".into(),
                ));
            }
        }
    }
    let domain = db.active_domain();
    let mut complements: Vec<(cqshap_db::RelId, Vec<Tuple>)> = Vec::new();
    for &rel in &negated_rels {
        complements.push((
            rel,
            cqshap_db::complement::complement_tuples(&db, rel, &domain, tuple_budget)?,
        ));
    }
    let mut out = Database::new();
    for atom in q.atoms() {
        out.add_relation(&atom.relation, atom.terms.len())?;
    }
    let mut out_map = HashMap::new();
    for fid in db.fact_ids() {
        let fact = db.fact(fid);
        if !fact.provenance.is_endogenous() && negated_rels.contains(&fact.rel) {
            continue; // replaced by the complement
        }
        // Re-intern tuple constants into the fresh database.
        let tuple: Vec<cqshap_db::ConstId> = fact
            .tuple
            .values()
            .iter()
            .map(|&c| out.intern(db.interner().resolve(c)))
            .collect();
        let rel = out
            .schema()
            .id(db.schema().name(fact.rel))
            .expect("registered");
        let new = out.insert_tuple(rel, Tuple::from(tuple), fact.provenance)?;
        out_map.insert(fid, new);
    }
    for (rel, tuples) in complements {
        let out_rel = out.schema().id(db.schema().name(rel)).expect("registered");
        for tuple in tuples {
            let re_interned: Vec<cqshap_db::ConstId> = tuple
                .values()
                .iter()
                .map(|&c| out.intern(db.interner().resolve(c)))
                .collect();
            out.insert_tuple(out_rel, Tuple::from(re_interned), Provenance::Exogenous)?;
        }
    }
    let fact_map = fact_map
        .into_iter()
        .map(|(base_f, d1_f)| (base_f, out_map[&d1_f]))
        .collect();
    Ok(EmbeddedInstance {
        db: out,
        fact_map,
        base: base_query(variant),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqshap_core::{shapley_via_counts, AnyQuery, BruteForceCounter};
    use std::collections::HashSet;

    /// Builds an admissible base instance from bit patterns: left values
    /// `a0..`, right values `b0..`; `S ⊆ A × B` from `s_mask`.
    fn base_instance(la: usize, lb: usize, s_mask: u32, exo_t_mask: u32) -> Database {
        let mut db = Database::new();
        db.add_relation("R", 1).unwrap();
        db.add_relation("S", 2).unwrap();
        db.add_relation("T", 1).unwrap();
        for i in 0..la {
            db.add_endo("R", &[&format!("a{i}")]).unwrap();
        }
        for j in 0..lb {
            if exo_t_mask & (1 << j) != 0 {
                db.add_exo("T", &[&format!("b{j}")]).unwrap();
            } else {
                db.add_endo("T", &[&format!("b{j}")]).unwrap();
            }
        }
        let mut bit = 0;
        for i in 0..la {
            for j in 0..lb {
                if s_mask & (1 << bit) != 0 {
                    db.add_exo("S", &[&format!("a{i}"), &format!("b{j}")])
                        .unwrap();
                }
                bit += 1;
            }
        }
        db
    }

    fn check_embedding(q_text: &str, base: &Database) {
        let q = cqshap_query::parse_cq(q_text).unwrap();
        let emb = embed_triplet(&q, base).unwrap();
        assert_eq!(emb.db.endo_count(), base.endo_count(), "{q_text}");
        let oracle = BruteForceCounter::new();
        for (&bf, &ef) in &emb.fact_map {
            let base_v = shapley_via_counts(base, AnyQuery::Cq(&emb.base), bf, &oracle).unwrap();
            let emb_v = shapley_via_counts(&emb.db, AnyQuery::Cq(&q), ef, &oracle).unwrap();
            assert_eq!(
                base_v,
                emb_v,
                "{q_text}: {} vs {}",
                base.render_fact(bf),
                emb.db.render_fact(ef)
            );
        }
    }

    #[test]
    fn embeds_into_q2_of_the_running_example() {
        // q2 is non-hierarchical with triplet variant RS¬T.
        let base = base_instance(2, 2, 0b0111, 0b00);
        check_embedding(
            "q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')",
            &base,
        );
    }

    #[test]
    fn embeds_into_wider_queries() {
        let base = base_instance(2, 2, 0b1011, 0b01);
        // Positive triplet (q_RST shape) inside a 4-atom query.
        check_embedding("q() :- A(x), B(x, y, z), C(y), D(z, w)", &base);
        // Negative endpoints (q_¬RS¬T shape).
        check_embedding("q() :- !A(x), P(x), B(x, y), !C(y), Q(y)", &base);
        // Negative middle (q_R¬ST shape).
        check_embedding("q() :- A(x), !B(x, y), C(y)", &base);
    }

    #[test]
    fn exhaustive_small_bases_on_q_rs_not_t_variant() {
        // All S-subsets of a 2×1 base: the embedding must track exactly.
        for s_mask in 0u32..4 {
            let base = base_instance(2, 1, s_mask, 0);
            check_embedding("q() :- A(x), M(x, v, y), !C(y)", &base);
        }
    }

    #[test]
    fn hierarchical_target_rejected() {
        let base = base_instance(1, 1, 1, 0);
        let q = cqshap_query::parse_cq("q() :- A(x), B(x, y)").unwrap();
        assert!(matches!(
            embed_triplet(&q, &base),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn inadmissible_base_rejected() {
        // Endogenous S fact.
        let mut bad = Database::new();
        bad.add_endo("R", &["a0"]).unwrap();
        bad.add_endo("T", &["b0"]).unwrap();
        bad.add_endo("S", &["a0", "b0"]).unwrap();
        let q = cqshap_query::parse_cq("q() :- A(x), B(x, y), C(y)").unwrap();
        assert!(embed_triplet(&q, &bad).is_err());
        assert!(!base_instance_is_admissible(&bad));
    }

    #[test]
    fn path_embedding_section_4_1_query() {
        // q′ of Section 4.1: ¬R(x,w), S(z,x), ¬P(z,y), T(y,w) with
        // X = {S, P} has a non-hierarchical path; its inducing atoms are
        // ¬R and T (mixed polarity → base q_RS¬T... orientation may vary).
        let q = cqshap_query::parse_cq("q() :- !R(x, w), S(z, x), !P(z, y), T(y, w)").unwrap();
        let exo: HashSet<String> = ["S", "P"].iter().map(|s| s.to_string()).collect();
        let base = base_instance(2, 1, 0b11, 0);
        let emb = embed_path(&q, &exo, &base, 1_000_000).unwrap();
        let oracle = BruteForceCounter::new();
        for (&bf, &ef) in &emb.fact_map {
            let base_v = shapley_via_counts(&base, AnyQuery::Cq(&emb.base), bf, &oracle).unwrap();
            let emb_v = shapley_via_counts(&emb.db, AnyQuery::Cq(&q), ef, &oracle).unwrap();
            assert_eq!(
                base_v,
                emb_v,
                "{} vs {}",
                base.render_fact(bf),
                emb.db.render_fact(ef)
            );
        }
    }

    #[test]
    fn path_embedding_positive_chain() {
        // A positive 4-chain: path x - y - z - w between A(x) and D(w)
        // when B, C are exogenous.
        let q = cqshap_query::parse_cq("q() :- A(x), B(x, y), C(y, z), D(z)").unwrap();
        let exo: HashSet<String> = ["B", "C"].iter().map(|s| s.to_string()).collect();
        let base = base_instance(2, 2, 0b0110, 0b10);
        let emb = embed_path(&q, &exo, &base, 1_000_000).unwrap();
        let oracle = BruteForceCounter::new();
        for (&bf, &ef) in &emb.fact_map {
            let base_v = shapley_via_counts(&base, AnyQuery::Cq(&emb.base), bf, &oracle).unwrap();
            let emb_v = shapley_via_counts(&emb.db, AnyQuery::Cq(&q), ef, &oracle).unwrap();
            assert_eq!(base_v, emb_v);
        }
    }
}
