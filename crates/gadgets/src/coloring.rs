//! The Lemma D.1 reduction chain:
//! 3-colorability → `(3+,2−)`-SAT → `(2+,2−,4+−)`-SAT.
//!
//! Both reductions are implemented exactly as in the appendix, with the
//! direct solvers (brute-force coloring, DPLL) serving as the ground
//! truth for end-to-end validation.

use crate::cnf::{Clause, CnfFormula, Literal};

/// An undirected graph over vertices `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Builds a graph.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or self-loops.
    // cqshap-lint: allow(cancellation-reachability) -- bounded: one validation pass over the edge list
    pub fn new(n: usize, edges: Vec<(usize, usize)>) -> Self {
        for &(a, b) in &edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            assert_ne!(a, b, "self-loop");
        }
        Graph { n, edges }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// The edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Brute-force 3-colorability.
    ///
    /// # Panics
    /// Panics when `n > 15`.
    pub fn is_three_colorable(&self) -> bool {
        assert!(self.n <= 15, "brute-force coloring caps n at 15");
        let mut colors = vec![0u8; self.n];
        self.try_color(0, &mut colors)
    }

    fn try_color(&self, v: usize, colors: &mut Vec<u8>) -> bool {
        if v == self.n {
            return true;
        }
        'next: for c in 0..3u8 {
            for &(a, b) in &self.edges {
                let (other, is_edge) = if a == v && b < v {
                    (b, true)
                } else if b == v && a < v {
                    (a, true)
                } else {
                    (0, false)
                };
                if is_edge && colors[other] == c {
                    continue 'next;
                }
            }
            colors[v] = c;
            if self.try_color(v + 1, colors) {
                return true;
            }
        }
        false
    }
}

/// Lemma D.1, step 1: 3-colorability → `(3+,2−)`-SAT.
///
/// Variable `x_v^c` (index `3v + c`) says "vertex `v` gets color `c`".
/// Clauses: each vertex gets a color (positive 3-clauses); adjacent
/// vertices disagree and no vertex gets two colors (negative 2-clauses).
pub fn coloring_to_3p2n(g: &Graph) -> CnfFormula {
    let var = |v: usize, c: usize| 3 * v + c;
    let mut clauses = Vec::new();
    for v in 0..g.vertex_count() {
        clauses.push(Clause(vec![
            Literal::pos(var(v, 0)),
            Literal::pos(var(v, 1)),
            Literal::pos(var(v, 2)),
        ]));
    }
    for &(u, w) in g.edges() {
        for c in 0..3 {
            clauses.push(Clause(vec![
                Literal::neg(var(u, c)),
                Literal::neg(var(w, c)),
            ]));
        }
    }
    for v in 0..g.vertex_count() {
        for c1 in 0..3 {
            for c2 in c1 + 1..3 {
                clauses.push(Clause(vec![
                    Literal::neg(var(v, c1)),
                    Literal::neg(var(v, c2)),
                ]));
            }
        }
    }
    CnfFormula::new(3 * g.vertex_count(), clauses)
}

/// Lemma D.1, step 2: `(3+,2−)`-SAT → `(2+,2−,4+−)`-SAT.
///
/// Negative 2-clauses pass through. Each positive 3-clause
/// `(x ∨ y ∨ z)` becomes, with a fresh variable `w`:
/// `(x ∨ y ∨ ¬w ∨ ¬w) ∧ (z ∨ w) ∧ (¬z ∨ ¬w)`.
///
/// # Panics
/// Panics when the input is not in `(3+,2−)` shape.
pub fn to_224(f: &CnfFormula) -> CnfFormula {
    assert!(f.is_3p2n_shape(), "input must be a (3+,2−) formula");
    let mut next_var = f.num_vars;
    let mut clauses = Vec::new();
    for c in &f.clauses {
        match c.0.as_slice() {
            [a, b] => clauses.push(Clause(vec![*a, *b])),
            [x, y, z] => {
                let w = next_var;
                next_var += 1;
                clauses.push(Clause(vec![*x, *y, Literal::neg(w), Literal::neg(w)]));
                clauses.push(Clause(vec![*z, Literal::pos(w)]));
                clauses.push(Clause(vec![Literal::neg(z.var), Literal::neg(w)]));
            }
            _ => unreachable!("shape validated"),
        }
    }
    CnfFormula::new(next_var, clauses)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::new(3, vec![(0, 1), (1, 2), (0, 2)])
    }

    fn k4() -> Graph {
        Graph::new(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    /// K4 plus a pendant vertex; still not 3-colorable.
    fn k4_plus() -> Graph {
        Graph::new(
            5,
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)],
        )
    }

    #[test]
    fn coloring_ground_truth() {
        assert!(triangle().is_three_colorable());
        assert!(!k4().is_three_colorable());
        assert!(!k4_plus().is_three_colorable());
        assert!(Graph::new(1, vec![]).is_three_colorable());
        // C5 is 3-colorable.
        assert!(Graph::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).is_three_colorable());
    }

    #[test]
    fn step1_preserves_satisfiability() {
        for (g, colorable) in [
            (triangle(), true),
            (k4(), false),
            (k4_plus(), false),
            (Graph::new(4, vec![(0, 1), (1, 2), (2, 3)]), true),
        ] {
            let f = coloring_to_3p2n(&g);
            assert!(f.is_3p2n_shape());
            assert_eq!(f.is_satisfiable(), colorable, "graph {g:?}");
        }
    }

    #[test]
    fn step2_preserves_satisfiability() {
        for g in [triangle(), k4(), Graph::new(4, vec![(0, 1), (2, 3)])] {
            let f = coloring_to_3p2n(&g);
            let f224 = to_224(&f);
            assert!(f224.is_224_shape());
            assert_eq!(f.is_satisfiable(), f224.is_satisfiable(), "graph {g:?}");
        }
    }

    #[test]
    fn full_chain_matches_coloring() {
        for (g, colorable) in [(triangle(), true), (k4(), false)] {
            let f224 = to_224(&coloring_to_3p2n(&g));
            assert_eq!(f224.is_satisfiable(), colorable);
        }
    }

    #[test]
    #[should_panic(expected = "(3+,2−)")]
    fn to_224_validates_shape() {
        let bad = CnfFormula::new(1, vec![Clause(vec![Literal::pos(0)])]);
        to_224(&bad);
    }
}
