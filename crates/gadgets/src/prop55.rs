//! Proposition 5.5: relevance is NP-complete for `q_RST¬R`.
//!
//! The query `q_RST¬R() :- T(z), ¬R(x), ¬R(y), R(z), R(w), S(x,y,z,w)`
//! contains a relation (`R`) with both polarities; the reduction of
//! Figure 4 turns a `(2+,2−,4+−)`-CNF formula into a database where the
//! endogenous fact `T(c)` is relevant iff the formula is satisfiable.
//! Since `T` itself is polarity consistent, the same construction proves
//! NP-hardness of Shapley *zeroness* (Corollary 5.6) and hence of
//! multiplicative approximation.

use cqshap_core::CoreError;
use cqshap_db::{Database, FactId};
use cqshap_query::{parse_cq, ConjunctiveQuery};

use crate::cnf::CnfFormula;

/// The query `q_RST¬R`.
pub fn qrst_nr_query() -> ConjunctiveQuery {
    parse_cq("qRSTnR() :- T(z), !R(x), !R(y), R(z), R(w), S(x, y, z, w)")
        .expect("static query parses")
}

/// The Figure 4 construction: builds `(D, f)` with `f = T(c)` endogenous
/// such that `f` is relevant to [`qrst_nr_query`] iff `formula` is
/// satisfiable.
///
/// # Errors
/// * [`CoreError::Unsupported`] when the formula is not in
///   `(2+,2−,4+−)` shape or has no positive 2-clause (the proof assumes
///   one: formulas without it are trivially satisfied by all-zeros).
pub fn build_relevance_instance(formula: &CnfFormula) -> Result<(Database, FactId), CoreError> {
    if !formula.is_224_shape() {
        return Err(CoreError::Unsupported(
            "formula must be in (2+,2−,4+−) shape".into(),
        ));
    }
    let has_positive_pair = formula
        .clauses
        .iter()
        .any(|c| matches!(c.0.as_slice(), [a, b] if a.positive && b.positive));
    if !has_positive_pair {
        return Err(CoreError::Unsupported(
            "the construction assumes a clause (x ∨ y); without one the formula \
             is satisfied by the all-zero assignment"
                .into(),
        ));
    }
    let mut db = Database::new();
    let v = |i: usize| format!("{i}");
    // Per-variable facts: endogenous R(i), exogenous T(i).
    for i in 0..formula.num_vars {
        db.add_endo("R", &[&v(i)])?;
        db.add_exo("T", &[&v(i)])?;
    }
    // Clause facts (duplicate clauses map to the same fact; skip them).
    let add_s = |db: &mut Database, args: [&str; 4]| -> Result<(), CoreError> {
        match db.add_exo("S", &args) {
            Ok(_) => Ok(()),
            Err(cqshap_db::DbError::DuplicateFact { .. }) => Ok(()),
            Err(e) => Err(e.into()),
        }
    };
    for clause in &formula.clauses {
        match clause.0.as_slice() {
            [a, b] if a.positive && b.positive => {
                add_s(&mut db, [&v(a.var), &v(b.var), "a", "a"])?;
            }
            [a, b] => {
                add_s(&mut db, ["b", "b", &v(a.var), &v(b.var)])?;
            }
            [a, b, c, d] => {
                add_s(&mut db, [&v(a.var), &v(b.var), &v(c.var), &v(d.var)])?;
            }
            _ => unreachable!("shape validated"),
        }
    }
    // Scaffolding: R(a), T(a) anchor the (x ∨ y) clauses; R(c) and
    // S(d,d,c,c) let f = T(c) complete a homomorphism.
    db.add_exo("R", &["a"])?;
    db.add_exo("T", &["a"])?;
    db.add_exo("R", &["c"])?;
    db.add_exo("S", &["d", "d", "c", "c"])?;
    let f = db.add_endo("T", &["c"])?;
    Ok((db, f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Literal};
    use cqshap_core::relevance::brute_force_relevance;
    use cqshap_core::AnyQuery;

    fn clause(lits: &[(usize, bool)]) -> Clause {
        Clause(
            lits.iter()
                .map(|&(v, p)| Literal {
                    var: v,
                    positive: p,
                })
                .collect(),
        )
    }

    /// The worked example from the proof sketch:
    /// (x1∨x2) ∧ (¬x1∨¬x3) ∧ (x3∨x4∨¬x1∨¬x2), 1-indexed in the paper.
    fn figure_4_formula() -> CnfFormula {
        CnfFormula::new(
            4,
            vec![
                clause(&[(0, true), (1, true)]),
                clause(&[(0, false), (2, false)]),
                clause(&[(2, true), (3, true), (0, false), (1, false)]),
            ],
        )
    }

    #[test]
    fn figure_4_worked_example() {
        let formula = figure_4_formula();
        assert!(formula.is_satisfiable());
        let (db, f) = build_relevance_instance(&formula).unwrap();
        // |Dn| = 4 variable facts + T(c).
        assert_eq!(db.endo_count(), 5);
        let q = qrst_nr_query();
        let (pos, _neg) = brute_force_relevance(&db, AnyQuery::Cq(&q), f, 24).unwrap();
        assert!(pos, "satisfiable formula → T(c) positively relevant");
    }

    #[test]
    fn unsatisfiable_formula_gives_irrelevant_fact() {
        // (x0 ∨ x1) ∧ (¬x0 ∨ ¬x0) ∧ (¬x1 ∨ ¬x1): unsat, in shape.
        let formula = CnfFormula::new(
            2,
            vec![
                clause(&[(0, true), (1, true)]),
                clause(&[(0, false), (0, false)]),
                clause(&[(1, false), (1, false)]),
            ],
        );
        assert!(!formula.is_satisfiable());
        let (db, f) = build_relevance_instance(&formula).unwrap();
        let q = qrst_nr_query();
        let (pos, neg) = brute_force_relevance(&db, AnyQuery::Cq(&q), f, 24).unwrap();
        assert!(!pos && !neg, "unsatisfiable formula → T(c) irrelevant");
    }

    /// The reduction agrees with DPLL across a deterministic family of
    /// random-ish formulas (the end-to-end validation of Prop. 5.5).
    #[test]
    fn reduction_agrees_with_dpll() {
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut seen_sat = 0;
        let mut seen_unsat = 0;
        for _ in 0..25 {
            let nv = 3 + next() % 3; // 3..=5 variables
            let nc = 2 + next() % 5;
            let mut clauses = vec![clause(&[(next() % nv, true), (next() % nv, true)])];
            for _ in 0..nc {
                clauses.push(match next() % 3 {
                    0 => clause(&[(next() % nv, true), (next() % nv, true)]),
                    1 => clause(&[(next() % nv, false), (next() % nv, false)]),
                    _ => clause(&[
                        (next() % nv, true),
                        (next() % nv, true),
                        (next() % nv, false),
                        (next() % nv, false),
                    ]),
                });
            }
            let formula = CnfFormula::new(nv, clauses);
            let (db, f) = build_relevance_instance(&formula).unwrap();
            let q = qrst_nr_query();
            let (pos, _) = brute_force_relevance(&db, AnyQuery::Cq(&q), f, 24).unwrap();
            assert_eq!(pos, formula.is_satisfiable(), "{formula}");
            if pos {
                seen_sat += 1;
            } else {
                seen_unsat += 1;
            }
        }
        assert!(seen_sat > 0 && seen_unsat > 0, "family should mix outcomes");
    }

    #[test]
    fn shape_violations_rejected() {
        let not_224 = CnfFormula::new(2, vec![clause(&[(0, true), (1, false)])]);
        assert!(build_relevance_instance(&not_224).is_err());
        let no_positive_pair = CnfFormula::new(2, vec![clause(&[(0, false), (1, false)])]);
        assert!(build_relevance_instance(&no_positive_pair).is_err());
    }
}
