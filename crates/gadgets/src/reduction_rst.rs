//! Lemma B.3, executably: counting independent sets of a bipartite
//! graph with a Shapley oracle for `q_RS¬T() :- R(x), S(x,y), ¬T(y)`.
//!
//! Given `g = (A ∪ B, E)` with `N = |A| + |B|`, the reduction builds
//! `N + 2` database instances:
//!
//! * `D⁰` — endogenous `R(a)` per left vertex, `T(b)` per right vertex,
//!   a fresh right vertex `z` with endogenous `f = T(z)`, exogenous
//!   `S(a,b)` per edge and `S(a,z)` for every `a ∈ A`;
//! * `Dʳ` (`r = 1..N+1`) — `D⁰` plus `r` fresh left vertices `oᵢ`, each
//!   with endogenous `R(oᵢ)` and exogenous `S(oᵢ, z)`.
//!
//! Writing `sᵣ = −Shapley(Dʳ, q_RS¬T, f)` (the value is non-positive:
//! `f` can only turn the answer false), the permutation-counting
//! identities of the proof give a linear system over the closed-subset
//! counts `|S(g,k)|`, whose coefficient matrix `[k!·(N−k+r)!]` is
//! invertible; `|IS(g)| = Σ_k |S(g,k)|`.

use cqshap_core::{shapley_via_counts, AnyQuery, BruteForceCounter, CoreError};
use cqshap_db::{Database, FactId};
use cqshap_numeric::{BigInt, BigRational, BigUint, FactorialTable, RationalMatrix};
use cqshap_query::{parse_cq, ConjunctiveQuery};

use crate::bipartite::BipartiteGraph;

/// The hard query `q_RS¬T`.
pub fn qrsnt_query() -> ConjunctiveQuery {
    parse_cq("qRSnT() :- R(x), S(x, y), !T(y)").expect("static query parses")
}

fn left_name(i: usize) -> String {
    format!("a{i}")
}

fn right_name(j: usize) -> String {
    format!("b{j}")
}

/// Builds the instance `Dʳ` (with `r = 0` giving `D⁰`); returns the
/// database and the distinguished fact `f = T(z)`.
pub fn build_instance(g: &BipartiteGraph, r: usize) -> (Database, FactId) {
    let mut db = Database::new();
    for i in 0..g.left() {
        db.add_endo("R", &[&left_name(i)]).expect("fresh");
    }
    for j in 0..g.right() {
        db.add_endo("T", &[&right_name(j)]).expect("fresh");
    }
    let f = db.add_endo("T", &["z"]).expect("fresh");
    for &(a, b) in g.edges() {
        db.add_exo("S", &[&left_name(a), &right_name(b)])
            .expect("fresh");
    }
    if r == 0 {
        // Only D⁰ connects the original left vertices to z; the Dʳ
        // instances connect z exclusively to the fresh vertices oᵢ.
        for i in 0..g.left() {
            db.add_exo("S", &[&left_name(i), "z"]).expect("fresh");
        }
    }
    for i in 1..=r {
        db.add_endo("R", &[&format!("o{i}")]).expect("fresh");
        db.add_exo("S", &[&format!("o{i}"), "z"]).expect("fresh");
    }
    (db, f)
}

/// A Shapley oracle: anything that produces `Shapley(D, q_RS¬T, f)`.
pub type ShapleyOracle<'a> = dyn Fn(&Database, FactId) -> Result<BigRational, CoreError> + 'a;

/// The brute-force oracle used to *realize* the reduction at small
/// scale (the query is `FP^{#P}`-hard, so no polynomial oracle exists
/// unless the hierarchy collapses).
pub fn brute_force_oracle(db: &Database, f: FactId) -> Result<BigRational, CoreError> {
    let q = qrsnt_query();
    shapley_via_counts(db, AnyQuery::Cq(&q), f, &BruteForceCounter::new())
}

/// Recovers `|IS(g)|` from `N + 2` Shapley values, following Lemma B.3
/// to the letter. Also returns the recovered `|S(g,k)|` vector.
///
/// # Errors
/// Propagates oracle errors; fails when the solved counts are not
/// non-negative integers (which would indicate an unfaithful oracle).
pub fn recover_is_count(
    g: &BipartiteGraph,
    oracle: &ShapleyOracle<'_>,
) -> Result<(BigUint, Vec<BigUint>), CoreError> {
    let m = g.left();
    let n_total = g.vertex_count(); // N
    let table = FactorialTable::new(2 * n_total + 2);
    let fact = |k: usize| BigRational::from(table.factorial(k).clone());

    // P₁→₁ from D⁰: s₀ = −Shapley(D⁰, f) = 1 − (P₀₀ + P₁₁)/(N+1)!,
    // with P₀₀ = (N+1)!/(m+1).
    let (d0, f0) = build_instance(g, 0);
    let s0 = -oracle(&d0, f0)?;
    let p00_d0 = fact(n_total + 1) / BigRational::from((m as i64) + 1);
    let p11 = (BigRational::one() - s0) * fact(n_total + 1) - p00_d0;

    // Rows r = 1..N+1:  Σ_k |S(g,k)|·k!·(N−k+r)! =
    //   (1 − sᵣ)·(N+r+1)! − P₁₁·mᵣ,   mᵣ = C(N+r+1, r)·r!.
    let rows = n_total + 1;
    let matrix = RationalMatrix::from_fn(rows, rows, |ri, k| {
        let r = ri + 1;
        fact(k) * fact(n_total - k + r)
    });
    let mut rhs = Vec::with_capacity(rows);
    for ri in 0..rows {
        let r = ri + 1;
        let (dr, fr) = build_instance(g, r);
        let sr = -oracle(&dr, fr)?;
        let m_r = BigRational::from(table.binomial(n_total + r + 1, r)) * fact(r);
        rhs.push((BigRational::one() - sr) * fact(n_total + r + 1) - &p11 * &m_r);
    }
    let solution = matrix
        .solve(&rhs)
        .map_err(|e| CoreError::Unsupported(format!("linear system: {e}")))?;

    let mut counts = Vec::with_capacity(rows);
    let mut total = BigUint::zero();
    for (k, v) in solution.iter().enumerate() {
        if !v.denominator().is_one() || v.is_negative() {
            return Err(CoreError::Unsupported(format!(
                "recovered |S(g,{k})| = {v} is not a non-negative integer"
            )));
        }
        let int: BigInt = v.numerator().clone();
        let mag = int.into_magnitude();
        total += &mag;
        counts.push(mag);
    }
    Ok((total, counts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn validate(g: &BipartiteGraph) {
        let (recovered_total, recovered_counts) = recover_is_count(g, &brute_force_oracle).unwrap();
        assert_eq!(
            recovered_total,
            g.independent_set_count(),
            "total |IS| for {g:?}"
        );
        assert_eq!(
            recovered_counts,
            g.closed_subset_counts(),
            "|S(g,k)| for {g:?}"
        );
    }

    #[test]
    fn single_edge_graph() {
        validate(&BipartiteGraph::new(1, 1, vec![(0, 0)]));
    }

    #[test]
    fn edgeless_graph() {
        validate(&BipartiteGraph::new(2, 1, vec![]));
    }

    #[test]
    fn path_graph() {
        // a0 - b0 - a1 (a path of length 2 through the right side).
        validate(&BipartiteGraph::new(2, 1, vec![(0, 0), (1, 0)]));
    }

    #[test]
    fn small_dense_graph() {
        validate(&BipartiteGraph::new(2, 2, vec![(0, 0), (0, 1), (1, 0)]));
    }

    #[test]
    fn shapley_of_f_is_never_positive() {
        // f = T(z) only ever flips the answer true → false.
        let g = BipartiteGraph::new(2, 2, vec![(0, 0), (1, 1)]);
        for r in 0..=2 {
            let (db, f) = build_instance(&g, r);
            let v = brute_force_oracle(&db, f).unwrap();
            assert!(!v.is_positive(), "r={r}: {v}");
            assert!(!v.is_zero(), "f is always relevant in these instances");
        }
    }

    #[test]
    fn instance_shape() {
        let g = BipartiteGraph::new(2, 3, vec![(0, 0), (1, 2)]);
        let (d0, f) = build_instance(&g, 0);
        // |Dn| = |A| + |B| + 1.
        assert_eq!(d0.endo_count(), 6);
        assert_eq!(d0.render_fact(f), "T(z)");
        let (d2, _) = build_instance(&g, 2);
        assert_eq!(d2.endo_count(), 8);
    }
}
