//! Proposition 5.8: relevance is NP-complete for the union `q_SAT`.
//!
//! Each disjunct of
//!
//! ```text
//! q1() :- C(x1,x2,x3,v1,v2,v3), T(x1,v1), T(x2,v2), T(x3,v3)
//! q2() :- V(x), ¬T(x,1), ¬T(x,0)
//! q3() :- T(x,1), T(x,0)
//! q4() :- R(0)
//! ```
//!
//! is polarity consistent, but the union is not (`T` flips), and
//! relevance of `R(0)` decides 3SAT: `E` encodes an assignment; `q2`/`q3`
//! force it to be total and functional, `q1` fires iff a clause is
//! falsified, and `q4` makes `f = R(0)` complete any world. So `f` is
//! relevant iff some `E` avoids all three — i.e. the formula is
//! satisfiable.

use cqshap_core::CoreError;
use cqshap_db::{Database, FactId};
use cqshap_query::{parse_ucq, UnionQuery};

use crate::cnf::CnfFormula;

/// The union `q_SAT`.
pub fn qsat_query() -> UnionQuery {
    parse_ucq(
        "q1() :- C(x1, x2, x3, v1, v2, v3), T(x1, v1), T(x2, v2), T(x3, v3)\n\
         q2() :- V(x), !T(x, 1), !T(x, 0)\n\
         q3() :- T(x, 1), T(x, 0)\n\
         q4() :- R(0)\n",
    )
    .expect("static query parses")
}

/// Builds `(D, f)` with `f = R(0)` such that `f` is relevant to
/// [`qsat_query`] iff the 3CNF `formula` is satisfiable.
///
/// # Errors
/// [`CoreError::Unsupported`] when a clause is not a 3-clause.
pub fn build_relevance_instance(formula: &CnfFormula) -> Result<(Database, FactId), CoreError> {
    if !formula.is_3sat_shape() {
        return Err(CoreError::Unsupported("formula must be a 3CNF".into()));
    }
    let mut db = Database::new();
    let v = |i: usize| format!("{i}");
    for i in 0..formula.num_vars {
        db.add_exo("V", &[&v(i)])?;
        db.add_endo("T", &[&v(i), "1"])?;
        db.add_endo("T", &[&v(i), "0"])?;
    }
    for clause in &formula.clauses {
        let lits = &clause.0;
        // v_r = 1 iff the literal is negative: T(r, v_r) ∈ E encodes the
        // assignment *falsifying* the literal.
        let falsify = |idx: usize| if lits[idx].positive { "0" } else { "1" };
        let args = [
            v(lits[0].var),
            v(lits[1].var),
            v(lits[2].var),
            falsify(0).to_string(),
            falsify(1).to_string(),
            falsify(2).to_string(),
        ];
        let refs: Vec<&str> = args.iter().map(|s| &**s).collect();
        // Duplicate clauses produce duplicate facts; ignore those.
        match db.add_exo("C", &refs) {
            Ok(_) => {}
            Err(cqshap_db::DbError::DuplicateFact { .. }) => {}
            Err(e) => return Err(e.into()),
        }
    }
    let f = db.add_endo("R", &["0"])?;
    Ok((db, f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Literal};
    use cqshap_core::relevance::brute_force_relevance;
    use cqshap_core::AnyQuery;

    fn clause3(lits: [(usize, bool); 3]) -> Clause {
        Clause(
            lits.iter()
                .map(|&(v, p)| Literal {
                    var: v,
                    positive: p,
                })
                .collect(),
        )
    }

    #[test]
    fn satisfiable_formula_makes_f_relevant() {
        // (x0 ∨ x1 ∨ x2) ∧ (¬x0 ∨ ¬x1 ∨ x2)
        let f3 = CnfFormula::new(
            3,
            vec![
                clause3([(0, true), (1, true), (2, true)]),
                clause3([(0, false), (1, false), (2, true)]),
            ],
        );
        assert!(f3.is_satisfiable());
        let (db, f) = build_relevance_instance(&f3).unwrap();
        let u = qsat_query();
        let (pos, _) = brute_force_relevance(&db, AnyQuery::Union(&u), f, 24).unwrap();
        assert!(pos);
    }

    #[test]
    fn unsatisfiable_formula_makes_f_irrelevant() {
        // All eight sign patterns over three variables: unsatisfiable.
        let mut clauses = Vec::new();
        for mask in 0u8..8 {
            clauses.push(clause3([
                (0, mask & 1 != 0),
                (1, mask & 2 != 0),
                (2, mask & 4 != 0),
            ]));
        }
        let f3 = CnfFormula::new(3, clauses);
        assert!(!f3.is_satisfiable());
        let (db, f) = build_relevance_instance(&f3).unwrap();
        let u = qsat_query();
        let (pos, neg) = brute_force_relevance(&db, AnyQuery::Union(&u), f, 24).unwrap();
        assert!(!pos && !neg);
    }

    #[test]
    fn reduction_agrees_with_dpll_on_random_family() {
        let mut state = 0xFACEFEEDu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut outcomes = [0usize; 2];
        for _ in 0..15 {
            let nv = 3 + next() % 2; // 3..=4 variables (|Dn| = 2nv + 1)
            let nc = 4 + next() % 10;
            let clauses: Vec<Clause> = (0..nc)
                .map(|_| {
                    clause3([
                        (next() % nv, next() % 2 == 0),
                        (next() % nv, next() % 2 == 0),
                        (next() % nv, next() % 2 == 0),
                    ])
                })
                .collect();
            let f3 = CnfFormula::new(nv, clauses);
            let (db, f) = build_relevance_instance(&f3).unwrap();
            let u = qsat_query();
            let (pos, _) = brute_force_relevance(&db, AnyQuery::Union(&u), f, 24).unwrap();
            assert_eq!(pos, f3.is_satisfiable(), "{f3}");
            outcomes[pos as usize] += 1;
        }
        assert!(
            outcomes[0] > 0 && outcomes[1] > 0,
            "family should mix outcomes"
        );
    }

    #[test]
    fn non_3cnf_rejected() {
        let bad = CnfFormula::new(2, vec![Clause(vec![Literal::pos(0), Literal::pos(1)])]);
        assert!(build_relevance_instance(&bad).is_err());
    }
}
