//! Executable hardness constructions from the paper.
//!
//! Every hardness proof in the paper is a reduction; this crate makes
//! each one executable and testable end-to-end:
//!
//! * [`bipartite`] — bipartite graphs and exact independent-set
//!   counting (the `#P`-hard anchor of Lemma B.3);
//! * [`reduction_rst`] — Lemma B.3: recovering `|IS(g)|` from Shapley
//!   values of `q_RS¬T` instances by solving an exact linear system;
//! * [`cnf`] — CNF formulas (3CNF, monotone mixes, the
//!   `(2+,2−,4+−)` fragment) and a DPLL satisfiability solver;
//! * [`coloring`] — Lemma D.1's chain: 3-colorability →
//!   `(3+,2−)`-SAT → `(2+,2−,4+−)`-SAT;
//! * [`prop55`] — Proposition 5.5: `(2+,2−,4+−)`-SAT ⟺ relevance of a
//!   `T`-fact to `q_RST¬R` (Figure 4's construction);
//! * [`prop58`] — Proposition 5.8: 3SAT ⟺ relevance of `R(0)` to the
//!   union `q_SAT`;
//! * [`embed`] — Lemma B.4 and Appendix C: Shapley-preserving embeddings
//!   of the four basic hard queries into arbitrary non-hierarchical
//!   queries (triplet version) and non-hierarchical-path queries (the
//!   Theorem 4.3 hardness side).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bipartite;
pub mod cnf;
pub mod coloring;
pub mod embed;
pub mod prop55;
pub mod prop58;
pub mod reduction_rst;

pub use bipartite::BipartiteGraph;
pub use cnf::{Clause, CnfFormula, Literal};
pub use coloring::Graph;
