//! CNF formulas and a DPLL satisfiability solver.
//!
//! The relevance hardness proofs reduce from SAT fragments:
//! Proposition 5.5 from `(2+,2−,4+−)`-SAT (clauses `(x ∨ y)`,
//! `(¬x ∨ ¬y)`, or `(x ∨ y ∨ ¬z ∨ ¬w)`), Proposition 5.8 from 3SAT,
//! and Lemma D.1 chains through `(3+,2−)`-SAT. The DPLL solver is the
//! independent ground truth those reductions are checked against.

use std::fmt;

/// A literal: a variable index with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Literal {
    /// Variable index (0-based).
    pub var: usize,
    /// `true` for `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Literal {
    /// Positive literal `x_i`.
    pub fn pos(var: usize) -> Self {
        Literal {
            var,
            positive: true,
        }
    }

    /// Negative literal `¬x_i`.
    pub fn neg(var: usize) -> Self {
        Literal {
            var,
            positive: false,
        }
    }

    /// Is the literal satisfied under `value` for its variable?
    pub fn satisfied_by(&self, value: bool) -> bool {
        self.positive == value
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", if self.positive { "" } else { "¬" }, self.var)
    }
}

/// A disjunctive clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause(pub Vec<Literal>);

impl Clause {
    /// Is the clause satisfied by a (total) assignment?
    pub fn satisfied_by(&self, assignment: &[bool]) -> bool {
        self.0.iter().any(|l| l.satisfied_by(assignment[l.var]))
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|l| l.to_string()).collect();
        write!(f, "({})", parts.join(" ∨ "))
    }
}

/// A CNF formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnfFormula {
    /// Number of variables (indices `0..num_vars`).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl CnfFormula {
    /// Builds a formula, validating variable ranges.
    ///
    /// # Panics
    /// Panics if a literal references a variable `>= num_vars`.
    pub fn new(num_vars: usize, clauses: Vec<Clause>) -> Self {
        for c in &clauses {
            for l in &c.0 {
                assert!(l.var < num_vars, "literal {l} out of range");
            }
        }
        CnfFormula { num_vars, clauses }
    }

    /// Is the formula satisfied by a total assignment?
    pub fn satisfied_by(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars);
        self.clauses.iter().all(|c| c.satisfied_by(assignment))
    }

    /// DPLL satisfiability with unit propagation; returns a model if one
    /// exists.
    pub fn find_model(&self) -> Option<Vec<bool>> {
        let mut assignment: Vec<Option<bool>> = vec![None; self.num_vars];
        self.dpll(&mut assignment)
            .then(|| assignment.into_iter().map(|v| v.unwrap_or(false)).collect())
    }

    /// Is the formula satisfiable?
    pub fn is_satisfiable(&self) -> bool {
        self.find_model().is_some()
    }

    fn dpll(&self, assignment: &mut Vec<Option<bool>>) -> bool {
        // Unit propagation / conflict detection.
        loop {
            let mut propagated = false;
            for clause in &self.clauses {
                let mut unassigned: Option<Literal> = None;
                let mut satisfied = false;
                let mut unassigned_count = 0;
                for l in &clause.0 {
                    match assignment[l.var] {
                        Some(v) if l.satisfied_by(v) => {
                            satisfied = true;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            unassigned_count += 1;
                            unassigned = Some(*l);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned_count {
                    0 => return false, // conflict
                    1 => {
                        let l = unassigned.expect("one unassigned literal");
                        assignment[l.var] = Some(l.positive);
                        propagated = true;
                    }
                    _ => {}
                }
            }
            if !propagated {
                break;
            }
        }
        // Branch.
        let Some(var) = assignment.iter().position(Option::is_none) else {
            return true; // total assignment with no conflicts
        };
        for value in [true, false] {
            let saved = assignment.clone();
            assignment[var] = Some(value);
            if self.dpll(assignment) {
                return true;
            }
            *assignment = saved;
        }
        false
    }

    /// Brute-force satisfiability (independent of DPLL, for test
    /// cross-checks).
    ///
    /// # Panics
    /// Panics when `num_vars > 24`.
    pub fn is_satisfiable_brute(&self) -> bool {
        assert!(self.num_vars <= 24);
        (0u64..(1 << self.num_vars)).any(|mask| {
            let assignment: Vec<bool> = (0..self.num_vars).map(|i| mask & (1 << i) != 0).collect();
            self.satisfied_by(&assignment)
        })
    }

    /// Validates the `(2+,2−,4+−)` shape of Proposition 5.5: every
    /// clause is `(x ∨ y)`, `(¬x ∨ ¬y)`, or `(x ∨ y ∨ ¬z ∨ ¬w)`.
    pub fn is_224_shape(&self) -> bool {
        self.clauses.iter().all(|c| match c.0.as_slice() {
            [a, b] => (a.positive && b.positive) || (!a.positive && !b.positive),
            [a, b, c, d] => a.positive && b.positive && !c.positive && !d.positive,
            _ => false,
        })
    }

    /// Validates the `(3+,2−)` shape of Lemma D.1's intermediate
    /// problem: positive 3-clauses and negative 2-clauses.
    pub fn is_3p2n_shape(&self) -> bool {
        self.clauses.iter().all(|c| match c.0.as_slice() {
            [a, b, c] => a.positive && b.positive && c.positive,
            [a, b] => !a.positive && !b.positive,
            _ => false,
        })
    }

    /// Is every clause a 3-clause (3SAT shape, repetitions allowed)?
    pub fn is_3sat_shape(&self) -> bool {
        self.clauses.iter().all(|c| c.0.len() == 3)
    }
}

impl fmt::Display for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.clauses.iter().map(|c| c.to_string()).collect();
        write!(f, "{}", parts.join(" ∧ "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clause(lits: &[(usize, bool)]) -> Clause {
        Clause(
            lits.iter()
                .map(|&(v, p)| Literal {
                    var: v,
                    positive: p,
                })
                .collect(),
        )
    }

    #[test]
    fn simple_sat_and_unsat() {
        // (x0 ∨ x1) ∧ (¬x0) ∧ (¬x1) is unsat.
        let f = CnfFormula::new(
            2,
            vec![
                clause(&[(0, true), (1, true)]),
                clause(&[(0, false)]),
                clause(&[(1, false)]),
            ],
        );
        assert!(!f.is_satisfiable());
        // Drop the last clause: satisfiable with x1 = 1.
        let g = CnfFormula::new(
            2,
            vec![clause(&[(0, true), (1, true)]), clause(&[(0, false)])],
        );
        let model = g.find_model().unwrap();
        assert!(g.satisfied_by(&model));
        assert!(!model[0] && model[1]);
    }

    #[test]
    fn empty_formula_is_satisfiable() {
        assert!(CnfFormula::new(3, vec![]).is_satisfiable());
    }

    #[test]
    fn empty_clause_is_unsat() {
        assert!(!CnfFormula::new(1, vec![Clause(vec![])]).is_satisfiable());
    }

    #[test]
    fn dpll_matches_brute_force() {
        // Exhaustive over a deterministic pseudo-random family.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..200 {
            let nv = 3 + next() % 5;
            let nc = 1 + next() % 10;
            let clauses: Vec<Clause> = (0..nc)
                .map(|_| {
                    let len = 1 + next() % 3;
                    Clause(
                        (0..len)
                            .map(|_| Literal {
                                var: next() % nv,
                                positive: next() % 2 == 0,
                            })
                            .collect(),
                    )
                })
                .collect();
            let f = CnfFormula::new(nv, clauses);
            assert_eq!(f.is_satisfiable(), f.is_satisfiable_brute(), "{f}");
            if let Some(m) = f.find_model() {
                assert!(f.satisfied_by(&m), "{f}");
            }
        }
    }

    #[test]
    fn shape_validators() {
        let f224 = CnfFormula::new(
            4,
            vec![
                clause(&[(0, true), (1, true)]),
                clause(&[(0, false), (2, false)]),
                clause(&[(2, true), (3, true), (0, false), (1, false)]),
            ],
        );
        assert!(f224.is_224_shape());
        assert!(!f224.is_3p2n_shape());

        let f3p2n = CnfFormula::new(
            3,
            vec![
                clause(&[(0, true), (1, true), (2, true)]),
                clause(&[(0, false), (1, false)]),
            ],
        );
        assert!(f3p2n.is_3p2n_shape());
        assert!(!f3p2n.is_224_shape());

        let f3 = CnfFormula::new(3, vec![clause(&[(0, true), (1, false), (2, true)])]);
        assert!(f3.is_3sat_shape());
        assert!(!CnfFormula::new(2, vec![clause(&[(0, true), (1, true)])]).is_3sat_shape());
    }

    #[test]
    fn display() {
        let f = CnfFormula::new(2, vec![clause(&[(0, true), (1, false)])]);
        assert_eq!(f.to_string(), "(x0 ∨ ¬x1)");
    }
}
