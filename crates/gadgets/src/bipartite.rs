//! Bipartite graphs and exact independent-set counting.
//!
//! Counting independent sets in a bipartite graph is `#P`-complete; it
//! is the problem Lemma B.3 reduces *from*. The direct counters here are
//! the ground truth the reduction is validated against.

use cqshap_numeric::BigUint;

/// A bipartite graph over left vertices `0..left` and right vertices
/// `0..right`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteGraph {
    left: usize,
    right: usize,
    edges: Vec<(usize, usize)>,
}

impl BipartiteGraph {
    /// Builds a graph; edges are `(left_vertex, right_vertex)`.
    ///
    /// # Panics
    /// Panics on out-of-range or duplicate edges.
    pub fn new(left: usize, right: usize, edges: Vec<(usize, usize)>) -> Self {
        for &(a, b) in &edges {
            assert!(a < left && b < right, "edge ({a},{b}) out of range");
        }
        let mut dedup = edges.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), edges.len(), "duplicate edges");
        BipartiteGraph { left, right, edges }
    }

    /// Number of left vertices.
    pub fn left(&self) -> usize {
        self.left
    }

    /// Number of right vertices.
    pub fn right(&self) -> usize {
        self.right
    }

    /// Total number of vertices `N`.
    pub fn vertex_count(&self) -> usize {
        self.left + self.right
    }

    /// The edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Right-neighborhood of a left subset, as a bitmask.
    fn neighborhood(&self, left_mask: u64) -> u64 {
        let mut out = 0u64;
        for &(a, b) in &self.edges {
            if left_mask & (1 << a) != 0 {
                out |= 1 << b;
            }
        }
        out
    }

    /// `|IS(g)|`: the number of independent sets (including ∅), computed
    /// directly: `Σ_{A' ⊆ A} 2^{|B| − |N(A')|}`.
    ///
    /// # Panics
    /// Panics when `left > 60`.
    pub fn independent_set_count(&self) -> BigUint {
        assert!(self.left <= 60, "direct counting caps the left side at 60");
        let mut total = BigUint::zero();
        for mask in 0u64..(1u64 << self.left) {
            let blocked = self.neighborhood(mask).count_ones() as usize;
            total += &(BigUint::one() << (self.right - blocked));
        }
        total
    }

    /// `|S(g, k)|` for all `k`: the number of `k`-subsets `A' ∪ B'` such
    /// that every neighbor of a chosen left vertex is chosen
    /// (the sets `S(g)` of Lemma B.3). Brute force over both sides.
    ///
    /// # Panics
    /// Panics when `left + right > 26`.
    pub fn closed_subset_counts(&self) -> Vec<BigUint> {
        let n = self.vertex_count();
        assert!(n <= 26, "closed-subset counting is brute force");
        let mut counts = vec![BigUint::zero(); n + 1];
        for l_mask in 0u64..(1u64 << self.left) {
            let needed = self.neighborhood(l_mask);
            for r_mask in 0u64..(1u64 << self.right) {
                if needed & !r_mask == 0 {
                    let k = (l_mask.count_ones() + r_mask.count_ones()) as usize;
                    counts[k] += &BigUint::one();
                }
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edgeless_graph_counts_everything() {
        let g = BipartiteGraph::new(2, 3, vec![]);
        // Every subset of 5 vertices is independent: 2^5.
        assert_eq!(g.independent_set_count(), BigUint::from_u64(32));
        let s: Vec<u64> = g
            .closed_subset_counts()
            .iter()
            .map(|c| c.to_u64().unwrap())
            .collect();
        // |S(g,k)| = C(5,k).
        assert_eq!(s, vec![1, 5, 10, 10, 5, 1]);
    }

    #[test]
    fn single_edge() {
        let g = BipartiteGraph::new(1, 1, vec![(0, 0)]);
        // Independent sets of K2: {}, {a}, {b} → 3.
        assert_eq!(g.independent_set_count(), BigUint::from_u64(3));
        // S(g): {}, {b}, {a,b} → sizes 0,1,2.
        let s: Vec<u64> = g
            .closed_subset_counts()
            .iter()
            .map(|c| c.to_u64().unwrap())
            .collect();
        assert_eq!(s, vec![1, 1, 1]);
    }

    #[test]
    fn bijection_between_is_and_s() {
        // Lemma B.3's bijection: |IS(g)| = Σ_k |S(g,k)|.
        let g = BipartiteGraph::new(3, 3, vec![(0, 0), (0, 1), (1, 1), (2, 2)]);
        let total: BigUint = g
            .closed_subset_counts()
            .iter()
            .fold(BigUint::zero(), |acc, c| acc + c.clone());
        assert_eq!(total, g.independent_set_count());
    }

    #[test]
    fn complete_bipartite_k22() {
        let g = BipartiteGraph::new(2, 2, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        // IS(K_{2,2}): subsets of one side only: 4 + 4 − 1 = 7.
        assert_eq!(g.independent_set_count(), BigUint::from_u64(7));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_edges() {
        BipartiteGraph::new(1, 1, vec![(1, 0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_edges() {
        BipartiteGraph::new(2, 2, vec![(0, 0), (0, 0)]);
    }
}
