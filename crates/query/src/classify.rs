//! Complexity classification of exact Shapley computation, per the
//! paper's dichotomies.

use std::collections::{HashMap, HashSet};

use crate::analysis::{
    has_self_join, is_hierarchical, is_polarity_consistent, non_hierarchical_path,
    non_hierarchical_triplets,
};
use crate::ast::ConjunctiveQuery;

/// The data complexity of computing `Shapley(D, q, f)` exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactComplexity {
    /// Polynomial time: `q` is hierarchical (Theorem 3.1, positive side).
    TractableHierarchical,
    /// Polynomial time: `q` is *not* hierarchical but has no
    /// non-hierarchical path given the exogenous relations — the
    /// `ExoShap` rewriting applies (Theorem 4.3, positive side).
    TractableViaExoShap,
    /// `FP^{#P}`-complete (Theorem 3.1 / 4.3, hardness side).
    FpSharpPComplete {
        /// Human-readable witness (a non-hierarchical path description).
        witness: String,
    },
    /// `q` has self-joins and matches the sufficient hardness condition
    /// of Theorem B.5 (polarity-consistent, with a non-hierarchical
    /// triplet whose middle relation occurs only once).
    SelfJoinHard {
        /// Human-readable witness triplet.
        witness: String,
    },
    /// `q` has self-joins and no known classification: the dichotomy for
    /// self-joins is open (Section 6).
    OpenSelfJoins,
}

impl ExactComplexity {
    /// Is exact computation known to be polynomial?
    pub fn is_tractable(&self) -> bool {
        matches!(
            self,
            ExactComplexity::TractableHierarchical | ExactComplexity::TractableViaExoShap
        )
    }
}

impl std::fmt::Display for ExactComplexity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExactComplexity::TractableHierarchical => write!(f, "PTIME (hierarchical)"),
            ExactComplexity::TractableViaExoShap => write!(f, "PTIME (ExoShap)"),
            ExactComplexity::FpSharpPComplete { witness } => {
                write!(f, "FP#P-complete ({witness})")
            }
            ExactComplexity::SelfJoinHard { witness } => {
                write!(f, "FP#P-complete via Thm B.5 ({witness})")
            }
            ExactComplexity::OpenSelfJoins => write!(f, "open (self-joins)"),
        }
    }
}

/// Classifies `q` under Theorem 3.1 (no exogenous-relation knowledge,
/// i.e. `X = ∅`).
pub fn classify(q: &ConjunctiveQuery) -> ExactComplexity {
    classify_with_exo(q, &HashSet::new())
}

/// Classifies `q` under Theorem 4.3 given the set `exo` of exogenous
/// relations. With `exo = ∅` this coincides with Theorem 3.1.
pub fn classify_with_exo(q: &ConjunctiveQuery, exo: &HashSet<String>) -> ExactComplexity {
    if has_self_join(q) {
        return classify_self_join(q, exo);
    }
    if is_hierarchical(q) {
        return ExactComplexity::TractableHierarchical;
    }
    match non_hierarchical_path(q, exo) {
        None => ExactComplexity::TractableViaExoShap,
        Some(p) => {
            let path: Vec<&str> = p.path.iter().map(|&v| q.var_name(v)).collect();
            ExactComplexity::FpSharpPComplete {
                witness: format!(
                    "path {} between {} and {}",
                    path.join("-"),
                    q.render_atom(&q.atoms()[p.atom_x]),
                    q.render_atom(&q.atoms()[p.atom_y]),
                ),
            }
        }
    }
}

fn classify_self_join(q: &ConjunctiveQuery, exo: &HashSet<String>) -> ExactComplexity {
    // Theorem B.5: a polarity-consistent CQ¬ with a non-hierarchical
    // triplet (αx, αx,y, αy) whose middle relation occurs only once is
    // FP#P-complete. The theorem is stated without exogenous relations;
    // require additionally that none of the triplet's relations is
    // declared exogenous, so the reduction's endogenous facts stay legal.
    if is_polarity_consistent(q) {
        let mut occurrences: HashMap<&str, usize> = HashMap::new();
        for a in q.atoms() {
            *occurrences.entry(a.relation.as_str()).or_insert(0) += 1;
        }
        for t in non_hierarchical_triplets(q) {
            let mid_rel = q.atoms()[t.atom_xy].relation.as_str();
            let rels = [
                q.atoms()[t.atom_x].relation.as_str(),
                mid_rel,
                q.atoms()[t.atom_y].relation.as_str(),
            ];
            if occurrences[mid_rel] == 1 && rels.iter().all(|r| !exo.contains(*r)) {
                return ExactComplexity::SelfJoinHard {
                    witness: format!(
                        "triplet ({}, {}, {})",
                        q.render_atom(&q.atoms()[t.atom_x]),
                        q.render_atom(&q.atoms()[t.atom_xy]),
                        q.render_atom(&q.atoms()[t.atom_y]),
                    ),
                };
            }
        }
    }
    ExactComplexity::OpenSelfJoins
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;

    fn exo(names: &[&str]) -> HashSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn theorem_3_1_classification() {
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        assert_eq!(classify(&q1), ExactComplexity::TractableHierarchical);

        let q2 = parse_cq("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')").unwrap();
        assert!(matches!(
            classify(&q2),
            ExactComplexity::FpSharpPComplete { .. }
        ));

        for text in [
            "q() :- R(x), S(x, y), T(y)",
            "q() :- !R(x), S(x, y), !T(y)",
            "q() :- R(x), !S(x, y), T(y)",
            "q() :- R(x), S(x, y), !T(y)",
        ] {
            let q = parse_cq(text).unwrap();
            assert!(
                matches!(classify(&q), ExactComplexity::FpSharpPComplete { .. }),
                "{text}"
            );
        }
    }

    #[test]
    fn theorem_4_3_reclassifies_with_exogenous_relations() {
        // Example 4.1: intractable per Thm 3.1, tractable once Pub and
        // Citations are exogenous (even Citations alone suffices).
        let q = parse_cq("q() :- Author(x, y), Pub(x, z), Citations(z, w)").unwrap();
        assert!(matches!(
            classify(&q),
            ExactComplexity::FpSharpPComplete { .. }
        ));
        assert_eq!(
            classify_with_exo(&q, &exo(&["Pub", "Citations"])),
            ExactComplexity::TractableViaExoShap
        );
        assert_eq!(
            classify_with_exo(&q, &exo(&["Citations"])),
            ExactComplexity::TractableViaExoShap
        );

        // Example 4.1 / Section 4: q2 with Stud and Course exogenous.
        let q2 = parse_cq("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')").unwrap();
        assert_eq!(
            classify_with_exo(&q2, &exo(&["Stud", "Course"])),
            ExactComplexity::TractableViaExoShap
        );

        // q_R¬ST stays hard when only S is exogenous (Section 4.1).
        let qrnst = parse_cq("q() :- R(x), !S(x, y), T(y)").unwrap();
        assert!(matches!(
            classify_with_exo(&qrnst, &exo(&["S"])),
            ExactComplexity::FpSharpPComplete { .. }
        ));
    }

    #[test]
    fn hierarchical_stays_tractable_with_exo() {
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        assert_eq!(
            classify_with_exo(&q1, &exo(&["Stud"])),
            ExactComplexity::TractableHierarchical
        );
    }

    #[test]
    fn theorem_b5_self_joins() {
        // ¬Citizen(x), Married(x,y), ¬Citizen(y): polarity consistent,
        // Married occurs once → hard.
        let q = parse_cq("q() :- !Citizen(x), Married(x, y), !Citizen(y)").unwrap();
        assert!(matches!(classify(&q), ExactComplexity::SelfJoinHard { .. }));

        // Unemployed(x), Married(x,y), Unemployed(y): same but positive.
        let q2 = parse_cq("q() :- Unemployed(x), Married(x, y), Unemployed(y)").unwrap();
        assert!(matches!(
            classify(&q2),
            ExactComplexity::SelfJoinHard { .. }
        ));

        // R(x,y), ¬R(y,x): mixed polarity → Thm B.5 silent.
        let q3 = parse_cq("q() :- R(x, y), !R(y, x)").unwrap();
        assert_eq!(classify(&q3), ExactComplexity::OpenSelfJoins);

        // Hierarchical self-join: also open under our classifier.
        let q4 = parse_cq("q() :- R(x, y), R(y, x)").unwrap();
        assert_eq!(classify(&q4), ExactComplexity::OpenSelfJoins);
    }

    #[test]
    fn display_strings() {
        let q2 = parse_cq("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')").unwrap();
        let c = classify(&q2);
        assert!(c.to_string().starts_with("FP#P-complete"));
        assert!(!c.is_tractable());
        assert!(ExactComplexity::TractableHierarchical.is_tractable());
    }
}
