//! Conjunctive queries with safe negation (CQ¬) and their unions (UCQ¬).
//!
//! This crate implements the query language of the paper (Section 2) and
//! every *structural* notion its dichotomies are stated in terms of:
//!
//! * safety of negation — every variable of a negated atom occurs in a
//!   positive atom;
//! * self-joins — two atoms over the same relation symbol;
//! * the *hierarchical* property — for all variables `x`, `y`:
//!   `Ax ⊆ Ay`, `Ay ⊆ Ax`, or `Ax ∩ Ay = ∅` (Theorem 3.1's criterion);
//! * non-hierarchical *triplets* `(αx, αx,y, αy)` and the polarity-aware
//!   triplet selection of Lemma B.4;
//! * the Gaifman graph `G(q)` and the exogenous atom graph `g_x(q)`;
//! * non-hierarchical *paths* (Theorem 4.3's criterion, which accounts
//!   for exogenous relations);
//! * polarity consistency (Section 5.2) and positive connectivity
//!   (Theorem 5.1's hypothesis);
//! * conjunction of a union's disjuncts with variables renamed apart —
//!   the subset queries of the inclusion–exclusion counting identity;
//! * a classifier mapping a query to the complexity of its exact Shapley
//!   computation under the paper's dichotomies.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod classify;
pub mod conjunction;
pub mod error;
pub mod parser;

pub use analysis::{
    exogenous_atom_components, gaifman_adjacency, has_self_join, is_hierarchical,
    is_polarity_consistent, is_positively_connected, is_safe, non_hierarchical_path,
    non_hierarchical_triplets, polarity_map, preferred_triplet, NonHierPath, Polarity, Triplet,
    TripletVariant,
};
pub use ast::{Atom, ConjunctiveQuery, QueryBuilder, Term, UnionQuery, Var};
pub use classify::{classify, classify_with_exo, ExactComplexity};
pub use conjunction::{conjoin_disjuncts, self_join_witness, subset_label, DisjunctConjunction};
pub use error::QueryError;
pub use parser::{parse_cq, parse_ucq};
