//! Structural analysis of CQ¬s: every notion the paper's dichotomies are
//! stated in terms of.

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

use crate::ast::{Atom, ConjunctiveQuery, UnionQuery, Var};

/// Is negation safe? (Guaranteed by construction for queries built through
/// this crate; exposed for completeness and for externally-built ASTs.)
pub fn is_safe(q: &ConjunctiveQuery) -> bool {
    let positive: BTreeSet<Var> = q
        .atoms()
        .iter()
        .filter(|a| !a.negated)
        .flat_map(Atom::variables)
        .collect();
    q.atoms()
        .iter()
        .filter(|a| a.negated)
        .all(|a| a.variables().iter().all(|v| positive.contains(v)))
}

/// Does `q` contain a self-join (two distinct atoms over one relation)?
pub fn has_self_join(q: &ConjunctiveQuery) -> bool {
    let mut seen = HashSet::new();
    q.atoms().iter().any(|a| !seen.insert(a.relation.as_str()))
}

/// Is `q` hierarchical? For all variables `x`, `y`: `Ax ⊆ Ay`,
/// `Ay ⊆ Ax`, or `Ax ∩ Ay = ∅` (Dalvi–Suciu; Theorem 3.1's criterion,
/// extended verbatim to CQ¬ as in the paper).
pub fn is_hierarchical(q: &ConjunctiveQuery) -> bool {
    let sets: Vec<BTreeSet<usize>> = q.vars().map(|v| q.atoms_with_var(v)).collect();
    for i in 0..sets.len() {
        for j in i + 1..sets.len() {
            let (a, b) = (&sets[i], &sets[j]);
            let disjoint = a.is_disjoint(b);
            let sub = a.is_subset(b) || b.is_subset(a);
            if !disjoint && !sub {
                return false;
            }
        }
    }
    true
}

/// A non-hierarchical triplet: `var_x` occurs in `atom_x` but not
/// `atom_y`, `var_y` in `atom_y` but not `atom_x`, and both occur in
/// `atom_xy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Triplet {
    /// Index of `αx`.
    pub atom_x: usize,
    /// Index of `αx,y`.
    pub atom_xy: usize,
    /// Index of `αy`.
    pub atom_y: usize,
    /// The variable `x`.
    pub var_x: Var,
    /// The variable `y`.
    pub var_y: Var,
}

/// All non-hierarchical triplets of `q` (empty iff `q` is hierarchical).
pub fn non_hierarchical_triplets(q: &ConjunctiveQuery) -> Vec<Triplet> {
    let sets: Vec<BTreeSet<usize>> = q.vars().map(|v| q.atoms_with_var(v)).collect();
    let mut out = Vec::new();
    for (i, a) in sets.iter().enumerate() {
        for (j, b) in sets.iter().enumerate() {
            if i == j {
                continue;
            }
            let only_x: Vec<usize> = a.difference(b).copied().collect();
            let only_y: Vec<usize> = b.difference(a).copied().collect();
            let both: Vec<usize> = a.intersection(b).copied().collect();
            for &ax in &only_x {
                for &ay in &only_y {
                    for &axy in &both {
                        out.push(Triplet {
                            atom_x: ax,
                            atom_xy: axy,
                            atom_y: ay,
                            var_x: Var(i as u32),
                            var_y: Var(j as u32),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Which of the four basic hard queries a triplet's polarities match
/// (Section 3: `q_RST`, `q_¬RS¬T`, `q_R¬ST`, `q_RS¬T`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripletVariant {
    /// `R(x), S(x,y), T(y)` — all positive.
    Rst,
    /// `¬R(x), S(x,y), ¬T(y)` — positive middle, negative endpoints.
    NegRSNegT,
    /// `R(x), ¬S(x,y), T(y)` — negative middle, positive endpoints.
    RNegST,
    /// `R(x), S(x,y), ¬T(y)` — positive middle, exactly one negative
    /// endpoint (oriented so the negative endpoint is `T`).
    RSNegT,
}

/// Selects a triplet usable by the Lemma B.4 reduction, together with the
/// basic hard query it reduces from.
///
/// Lemma B.4 shows every non-hierarchical *safe* CQ¬ has a triplet in one
/// of the four [`TripletVariant`] categories; triplets with a negated
/// middle atom and a negated endpoint are skipped. For the `RSNegT`
/// variant the triplet is oriented so that `atom_y` is the negated
/// endpoint. Returns `None` iff `q` is hierarchical.
pub fn preferred_triplet(q: &ConjunctiveQuery) -> Option<(Triplet, TripletVariant)> {
    let mut fallback: Option<(Triplet, TripletVariant)> = None;
    for t in non_hierarchical_triplets(q) {
        let nx = q.atoms()[t.atom_x].negated;
        let nxy = q.atoms()[t.atom_xy].negated;
        let ny = q.atoms()[t.atom_y].negated;
        let classified = if !nxy {
            match (nx, ny) {
                (false, false) => Some((t, TripletVariant::Rst)),
                (true, true) => Some((t, TripletVariant::NegRSNegT)),
                (false, true) => Some((t, TripletVariant::RSNegT)),
                (true, false) => {
                    // Swap the endpoints so the negative one plays T.
                    let swapped = Triplet {
                        atom_x: t.atom_y,
                        atom_xy: t.atom_xy,
                        atom_y: t.atom_x,
                        var_x: t.var_y,
                        var_y: t.var_x,
                    };
                    Some((swapped, TripletVariant::RSNegT))
                }
            }
        } else if !nx && !ny {
            Some((t, TripletVariant::RNegST))
        } else {
            None
        };
        if let Some((t, v)) = classified {
            if v == TripletVariant::Rst {
                return Some((t, v)); // strongest preference: reuse prior art
            }
            fallback.get_or_insert((t, v));
        }
    }
    fallback
}

/// Gaifman-graph adjacency of `q`: `adj[v]` is the set of variables
/// co-occurring with `v` in some atom (positive or negative).
pub fn gaifman_adjacency(q: &ConjunctiveQuery) -> Vec<BTreeSet<Var>> {
    let mut adj = vec![BTreeSet::new(); q.var_count()];
    for atom in q.atoms() {
        let vars: Vec<Var> = atom.variables().into_iter().collect();
        for (i, &u) in vars.iter().enumerate() {
            for &w in &vars[i + 1..] {
                adj[u.index()].insert(w);
                adj[w.index()].insert(u);
            }
        }
    }
    adj
}

/// Is `q` *positively connected*: every two variables are connected in
/// the Gaifman graph through positive atoms only (Theorem 5.1's
/// hypothesis)?
pub fn is_positively_connected(q: &ConjunctiveQuery) -> bool {
    if q.var_count() <= 1 {
        return true;
    }
    let mut adj = vec![BTreeSet::new(); q.var_count()];
    for atom in q.atoms().iter().filter(|a| !a.negated) {
        let vars: Vec<Var> = atom.variables().into_iter().collect();
        for (i, &u) in vars.iter().enumerate() {
            for &w in &vars[i + 1..] {
                adj[u.index()].insert(w);
                adj[w.index()].insert(u);
            }
        }
    }
    let mut seen = vec![false; q.var_count()];
    let mut queue = VecDeque::from([Var(0)]);
    seen[0] = true;
    let mut reached = 1;
    while let Some(v) = queue.pop_front() {
        for &w in &adj[v.index()] {
            if !seen[w.index()] {
                seen[w.index()] = true;
                reached += 1;
                queue.push_back(w);
            }
        }
    }
    reached == q.var_count()
}

/// Polarity of a relation's occurrences within a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// Occurs only in positive atoms.
    Positive,
    /// Occurs only in negative atoms.
    Negative,
    /// Occurs in both (not polarity-consistent).
    Mixed,
}

/// Maps each relation of `q` to its occurrence polarity.
pub fn polarity_map(q: &ConjunctiveQuery) -> BTreeMap<String, Polarity> {
    let mut out: BTreeMap<String, Polarity> = BTreeMap::new();
    for atom in q.atoms() {
        let p = if atom.negated {
            Polarity::Negative
        } else {
            Polarity::Positive
        };
        out.entry(atom.relation.clone())
            .and_modify(|e| {
                if *e != p {
                    *e = Polarity::Mixed;
                }
            })
            .or_insert(p);
    }
    out
}

/// Maps each relation of a UCQ¬ to its polarity across *all* disjuncts
/// (Section 5.2's whole-query polarity consistency).
pub fn polarity_map_union(u: &UnionQuery) -> BTreeMap<String, Polarity> {
    let mut out: BTreeMap<String, Polarity> = BTreeMap::new();
    for d in u.disjuncts() {
        for (rel, p) in polarity_map(d) {
            out.entry(rel)
                .and_modify(|e| {
                    if *e != p {
                        *e = Polarity::Mixed;
                    }
                })
                .or_insert(p);
        }
    }
    out
}

/// Is every relation of `q` polarity consistent?
pub fn is_polarity_consistent(q: &ConjunctiveQuery) -> bool {
    polarity_map(q).values().all(|p| *p != Polarity::Mixed)
}

/// Is the *whole union* polarity consistent? (Strictly stronger than each
/// disjunct being polarity consistent — Proposition 5.8 separates them.)
pub fn is_polarity_consistent_union(u: &UnionQuery) -> bool {
    polarity_map_union(u)
        .values()
        .all(|p| *p != Polarity::Mixed)
}

/// Variables occurring *only* in atoms over relations in `exo`
/// ("exogenous variables", Section 4.2).
pub fn exogenous_vars(q: &ConjunctiveQuery, exo: &HashSet<String>) -> BTreeSet<Var> {
    q.vars()
        .filter(|&v| {
            q.atoms_with_var(v)
                .iter()
                .all(|&a| exo.contains(&q.atoms()[a].relation))
        })
        .collect()
}

/// Connected components of the exogenous atom graph `g_x(q)`: vertices
/// are atoms over relations in `exo`; edges join atoms sharing an
/// exogenous variable. Returns components as sorted atom-index lists.
pub fn exogenous_atom_components(q: &ConjunctiveQuery, exo: &HashSet<String>) -> Vec<Vec<usize>> {
    let exo_atoms: Vec<usize> = q
        .atoms()
        .iter()
        .enumerate()
        .filter(|(_, a)| exo.contains(&a.relation))
        .map(|(i, _)| i)
        .collect();
    let exo_vs = exogenous_vars(q, exo);
    // Union-find over exo atom indices.
    let mut parent: BTreeMap<usize, usize> = exo_atoms.iter().map(|&a| (a, a)).collect();
    fn find(parent: &mut BTreeMap<usize, usize>, a: usize) -> usize {
        let p = parent[&a];
        if p == a {
            a
        } else {
            let root = find(parent, p);
            parent.insert(a, root);
            root
        }
    }
    for &v in &exo_vs {
        let members: Vec<usize> = exo_atoms
            .iter()
            .copied()
            .filter(|&a| q.atoms()[a].contains_var(v))
            .collect();
        for w in members.windows(2) {
            let (ra, rb) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            if ra != rb {
                parent.insert(ra, rb);
            }
        }
    }
    let mut comps: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &a in &exo_atoms {
        let root = find(&mut parent, a);
        comps.entry(root).or_default().push(a);
    }
    comps.into_values().collect()
}

/// A witness that `q` has a non-hierarchical path (Theorem 4.3's
/// hardness criterion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonHierPath {
    /// Index of the inducing atom `αx` (non-exogenous relation).
    pub atom_x: usize,
    /// Index of the inducing atom `αy` (non-exogenous relation).
    pub atom_y: usize,
    /// The variable `x ∈ Vars(αx) ∖ Vars(αy)`.
    pub var_x: Var,
    /// The variable `y ∈ Vars(αy) ∖ Vars(αx)`.
    pub var_y: Var,
    /// The connecting path `x = p₀ − p₁ − ⋯ − pₖ = y` in `G(q)` avoiding
    /// the other variables of `αx` and `αy`.
    pub path: Vec<Var>,
}

/// Searches for a non-hierarchical path in `q` with respect to the set
/// `exo` of exogenous relations (Definition in Section 4.1):
///
/// there are atoms `αx`, `αy` over non-exogenous relations and variables
/// `x ∈ αx ∖ αy`, `y ∈ αy ∖ αx` such that `G(q)`, after removing every
/// variable of `αx` or `αy` other than `x` and `y`, connects `x` to `y`.
///
/// With `exo = ∅` this is equivalent to non-hierarchicality (checked by
/// property tests), so Theorem 4.3 strictly generalizes Theorem 3.1.
pub fn non_hierarchical_path(q: &ConjunctiveQuery, exo: &HashSet<String>) -> Option<NonHierPath> {
    let adj = gaifman_adjacency(q);
    let candidate_atoms: Vec<usize> = q
        .atoms()
        .iter()
        .enumerate()
        .filter(|(_, a)| !exo.contains(&a.relation))
        .map(|(i, _)| i)
        .collect();
    for &ax in &candidate_atoms {
        for &ay in &candidate_atoms {
            if ax == ay {
                continue;
            }
            let vx_set = q.atoms()[ax].variables();
            let vy_set = q.atoms()[ay].variables();
            for &x in vx_set.difference(&vy_set) {
                for &y in vy_set.difference(&vx_set) {
                    let mut removed: BTreeSet<Var> = vx_set.union(&vy_set).copied().collect();
                    removed.remove(&x);
                    removed.remove(&y);
                    if let Some(path) = bfs_path(&adj, x, y, &removed) {
                        return Some(NonHierPath {
                            atom_x: ax,
                            atom_y: ay,
                            var_x: x,
                            var_y: y,
                            path,
                        });
                    }
                }
            }
        }
    }
    None
}

fn bfs_path(
    adj: &[BTreeSet<Var>],
    from: Var,
    to: Var,
    removed: &BTreeSet<Var>,
) -> Option<Vec<Var>> {
    if removed.contains(&from) || removed.contains(&to) {
        return None;
    }
    let mut pred: BTreeMap<Var, Var> = BTreeMap::new();
    let mut queue = VecDeque::from([from]);
    let mut seen: BTreeSet<Var> = BTreeSet::from([from]);
    while let Some(v) = queue.pop_front() {
        if v == to {
            let mut path = vec![to];
            let mut cur = to;
            while let Some(&p) = pred.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &w in &adj[v.index()] {
            if !removed.contains(&w) && seen.insert(w) {
                pred.insert(w, v);
                queue.push_back(w);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_cq, parse_ucq};

    fn exo(names: &[&str]) -> HashSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    // ---------------- Example 2.2 ----------------

    #[test]
    fn example_2_2_hierarchy() {
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        let q2 = parse_cq("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')").unwrap();
        let q3 =
            parse_cq("q3() :- Adv(x, y), Adv(x, z), !TA(y), !TA(z), Reg(y, 'IC'), Reg(z, 'DB')")
                .unwrap();
        let q4 =
            parse_cq("q4() :- Adv(x, y), Adv(x, z), TA(y), !TA(z), Reg(z, w), !Reg(y, w)").unwrap();
        assert!(is_hierarchical(&q1));
        assert!(!is_hierarchical(&q2));
        assert!(!is_hierarchical(&q3));
        assert!(!is_hierarchical(&q4));
        assert!(!has_self_join(&q1));
        assert!(!has_self_join(&q2));
        assert!(has_self_join(&q3));
        assert!(has_self_join(&q4));
        assert!(non_hierarchical_triplets(&q1).is_empty());
        assert!(!non_hierarchical_triplets(&q2).is_empty());
    }

    #[test]
    fn example_5_4_polarity() {
        let q3 =
            parse_cq("q3() :- Adv(x, y), Adv(x, z), !TA(y), !TA(z), Reg(y, 'IC'), Reg(z, 'DB')")
                .unwrap();
        let q4 =
            parse_cq("q4() :- Adv(x, y), Adv(x, z), TA(y), !TA(z), Reg(z, w), !Reg(y, w)").unwrap();
        assert!(is_polarity_consistent(&q3));
        assert!(!is_polarity_consistent(&q4));
        let m = polarity_map(&q4);
        assert_eq!(m["Adv"], Polarity::Positive);
        assert_eq!(m["TA"], Polarity::Mixed);
        assert_eq!(m["Reg"], Polarity::Mixed);
    }

    // ---------------- basic hard queries ----------------

    #[test]
    fn basic_queries_triplets() {
        let cases = [
            ("q() :- R(x), S(x, y), T(y)", TripletVariant::Rst),
            ("q() :- !R(x), S(x, y), !T(y)", TripletVariant::NegRSNegT),
            ("q() :- R(x), !S(x, y), T(y)", TripletVariant::RNegST),
            ("q() :- R(x), S(x, y), !T(y)", TripletVariant::RSNegT),
            ("q() :- !R(x), S(x, y), T(y)", TripletVariant::RSNegT), // swapped orientation
        ];
        for (text, expected) in cases {
            let q = parse_cq(text).unwrap();
            let (t, v) = preferred_triplet(&q).unwrap();
            assert_eq!(v, expected, "{text}");
            if v == TripletVariant::RSNegT {
                assert!(
                    q.atoms()[t.atom_y].negated,
                    "{text}: T endpoint must be negated"
                );
                assert!(
                    !q.atoms()[t.atom_x].negated,
                    "{text}: R endpoint must be positive"
                );
            }
        }
        let hier = parse_cq("q() :- R(x), S(x, y)").unwrap();
        assert!(preferred_triplet(&hier).is_none());
    }

    #[test]
    fn skips_unusable_triplets_but_finds_alternate() {
        // ¬S middle with a negative endpoint is unusable, but safety forces
        // positive atoms covering x and y, which provide an alternate
        // triplet. Here: R(x), !S(x,y), !T(y), U(y) — triplet (R, S, T)
        // is unusable; (R, S, U) works as RNegST.
        let q = parse_cq("q() :- R(x), !S(x, y), !T(y), U(y)").unwrap();
        let (t, v) = preferred_triplet(&q).unwrap();
        match v {
            TripletVariant::RNegST => {
                assert!(q.atoms()[t.atom_xy].negated);
                assert!(!q.atoms()[t.atom_x].negated);
                assert!(!q.atoms()[t.atom_y].negated);
            }
            TripletVariant::RSNegT | TripletVariant::Rst | TripletVariant::NegRSNegT => {
                // Another valid category is acceptable as long as the
                // middle/endpoint polarities match its definition.
                let (nx, nxy, ny) = (
                    q.atoms()[t.atom_x].negated,
                    q.atoms()[t.atom_xy].negated,
                    q.atoms()[t.atom_y].negated,
                );
                match v {
                    TripletVariant::Rst => assert!(!nx && !nxy && !ny),
                    TripletVariant::NegRSNegT => assert!(nx && !nxy && ny),
                    TripletVariant::RSNegT => assert!(!nx && !nxy && ny),
                    TripletVariant::RNegST => unreachable!(),
                }
            }
        }
    }

    // ---------------- Section 4.1 motivating pair ----------------

    #[test]
    fn section_4_1_pair() {
        let x = exo(&["S", "P"]);
        let q = parse_cq("q() :- !R(x, w), S(z, x), !P(z, w), T(y, w)").unwrap();
        let qp = parse_cq("q2() :- !R(x, w), S(z, x), !P(z, y), T(y, w)").unwrap();
        assert!(!is_hierarchical(&q));
        assert!(!is_hierarchical(&qp));
        assert!(
            non_hierarchical_path(&q, &x).is_none(),
            "q is tractable given X"
        );
        let path = non_hierarchical_path(&qp, &x).expect("q' is hard given X");
        // The path connects a variable of R with a variable of T.
        assert_ne!(path.atom_x, path.atom_y);
    }

    // ---------------- Example 4.2 ----------------

    #[test]
    fn example_4_2_paths() {
        let q = parse_cq("q() :- !R(x), Q(x, v), S(x, z), U(z, w), !P(w, y), T(y, v)").unwrap();
        let x = exo(&["Q", "S", "U", "P"]);
        let found = non_hierarchical_path(&q, &x).expect("q has a non-hierarchical path");
        // Any witness must be induced by the only two non-exogenous atoms,
        // ¬R(x) and T(y,v). (The paper illustrates the path x−z−w−y; the
        // search may return the shorter witness x−v first, which is equally
        // valid: v ∈ Vars(T) ∖ Vars(R) and the edge x−v avoids y.)
        let rels = [
            q.atoms()[found.atom_x].relation.as_str(),
            q.atoms()[found.atom_y].relation.as_str(),
        ];
        assert!(rels == ["R", "T"] || rels == ["T", "R"]);
        // The paper's specific witness also validates: x−z−w−y avoiding v.
        let name = |n: &str| q.var_by_name(n).unwrap();
        let adj = gaifman_adjacency(&q);
        assert!(adj[name("x").index()].contains(&name("z")));
        assert!(adj[name("z").index()].contains(&name("w")));
        assert!(adj[name("w").index()].contains(&name("y")));

        let qp =
            parse_cq("q2() :- U(t, r), !T(y), Q(y, w), !V(t), R(x, y), !S(x, z), O(z), P(u, y, w)")
                .unwrap();
        let xp = exo(&["R", "S", "O", "P", "V"]);
        assert!(
            non_hierarchical_path(&qp, &xp).is_none(),
            "q' has no non-hierarchical path"
        );
    }

    #[test]
    fn example_4_5_components() {
        let qp =
            parse_cq("q2() :- U(t, r), !T(y), Q(y, w), !V(t), R(x, y), !S(x, z), O(z), P(u, y, w)")
                .unwrap();
        let xp = exo(&["R", "S", "O", "P", "V"]);
        // Exogenous variables: x, z (only in R/S/O), u (only in P), t?
        // t occurs in U (non-exo) and V (exo) → not exogenous.
        let evs = exogenous_vars(&qp, &xp);
        let names: Vec<&str> = evs.iter().map(|&v| qp.var_name(v)).collect();
        assert_eq!(names, vec!["x", "z", "u"]);
        // Components: {V}, {R, S, O} (via x, z), {P} (u private).
        let comps = exogenous_atom_components(&qp, &xp);
        let render: Vec<Vec<&str>> = comps
            .iter()
            .map(|c| c.iter().map(|&i| qp.atoms()[i].relation.as_str()).collect())
            .collect();
        assert_eq!(comps.len(), 3);
        assert!(render.contains(&vec!["V"]));
        assert!(render.contains(&vec!["R", "S", "O"]));
        assert!(render.contains(&vec!["P"]));
    }

    // ---------------- coincidence with hierarchy at X = ∅ ----------------

    #[test]
    fn path_with_empty_exo_iff_non_hierarchical() {
        let queries = [
            "q() :- Stud(x), !TA(x), Reg(x, y)",
            "q() :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')",
            "q() :- R(x), S(x, y), T(y)",
            "q() :- !R(x), S(x, y), !T(y)",
            "q() :- R(x), !S(x, y), T(y)",
            "q() :- R(x), S(x, y), !T(y)",
            "q() :- A(x), B(x, y), C(y, z), D(z)",
            "q() :- A(x, y)",
            "q() :- A(x, y), B(x, y)",
            "q() :- A(x), B(x, y), C(y)",
            "q() :- !R(x, w), S(z, x), !P(z, w), T(y, w)",
        ];
        let none = exo(&[]);
        for text in queries {
            let q = parse_cq(text).unwrap();
            assert_eq!(
                non_hierarchical_path(&q, &none).is_some(),
                !is_hierarchical(&q),
                "{text}"
            );
        }
    }

    // ---------------- positive connectivity ----------------

    #[test]
    fn positive_connectivity() {
        let q = parse_cq("q() :- R(x), S(x, y), !R(y)").unwrap();
        assert!(is_positively_connected(&q));
        let q2 = parse_cq("q() :- R(x), T(y), !S(x, y)").unwrap();
        assert!(
            !is_positively_connected(&q2),
            "x,y connected only through ¬S"
        );
        let q3 = parse_cq("q() :- R(x), T(y)").unwrap();
        assert!(!is_positively_connected(&q3));
        let q4 = parse_cq("q() :- R(x)").unwrap();
        assert!(is_positively_connected(&q4));
        let q5 = parse_cq("q() :- R('a')").unwrap();
        assert!(is_positively_connected(&q5));
    }

    // ---------------- UCQ polarity ----------------

    #[test]
    fn qsat_union_polarity() {
        let u = parse_ucq(
            "q1() :- C(x1, x2, x3, v1, v2, v3), T(x1, v1), T(x2, v2), T(x3, v3)\n\
             q2() :- V(x), !T(x, 1), !T(x, 0)\n\
             q3() :- T(x, 1), T(x, 0)\n\
             q4() :- R(0)\n",
        )
        .unwrap();
        // Every disjunct is polarity consistent...
        for d in u.disjuncts() {
            assert!(is_polarity_consistent(d), "{d}");
        }
        // ...but the union is not (T flips polarity across disjuncts).
        assert!(!is_polarity_consistent_union(&u));
        assert_eq!(polarity_map_union(&u)["T"], Polarity::Mixed);
        assert_eq!(polarity_map_union(&u)["R"], Polarity::Positive);
    }

    #[test]
    fn safety_check() {
        let q = parse_cq("q() :- R(x), !S(x)").unwrap();
        assert!(is_safe(&q));
    }
}
