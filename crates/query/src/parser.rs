//! Datalog-style parser for CQ¬ and UCQ¬.
//!
//! ```text
//! q2(x) :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')
//! ```
//!
//! * the head is `name(vars…)`; Boolean queries use `name()`;
//! * `!` or `¬` negates the following atom;
//! * in term position: a lowercase-initial identifier is a **variable**;
//!   an uppercase-initial identifier, a number, or a `'quoted'` token is a
//!   **constant** (matching the paper's convention where `Reg(x, IC)`
//!   mixes a variable `x` with the constant `IC`);
//! * a UCQ¬ is several rules, one per line (or separated by `;`), unioned
//!   in order; blank lines and `#` comments are ignored.

use crate::ast::{ConjunctiveQuery, QueryBuilder, Term, UnionQuery};
use crate::error::QueryError;

/// Parses a single CQ¬ rule.
pub fn parse_cq(input: &str) -> Result<ConjunctiveQuery, QueryError> {
    parse_rule(input, 1)
}

/// Parses a UCQ¬: one rule per line or `;`-separated. The union is named
/// after the first rule.
pub fn parse_ucq(input: &str) -> Result<UnionQuery, QueryError> {
    let mut disjuncts = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        for piece in line.split(';') {
            let body = piece.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            disjuncts.push(parse_rule(body, lineno + 1)?);
        }
    }
    let name = disjuncts
        .first()
        .map(|d| d.name().to_string())
        .ok_or_else(|| QueryError::Malformed("union with no disjuncts".into()))?;
    UnionQuery::new(name, disjuncts)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Quoted(String),
    Number(String),
    LParen,
    RParen,
    Comma,
    Turnstile,
    Bang,
}

fn tokenize(s: &str, line: usize) -> Result<Vec<Tok>, QueryError> {
    let err = |message: String| QueryError::Parse { line, message };
    let mut out = Vec::new();
    let mut chars = s.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                out.push(Tok::RParen);
            }
            ',' => {
                chars.next();
                out.push(Tok::Comma);
            }
            '!' | '¬' => {
                chars.next();
                out.push(Tok::Bang);
            }
            ':' => {
                chars.next();
                if chars.next() != Some('-') {
                    return Err(err("expected `:-`".into()));
                }
                out.push(Tok::Turnstile);
            }
            '\'' | '"' => {
                let quote = c;
                chars.next();
                let mut lit = String::new();
                loop {
                    match chars.next() {
                        Some(ch) if ch == quote => break,
                        Some(ch) => lit.push(ch),
                        None => return Err(err("unterminated quoted constant".into())),
                    }
                }
                out.push(Tok::Quoted(lit));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut lit = String::new();
                lit.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        lit.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if lit == "-" {
                    return Err(err("stray `-`".into()));
                }
                out.push(Tok::Number(lit));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut lit = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        lit.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Ident(lit));
            }
            other => return Err(err(format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

fn parse_rule(input: &str, line: usize) -> Result<ConjunctiveQuery, QueryError> {
    let err = |message: String| QueryError::Parse { line, message };
    let toks = tokenize(input, line)?;
    let mut pos = 0usize;
    let next = |pos: &mut usize| -> Option<&Tok> {
        let t = toks.get(*pos);
        if t.is_some() {
            *pos += 1;
        }
        t
    };

    // Head: name ( vars… ) :-
    let name = match next(&mut pos) {
        Some(Tok::Ident(n)) => n.clone(),
        other => return Err(err(format!("expected query name, got {other:?}"))),
    };
    if next(&mut pos) != Some(&Tok::LParen) {
        return Err(err("expected `(` after query name".into()));
    }
    let mut builder = QueryBuilder::new(&name);
    let mut head_vars = Vec::new();
    loop {
        match next(&mut pos) {
            Some(Tok::RParen) => break,
            Some(Tok::Ident(v)) if starts_lower(v) => {
                head_vars.push(builder.var(v));
                match next(&mut pos) {
                    Some(Tok::Comma) => continue,
                    Some(Tok::RParen) => break,
                    other => {
                        return Err(err(format!("expected `,` or `)` in head, got {other:?}")))
                    }
                }
            }
            other => return Err(err(format!("expected head variable, got {other:?}"))),
        }
    }
    builder.head(head_vars);
    if next(&mut pos) != Some(&Tok::Turnstile) {
        return Err(err("expected `:-` after head".into()));
    }

    // Body: a nonempty comma-separated list of (possibly negated) atoms.
    loop {
        let negated = if toks.get(pos) == Some(&Tok::Bang) {
            pos += 1;
            true
        } else {
            false
        };
        let rel = match next(&mut pos) {
            Some(Tok::Ident(r)) => r.clone(),
            other => return Err(err(format!("expected relation name, got {other:?}"))),
        };
        if next(&mut pos) != Some(&Tok::LParen) {
            return Err(err(format!("expected `(` after relation {rel}")));
        }
        let mut terms: Vec<Term> = Vec::new();
        if toks.get(pos) == Some(&Tok::RParen) {
            pos += 1;
        } else {
            loop {
                let term = match next(&mut pos) {
                    Some(Tok::Ident(t)) if starts_lower(t) => Term::Var(builder.var(t)),
                    Some(Tok::Ident(t)) => Term::Const(t.clone()),
                    Some(Tok::Quoted(t)) => Term::Const(t.clone()),
                    Some(Tok::Number(t)) => Term::Const(t.clone()),
                    other => return Err(err(format!("expected term, got {other:?}"))),
                };
                terms.push(term);
                match next(&mut pos) {
                    Some(Tok::Comma) => continue,
                    Some(Tok::RParen) => break,
                    other => return Err(err(format!("expected `,` or `)`, got {other:?}"))),
                }
            }
        }
        if negated {
            builder.neg(&rel, terms);
        } else {
            builder.pos(&rel, terms);
        }
        match next(&mut pos) {
            Some(Tok::Comma) => continue,
            None => break,
            other => return Err(err(format!("expected `,` or end of rule, got {other:?}"))),
        }
    }
    builder.build()
}

fn starts_lower(s: &str) -> bool {
    s.chars()
        .next()
        .is_some_and(|c| c.is_lowercase() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;

    #[test]
    fn parses_running_example_queries() {
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        assert_eq!(q1.to_string(), "q1() :- Stud(x), !TA(x), Reg(x, y)");
        assert_eq!(q1.var_count(), 2);
        assert_eq!(q1.negative_atom_indices().collect::<Vec<_>>(), vec![1]);

        let q2 = parse_cq("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')").unwrap();
        assert_eq!(q2.atoms().len(), 4);
        assert_eq!(q2.atoms()[3].terms[1], Term::Const("CS".into()));
    }

    #[test]
    fn uppercase_bare_idents_are_constants() {
        let q = parse_cq("q() :- Reg(x, IC), Reg(y, DB)").unwrap();
        assert_eq!(q.var_count(), 2);
        assert_eq!(q.atoms()[0].terms[1], Term::Const("IC".into()));
    }

    #[test]
    fn numbers_are_constants() {
        let q = parse_cq("q4() :- R(0)").unwrap();
        assert_eq!(q.atoms()[0].terms[0], Term::Const("0".into()));
        assert_eq!(q.var_count(), 0);
    }

    #[test]
    fn unicode_negation() {
        let q = parse_cq("q() :- R(x), S(x,y), ¬T(y)").unwrap();
        assert!(q.atoms()[2].negated);
    }

    #[test]
    fn head_variables() {
        let q = parse_cq("qc(x, z) :- Author(x, y), Pub(x, z)").unwrap();
        assert_eq!(q.head().len(), 2);
        assert!(!q.is_boolean());
    }

    #[test]
    fn parse_ucq_multi_line() {
        let u = parse_ucq(
            "# the qSAT union of Proposition 5.8\n\
             q1() :- C(x1, x2, x3, v1, v2, v3), T(x1, v1), T(x2, v2), T(x3, v3)\n\
             q2() :- V(x), !T(x, 1), !T(x, 0)\n\
             q3() :- T(x, 1), T(x, 0)\n\
             q4() :- R(0)\n",
        )
        .unwrap();
        assert_eq!(u.disjuncts().len(), 4);
        assert_eq!(u.name(), "q1");
    }

    #[test]
    fn parse_ucq_semicolons() {
        let u = parse_ucq("q() :- R(x); q() :- S(x)").unwrap();
        assert_eq!(u.disjuncts().len(), 2);
    }

    #[test]
    fn error_cases() {
        assert!(parse_cq("").is_err());
        assert!(parse_cq("q()").is_err());
        assert!(parse_cq("q() :-").is_err());
        assert!(parse_cq("q() :- R(x,)").is_err());
        assert!(parse_cq("q() :- R(x").is_err());
        assert!(parse_cq("q(X) :- R(X)").is_err()); // uppercase head var
        assert!(parse_cq("q() :- R('x)").is_err()); // unterminated quote
        assert!(parse_cq("q() : R(x)").is_err());
        // y occurs only under negation: unsafe.
        assert!(parse_cq("q() :- R(x), !S(x, y), !T(y)").is_err());
    }

    #[test]
    fn unsafe_rule_rejected() {
        // y occurs only in a negated atom.
        let err = parse_cq("q() :- R(x), !S(x, y)").unwrap_err();
        assert!(matches!(err, QueryError::UnsafeNegation { .. }));
    }

    #[test]
    fn round_trip_display_parse() {
        let text = "q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')";
        let q = parse_cq(text).unwrap();
        let q2 = parse_cq(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }
}
