//! Error type for query construction, parsing and analysis.

use std::fmt;

/// Errors raised while building, parsing, or analyzing queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A negated atom uses a variable that no positive atom binds
    /// (violation of *safe negation*, Section 2 of the paper).
    UnsafeNegation {
        /// The offending variable name.
        variable: String,
        /// The offending atom, rendered.
        atom: String,
    },
    /// A head variable does not occur in any positive atom.
    UnboundHeadVariable {
        /// The offending variable name.
        variable: String,
    },
    /// Structurally invalid query (no atoms, dangling indices, ...).
    Malformed(String),
    /// Text-format parse error.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable message.
        message: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnsafeNegation { variable, atom } => {
                write!(
                    f,
                    "unsafe negation: variable {variable} of {atom} is not positively bound"
                )
            }
            QueryError::UnboundHeadVariable { variable } => {
                write!(
                    f,
                    "head variable {variable} does not occur in a positive atom"
                )
            }
            QueryError::Malformed(msg) => write!(f, "malformed query: {msg}"),
            QueryError::Parse { line, message } => {
                write!(f, "query parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for QueryError {}
