//! Abstract syntax for CQ¬ and UCQ¬.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::QueryError;

/// A query variable, indexed densely within its query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A query variable.
    Var(Var),
    /// A constant, stored by name (resolved against a database's interner
    /// at evaluation time).
    Const(String),
}

impl Term {
    /// A constant term holding `name` *verbatim* — no quoting, parsing,
    /// or re-tokenization is applied, so the name round-trips exactly to
    /// a database interner lookup. Substitution code (e.g. binding head
    /// variables to answer constants) must construct constants through
    /// this instead of any text syntax: a name like `'CS'` (quote
    /// characters included) is a legal database constant whose *parsed*
    /// form would be the different constant `CS`.
    pub fn constant(name: impl Into<String>) -> Term {
        Term::Const(name.into())
    }

    /// The variable, if this term is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// Is this term a constant?
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }
}

/// An atom `R(t₁,…,tₖ)` or `¬R(t₁,…,tₖ)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Relation symbol name.
    pub relation: String,
    /// Terms, in attribute order.
    pub terms: Vec<Term>,
    /// Whether the atom appears under negation.
    pub negated: bool,
}

impl Atom {
    /// The set of variables occurring in this atom.
    pub fn variables(&self) -> BTreeSet<Var> {
        self.terms.iter().filter_map(Term::as_var).collect()
    }

    /// Does `v` occur in this atom?
    pub fn contains_var(&self, v: Var) -> bool {
        self.terms.iter().any(|t| t.as_var() == Some(v))
    }
}

/// A Boolean (or head-projecting, for aggregate support) conjunctive
/// query with safe negation.
///
/// Construct via [`QueryBuilder`], [`ConjunctiveQuery::new`], or the
/// parser ([`crate::parse_cq`]); all enforce the structural invariants:
/// dense variable indices, named variables, safe negation, and
/// range-restricted heads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    name: String,
    head: Vec<Var>,
    atoms: Vec<Atom>,
    var_names: Vec<String>,
}

impl ConjunctiveQuery {
    /// Builds and validates a query.
    ///
    /// # Errors
    /// * [`QueryError::UnsafeNegation`] if a negated atom uses a variable
    ///   absent from all positive atoms;
    /// * [`QueryError::UnboundHeadVariable`] if a head variable is absent
    ///   from all positive atoms;
    /// * [`QueryError::Malformed`] for dangling variable indices, unused
    ///   variables, duplicate variable names, or an empty atom list.
    pub fn new(
        name: impl Into<String>,
        var_names: Vec<String>,
        head: Vec<Var>,
        atoms: Vec<Atom>,
    ) -> Result<Self, QueryError> {
        let q = ConjunctiveQuery {
            name: name.into(),
            head,
            atoms,
            var_names,
        };
        q.validate()?;
        Ok(q)
    }

    fn validate(&self) -> Result<(), QueryError> {
        if self.atoms.is_empty() {
            return Err(QueryError::Malformed("query has no atoms".into()));
        }
        let n = self.var_names.len();
        {
            let mut seen = BTreeSet::new();
            for v in &self.var_names {
                if !seen.insert(v.as_str()) {
                    return Err(QueryError::Malformed(format!(
                        "duplicate variable name {v}"
                    )));
                }
            }
        }
        let mut used = vec![false; n];
        for atom in &self.atoms {
            for t in &atom.terms {
                if let Term::Var(v) = t {
                    if v.index() >= n {
                        return Err(QueryError::Malformed(format!(
                            "variable index {} out of range",
                            v.0
                        )));
                    }
                    used[v.index()] = true;
                }
            }
        }
        if let Some(i) = used.iter().position(|u| !u) {
            return Err(QueryError::Malformed(format!(
                "variable {} is declared but never used",
                self.var_names[i]
            )));
        }
        let positive_vars: BTreeSet<Var> = self
            .atoms
            .iter()
            .filter(|a| !a.negated)
            .flat_map(|a| a.variables())
            .collect();
        for atom in self.atoms.iter().filter(|a| a.negated) {
            for v in atom.variables() {
                if !positive_vars.contains(&v) {
                    return Err(QueryError::UnsafeNegation {
                        variable: self.var_name(v).to_string(),
                        atom: self.render_atom(atom),
                    });
                }
            }
        }
        for &v in &self.head {
            if v.index() >= n {
                return Err(QueryError::Malformed(format!(
                    "head variable index {} out of range",
                    v.0
                )));
            }
            if !positive_vars.contains(&v) {
                return Err(QueryError::UnboundHeadVariable {
                    variable: self.var_name(v).to_string(),
                });
            }
        }
        Ok(())
    }

    /// The query name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Head (answer) variables; empty for Boolean queries.
    pub fn head(&self) -> &[Var] {
        &self.head
    }

    /// Is this a Boolean query?
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// All atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Indices of positive atoms.
    pub fn positive_atom_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| !a.negated)
            .map(|(i, _)| i)
    }

    /// Indices of negative atoms.
    pub fn negative_atom_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.negated)
            .map(|(i, _)| i)
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// All variables.
    pub fn vars(&self) -> impl Iterator<Item = Var> {
        (0..self.var_names.len() as u32).map(Var)
    }

    /// The display name of `v`.
    ///
    /// # Panics
    /// Panics if `v` does not belong to this query.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.index()]
    }

    /// The variable named `name`, if any.
    pub fn var_by_name(&self, name: &str) -> Option<Var> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .map(|i| Var(i as u32))
    }

    /// `Ax`: the set of atom indices whose atom mentions `v`.
    pub fn atoms_with_var(&self, v: Var) -> BTreeSet<usize> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.contains_var(v))
            .map(|(i, _)| i)
            .collect()
    }

    /// The distinct relation names, in first-appearance order.
    pub fn relation_names(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for a in &self.atoms {
            if !out.contains(&a.relation.as_str()) {
                out.push(&a.relation);
            }
        }
        out
    }

    /// Does any atom mention a constant?
    pub fn has_constants(&self) -> bool {
        self.atoms
            .iter()
            .any(|a| a.terms.iter().any(Term::is_const))
    }

    /// Renders one atom in datalog syntax.
    pub fn render_atom(&self, atom: &Atom) -> String {
        let args: Vec<String> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => self.var_name(*v).to_string(),
                Term::Const(c) => format!("'{c}'"),
            })
            .collect();
        format!(
            "{}{}({})",
            if atom.negated { "!" } else { "" },
            atom.relation,
            args.join(", ")
        )
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head: Vec<&str> = self.head.iter().map(|&v| self.var_name(v)).collect();
        write!(f, "{}({}) :- ", self.name, head.join(", "))?;
        let body: Vec<String> = self.atoms.iter().map(|a| self.render_atom(a)).collect();
        write!(f, "{}", body.join(", "))
    }
}

/// A union of conjunctive queries with negation (UCQ¬).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnionQuery {
    name: String,
    disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    /// Builds a union; requires at least one disjunct, all Boolean.
    pub fn new(
        name: impl Into<String>,
        disjuncts: Vec<ConjunctiveQuery>,
    ) -> Result<Self, QueryError> {
        if disjuncts.is_empty() {
            return Err(QueryError::Malformed("union with no disjuncts".into()));
        }
        if let Some(d) = disjuncts.iter().find(|d| !d.is_boolean()) {
            return Err(QueryError::Malformed(format!(
                "union disjunct {} has a non-empty head",
                d.name()
            )));
        }
        Ok(UnionQuery {
            name: name.into(),
            disjuncts,
        })
    }

    /// The union's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[ConjunctiveQuery] {
        &self.disjuncts
    }
}

impl fmt::Display for UnionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Incremental construction of a [`ConjunctiveQuery`].
///
/// ```
/// use cqshap_query::QueryBuilder;
/// let mut b = QueryBuilder::new("q1");
/// let x = b.var("x");
/// let y = b.var("y");
/// b.pos("Stud", [b.v(x)]);
/// b.neg("TA", [b.v(x)]);
/// b.pos("Reg", [b.v(x), b.v(y)]);
/// let q = b.build().unwrap();
/// assert_eq!(q.to_string(), "q1() :- Stud(x), !TA(x), Reg(x, y)");
/// ```
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    name: String,
    var_names: Vec<String>,
    head: Vec<Var>,
    atoms: Vec<Atom>,
}

impl QueryBuilder {
    /// Starts a query named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        QueryBuilder {
            name: name.into(),
            var_names: Vec::new(),
            head: Vec::new(),
            atoms: Vec::new(),
        }
    }

    /// Declares (or reuses) a variable by name.
    pub fn var(&mut self, name: &str) -> Var {
        if let Some(i) = self.var_names.iter().position(|n| n == name) {
            return Var(i as u32);
        }
        let v = Var(self.var_names.len() as u32);
        self.var_names.push(name.to_string());
        v
    }

    /// Convenience: a variable term.
    pub fn v(&self, var: Var) -> Term {
        Term::Var(var)
    }

    /// Convenience: a constant term (see [`Term::constant`]).
    pub fn c(&self, name: &str) -> Term {
        Term::constant(name)
    }

    /// Appends a positive atom.
    pub fn pos(&mut self, relation: &str, terms: impl IntoIterator<Item = Term>) -> &mut Self {
        self.atoms.push(Atom {
            relation: relation.to_string(),
            terms: terms.into_iter().collect(),
            negated: false,
        });
        self
    }

    /// Appends a negated atom.
    pub fn neg(&mut self, relation: &str, terms: impl IntoIterator<Item = Term>) -> &mut Self {
        self.atoms.push(Atom {
            relation: relation.to_string(),
            terms: terms.into_iter().collect(),
            negated: true,
        });
        self
    }

    /// Sets the head variables.
    pub fn head(&mut self, vars: impl IntoIterator<Item = Var>) -> &mut Self {
        self.head = vars.into_iter().collect();
        self
    }

    /// Finishes, validating the query.
    pub fn build(self) -> Result<ConjunctiveQuery, QueryError> {
        ConjunctiveQuery::new(self.name, self.var_names, self.head, self.atoms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q1() -> ConjunctiveQuery {
        let mut b = QueryBuilder::new("q1");
        let x = b.var("x");
        let y = b.var("y");
        b.pos("Stud", [b.v(x)]);
        b.neg("TA", [b.v(x)]);
        b.pos("Reg", [b.v(x), b.v(y)]);
        b.build().unwrap()
    }

    #[test]
    fn builder_and_display() {
        let q = q1();
        assert_eq!(q.to_string(), "q1() :- Stud(x), !TA(x), Reg(x, y)");
        assert!(q.is_boolean());
        assert_eq!(q.var_count(), 2);
        assert_eq!(q.relation_names(), vec!["Stud", "TA", "Reg"]);
        assert!(!q.has_constants());
    }

    #[test]
    fn atoms_with_var() {
        let q = q1();
        let x = q.var_by_name("x").unwrap();
        let y = q.var_by_name("y").unwrap();
        assert_eq!(q.atoms_with_var(x), BTreeSet::from([0, 1, 2]));
        assert_eq!(q.atoms_with_var(y), BTreeSet::from([2]));
    }

    #[test]
    fn unsafe_negation_rejected() {
        let mut b = QueryBuilder::new("bad");
        let x = b.var("x");
        let y = b.var("y");
        b.pos("R", [b.v(x)]);
        b.neg("S", [b.v(x), b.v(y)]);
        // y occurs only under negation — reject (plus y is then "used",
        // so the error must be the safety one).
        let err = b.build().unwrap_err();
        assert!(matches!(err, QueryError::UnsafeNegation { .. }));
    }

    #[test]
    fn unused_variable_rejected() {
        let q = ConjunctiveQuery::new(
            "bad",
            vec!["x".into(), "y".into()],
            vec![],
            vec![Atom {
                relation: "R".into(),
                terms: vec![Term::Var(Var(0))],
                negated: false,
            }],
        );
        assert!(matches!(q, Err(QueryError::Malformed(_))));
    }

    #[test]
    fn head_must_be_positive() {
        let mut b = QueryBuilder::new("agg");
        let x = b.var("x");
        b.pos("R", [b.v(x)]);
        b.head([x]);
        assert!(b.build().is_ok());

        let mut b2 = QueryBuilder::new("agg2");
        let x2 = b2.var("x");
        let y2 = b2.var("y");
        b2.pos("R", [b2.v(x2), b2.v(y2)]);
        b2.neg("S", [b2.v(y2)]);
        b2.head([y2]);
        assert!(b2.build().is_ok());
    }

    #[test]
    fn empty_query_rejected() {
        let err = QueryBuilder::new("nil").build().unwrap_err();
        assert!(matches!(err, QueryError::Malformed(_)));
    }

    #[test]
    fn duplicate_var_names_rejected() {
        let q = ConjunctiveQuery::new(
            "bad",
            vec!["x".into(), "x".into()],
            vec![],
            vec![Atom {
                relation: "R".into(),
                terms: vec![Term::Var(Var(0)), Term::Var(Var(1))],
                negated: false,
            }],
        );
        assert!(q.is_err());
    }

    #[test]
    fn constants_render_quoted() {
        let mut b = QueryBuilder::new("q");
        let y = b.var("y");
        b.pos("Reg", [b.v(y)]);
        b.neg("Course", [b.v(y), b.c("CS")]);
        let q = b.build().unwrap();
        assert_eq!(q.to_string(), "q() :- Reg(y), !Course(y, 'CS')");
        assert!(q.has_constants());
    }

    #[test]
    fn union_requires_boolean_disjuncts() {
        let mut b = QueryBuilder::new("d1");
        let x = b.var("x");
        b.pos("R", [b.v(x)]);
        b.head([x]);
        let with_head = b.build().unwrap();
        assert!(UnionQuery::new("u", vec![with_head]).is_err());
        assert!(UnionQuery::new("u", vec![]).is_err());
        assert!(UnionQuery::new("u", vec![q1()]).is_ok());
    }
}
