//! Conjoining the disjuncts of a UCQ¬ — the building block of the
//! inclusion–exclusion lift of `CntSat` to unions (Section 5.2).
//!
//! For a union `U = q₁ ∨ ⋯ ∨ q_d` and a subset `S ⊆ [d]`, the counting
//! identity
//!
//! ```text
//! |Sat(D, U, k)| = Σ_{∅ ≠ S ⊆ [d]} (−1)^{|S|+1} |Sat(D, ⋀_{i∈S} qᵢ, k)|
//! ```
//!
//! reduces union counting to counting over *conjunctions* of CQ¬s. A
//! conjunction of Boolean CQ¬s is itself a CQ¬ once the disjuncts'
//! variables are renamed apart; this module builds it, and classifies
//! the two degenerate cases the counting layer needs to know about:
//!
//! * the conjunction is **unsatisfiable** because one disjunct asserts a
//!   ground atom another denies (its counts are identically zero, so the
//!   subset drops out of the signed sum);
//! * the conjunction **induces a self-join** because two disjuncts share
//!   a relation through non-identical atoms — the compiled hierarchical
//!   counter does not apply and the caller must fall back.
//!
//! Identical ground atoms appearing in several disjuncts are merged
//! (conjunction is idempotent), which keeps e.g. `R(0) ∧ R(0)` both
//! self-join-free and satisfiable.

use std::collections::BTreeSet;

use crate::ast::{ConjunctiveQuery, QueryBuilder, Term};
use crate::error::QueryError;

/// The conjunction of a subset of disjuncts, as the counting layer
/// consumes it.
#[derive(Debug, Clone)]
pub enum DisjunctConjunction {
    /// The conjoined CQ¬ (variables renamed apart, duplicate ground
    /// atoms merged).
    Query(ConjunctiveQuery),
    /// Two disjuncts contradict on a ground atom: `|Sat| ≡ 0` and the
    /// subset contributes nothing to the inclusion–exclusion sum.
    Unsatisfiable,
}

impl DisjunctConjunction {
    /// The conjoined query, unless the conjunction is unsatisfiable.
    pub fn as_query(&self) -> Option<&ConjunctiveQuery> {
        match self {
            DisjunctConjunction::Query(q) => Some(q),
            DisjunctConjunction::Unsatisfiable => None,
        }
    }
}

/// Conjoins Boolean CQ¬s into one CQ¬ named `name`.
///
/// Variables are renamed apart (`x` of disjunct `i` becomes `x~i`), so
/// the conjunction's homomorphisms are exactly the products of the
/// disjuncts' homomorphisms. Duplicate ground atoms are merged;
/// contradictory ground atoms short-circuit to
/// [`DisjunctConjunction::Unsatisfiable`].
///
/// # Errors
/// [`QueryError::Malformed`] when `disjuncts` is empty or a disjunct has
/// a non-empty head (conjunction is defined for Boolean queries; unions
/// enforce Boolean disjuncts by construction).
pub fn conjoin_disjuncts(
    name: &str,
    disjuncts: &[&ConjunctiveQuery],
) -> Result<DisjunctConjunction, QueryError> {
    if disjuncts.is_empty() {
        return Err(QueryError::Malformed(
            "conjunction of zero disjuncts".into(),
        ));
    }
    if let Some(d) = disjuncts.iter().find(|d| !d.is_boolean()) {
        return Err(QueryError::Malformed(format!(
            "disjunct {} has a non-empty head",
            d.name()
        )));
    }
    let mut builder = QueryBuilder::new(name);
    let mut ground_seen: BTreeSet<(String, Vec<String>, bool)> = BTreeSet::new();
    for (i, d) in disjuncts.iter().enumerate() {
        for atom in d.atoms() {
            let terms: Vec<Term> = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => Term::constant(c),
                    Term::Var(v) => {
                        // Rename apart: unique because every variable of
                        // disjunct i gets the same `~i` suffix and the
                        // suffix decomposes unambiguously from the right.
                        Term::Var(builder.var(&format!("{}~{i}", d.var_name(*v))))
                    }
                })
                .collect();
            if let Some(consts) = ground_key(&terms) {
                let pos_key = (atom.relation.clone(), consts.clone(), !atom.negated);
                if ground_seen.contains(&pos_key) {
                    // The opposite polarity of this exact ground atom was
                    // already asserted: the conjunction cannot hold.
                    return Ok(DisjunctConjunction::Unsatisfiable);
                }
                if !ground_seen.insert((atom.relation.clone(), consts, atom.negated)) {
                    continue; // identical ground atom already present
                }
            }
            if atom.negated {
                builder.neg(&atom.relation, terms);
            } else {
                builder.pos(&atom.relation, terms);
            }
        }
    }
    Ok(DisjunctConjunction::Query(builder.build()?))
}

/// The constant names of a fully-ground term list, or `None` if the
/// atom has a variable.
fn ground_key(terms: &[Term]) -> Option<Vec<String>> {
    terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(c.clone()),
            Term::Var(_) => None,
        })
        .collect()
}

/// A human-readable label for the subset of a union's disjuncts selected
/// by `mask` (bit `i` = disjunct `i`), e.g. `q1 ∧ q3`.
pub fn subset_label(disjuncts: &[ConjunctiveQuery], mask: usize) -> String {
    let names: Vec<&str> = disjuncts
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, d)| d.name())
        .collect();
    names.join(" ∧ ")
}

/// The relation shared by two *distinct* atoms of `q`, if any — the
/// witness that a conjunction induced a self-join.
pub fn self_join_witness(q: &ConjunctiveQuery) -> Option<&str> {
    let atoms = q.atoms();
    for (i, a) in atoms.iter().enumerate() {
        if atoms[i + 1..].iter().any(|b| b.relation == a.relation) {
            return Some(&a.relation);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_cq, parse_ucq};

    fn conjoin_texts(texts: &[&str]) -> DisjunctConjunction {
        let qs: Vec<ConjunctiveQuery> = texts.iter().map(|t| parse_cq(t).unwrap()).collect();
        let refs: Vec<&ConjunctiveQuery> = qs.iter().collect();
        conjoin_disjuncts("conj", &refs).unwrap()
    }

    #[test]
    fn renames_variables_apart() {
        let c = conjoin_texts(&["q1() :- R(x), !S(x)", "q2() :- T(x, y)"]);
        let q = c.as_query().unwrap();
        assert_eq!(q.to_string(), "conj() :- R(x~0), !S(x~0), T(x~1, y~1)");
        assert_eq!(q.var_count(), 3);
        assert!(crate::analysis::is_safe(q));
    }

    #[test]
    fn merges_duplicate_ground_atoms() {
        let c = conjoin_texts(&["q1() :- R(0)", "q2() :- R(0), S(x)"]);
        let q = c.as_query().unwrap();
        assert_eq!(q.atoms().len(), 2);
        assert!(self_join_witness(q).is_none());
    }

    #[test]
    fn detects_ground_contradiction() {
        let c = conjoin_texts(&["q1() :- R(0), S(x)", "q2() :- T(x), !R(0)"]);
        assert!(matches!(c, DisjunctConjunction::Unsatisfiable));
        assert!(conjoin_texts(&["q1() :- R(0)", "q2() :- !R(0)"])
            .as_query()
            .is_none());
    }

    #[test]
    fn shared_relations_become_self_joins() {
        let c = conjoin_texts(&["q1() :- R(x), S(x)", "q2() :- R(y)"]);
        let q = c.as_query().unwrap();
        assert_eq!(self_join_witness(q), Some("R"));
    }

    #[test]
    fn suffixes_cannot_collide() {
        // Disjunct 0's variable is literally named `x~1` — impossible
        // through the parser ([alnum_] identifiers only) but legal via
        // the builder. Disjunct 1 uses `x`, whose renamed form is the
        // clashing-looking `x~1`; the suffix decomposes unambiguously
        // from the right, so the two stay distinct.
        let mut b = QueryBuilder::new("q1");
        let v = b.var("x~1");
        b.pos("R", [b.v(v)]);
        let a = b.build().unwrap();
        let other = parse_cq("q2() :- S(x)").unwrap();
        let c = conjoin_disjuncts("conj", &[&a, &other]).unwrap();
        let q = c.as_query().unwrap();
        assert_eq!(q.var_count(), 2);
        assert_eq!(q.to_string(), "conj() :- R(x~1~0), S(x~1)");
    }

    #[test]
    fn rejects_empty_and_headed_inputs() {
        assert!(conjoin_disjuncts("conj", &[]).is_err());
        let headed = parse_cq("q(x) :- R(x)").unwrap();
        assert!(conjoin_disjuncts("conj", &[&headed]).is_err());
    }

    #[test]
    fn subset_labels() {
        let u = parse_ucq("qa() :- R(x); qb() :- S(x); qc() :- T(x)").unwrap();
        assert_eq!(subset_label(u.disjuncts(), 0b101), "qa ∧ qc");
        assert_eq!(subset_label(u.disjuncts(), 0b010), "qb");
    }
}
