//! Property tests over randomly generated CQ¬s.
//!
//! The most important one: with `X = ∅`, "has a non-hierarchical path"
//! must coincide exactly with "is not hierarchical" — this is what makes
//! Theorem 4.3 a strict generalization of Theorem 3.1.

use std::collections::HashSet;

use cqshap_query::{
    has_self_join, is_hierarchical, is_polarity_consistent, non_hierarchical_path,
    non_hierarchical_triplets, preferred_triplet, Atom, ConjunctiveQuery, Term, TripletVariant,
    Var,
};
use proptest::prelude::*;

/// A random self-join-free CQ¬ with up to 5 variables and 6 atoms.
///
/// Construction guarantees safety: negated atoms only reuse variables
/// introduced by earlier positive atoms.
fn arb_sjf_cq() -> impl Strategy<Value = ConjunctiveQuery> {
    let spec = (
        2usize..=5, // number of variables
        prop::collection::vec(
            (
                any::<bool>(),                           // negated?
                prop::collection::vec(0usize..5, 1..=3), // variable picks (mod var count)
            ),
            1..=6,
        ),
    );
    spec.prop_filter_map("needs a safe, valid query", |(nvars, atom_specs)| {
        let var_names: Vec<String> = (0..nvars).map(|i| format!("v{i}")).collect();
        let mut atoms = Vec::new();
        let mut positive_vars: HashSet<usize> = HashSet::new();
        // First pass: create positive atoms, collecting bound variables.
        for (i, (negated, picks)) in atom_specs.iter().enumerate() {
            let vars: Vec<usize> = picks.iter().map(|p| p % nvars).collect();
            if !*negated {
                positive_vars.extend(vars.iter().copied());
            }
            atoms.push((i, *negated, vars));
        }
        let mut out = Vec::new();
        for (i, negated, vars) in atoms {
            if negated && !vars.iter().all(|v| positive_vars.contains(v)) {
                continue; // dropping the unsafe atom keeps the query safe
            }
            out.push(Atom {
                relation: format!("R{i}"),
                terms: vars.into_iter().map(|v| Term::Var(Var(v as u32))).collect(),
                negated,
            });
        }
        if out.is_empty() || out.iter().all(|a| a.negated) {
            return None;
        }
        // Keep only variables that are actually used (rename densely).
        let used: Vec<usize> = (0..nvars)
            .filter(|&v| out.iter().any(|a| a.contains_var(Var(v as u32))))
            .collect();
        let remap: Vec<Option<u32>> = (0..nvars)
            .map(|v| used.iter().position(|&u| u == v).map(|p| p as u32))
            .collect();
        for atom in &mut out {
            for t in &mut atom.terms {
                if let Term::Var(v) = t {
                    *v = Var(remap[v.index()].expect("used variable"));
                }
            }
        }
        let names: Vec<String> = used.iter().map(|&v| var_names[v].clone()).collect();
        ConjunctiveQuery::new("q", names, vec![], out).ok()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Theorem 4.3 ⊇ Theorem 3.1: with no exogenous relations, the
    /// non-hierarchical-path criterion coincides with non-hierarchicality.
    #[test]
    fn path_iff_not_hierarchical_when_no_exo(q in arb_sjf_cq()) {
        let exo = HashSet::new();
        prop_assert_eq!(
            non_hierarchical_path(&q, &exo).is_some(),
            !is_hierarchical(&q),
            "query: {}", q
        );
    }

    /// Triplets exist iff the query is non-hierarchical, and the
    /// Lemma B.4 selection always finds a usable one.
    #[test]
    fn triplets_iff_not_hierarchical(q in arb_sjf_cq()) {
        let triplets = non_hierarchical_triplets(&q);
        prop_assert_eq!(triplets.is_empty(), is_hierarchical(&q), "query: {}", q);
        match preferred_triplet(&q) {
            None => prop_assert!(is_hierarchical(&q)),
            Some((t, v)) => {
                let nx = q.atoms()[t.atom_x].negated;
                let nxy = q.atoms()[t.atom_xy].negated;
                let ny = q.atoms()[t.atom_y].negated;
                match v {
                    TripletVariant::Rst => prop_assert!(!nx && !nxy && !ny),
                    TripletVariant::NegRSNegT => prop_assert!(nx && !nxy && ny),
                    TripletVariant::RNegST => prop_assert!(!nx && nxy && !ny),
                    TripletVariant::RSNegT => prop_assert!(!nx && !nxy && ny),
                }
                // x occurs in atom_x but not atom_y; y vice versa; both in
                // atom_xy.
                prop_assert!(q.atoms()[t.atom_x].contains_var(t.var_x));
                prop_assert!(!q.atoms()[t.atom_x].contains_var(t.var_y));
                prop_assert!(q.atoms()[t.atom_y].contains_var(t.var_y));
                prop_assert!(!q.atoms()[t.atom_y].contains_var(t.var_x));
                prop_assert!(q.atoms()[t.atom_xy].contains_var(t.var_x));
                prop_assert!(q.atoms()[t.atom_xy].contains_var(t.var_y));
            }
        }
    }

    /// Generated queries are self-join-free by construction, and making
    /// every relation exogenous... is impossible for the endogenous side;
    /// instead check monotonicity: adding exogenous relations can only
    /// remove non-hierarchical paths, never create them.
    #[test]
    fn exogenous_relations_only_help(q in arb_sjf_cq(), mask in any::<u8>()) {
        prop_assert!(!has_self_join(&q));
        let none = HashSet::new();
        let some: HashSet<String> = q
            .relation_names()
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i % 8)) != 0)
            .map(|(_, r)| r.to_string())
            .collect();
        if non_hierarchical_path(&q, &none).is_none() {
            prop_assert!(non_hierarchical_path(&q, &some).is_none(), "query: {}", q);
        }
        // polarity consistency holds for sjf queries trivially
        prop_assert!(is_polarity_consistent(&q));
    }
}
