//! # cqshap
//!
//! Shapley values of database facts for conjunctive queries with safe
//! negation — a from-scratch Rust reproduction of
//! *"The Impact of Negation on the Complexity of the Shapley Value in
//! Conjunctive Queries"* (Reshef, Kimelfeld, Livshits; PODS 2020).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`db`] | `cqshap-db` | databases, endogenous/exogenous facts, worlds |
//! | [`query`] | `cqshap-query` | CQ¬/UCQ¬ AST, parser, structural analysis, dichotomy classifier |
//! | [`engine`] | `cqshap-engine` | satisfaction & homomorphism enumeration |
//! | [`core`] | `cqshap-core` | exact Shapley values, `ExoShap`, sampling, relevance, aggregates, the gap construction |
//! | [`probdb`] | `cqshap-probdb` | tuple-independent probabilistic databases (Thm 4.10) |
//! | [`gadgets`] | `cqshap-gadgets` | the paper's hardness reductions, executable |
//! | [`workloads`] | `cqshap-workloads` | seeded synthetic scenarios |
//! | [`numeric`] | `cqshap-numeric` | exact big-integer/rational arithmetic |
//! | [`obs`] | `cqshap-obs` | first-party tracing, metrics, and per-phase profiling |
//!
//! ## Quickstart
//!
//! ```
//! use cqshap::prelude::*;
//!
//! // The paper's running example (Figure 1) and query q1.
//! let db = cqshap::workloads::figure_1_database();
//! let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
//!
//! // q1 is hierarchical, so exact Shapley values are polynomial-time.
//! let report = shapley_report(&db, &q1, &ShapleyOptions::default()).unwrap();
//! let ta_adam = db.find_fact("TA", &["Adam"]).unwrap();
//! assert_eq!(report.entry(ta_adam).unwrap().value.to_string(), "-3/28");
//! assert!(report.efficiency_holds());
//! ```
//!
//! ## Sessions
//!
//! For repeated queries against one database — and for incremental
//! maintenance across updates — prepare a
//! [`ShapleySession`](cqshap_core::session::ShapleySession) once and
//! serve every value, report, and estimate from its cached engine:
//!
//! ```
//! use cqshap::prelude::*;
//!
//! let db = cqshap::workloads::figure_1_database();
//! let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
//! let mut session = ShapleySession::prepare(&db, AnyQuery::Cq(&q1), &ShapleyOptions::auto()).unwrap();
//! assert_eq!(session.strategy(), Some(ResolvedStrategy::Hierarchical));
//!
//! let ta_adam = session.database().find_fact("TA", &["Adam"]).unwrap();
//! assert_eq!(session.value(ta_adam).unwrap().to_string(), "-3/28");
//!
//! // In-place update: only TA(Adam)'s root group is recounted.
//! session.set_exogenous(ta_adam, true).unwrap();
//! assert!(session.report().unwrap().efficiency_holds());
//! assert_eq!(session.stats().incremental_updates, 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use cqshap_core as core;
pub use cqshap_db as db;
pub use cqshap_engine as engine;
pub use cqshap_gadgets as gadgets;
pub use cqshap_numeric as numeric;
pub use cqshap_obs as obs;
pub use cqshap_probdb as probdb;
pub use cqshap_query as query;
pub use cqshap_workloads as workloads;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use cqshap_core::{
        aggregates::{aggregate_report, aggregate_shapley, aggregate_value, AggregateFunction},
        approx::{
            required_samples, shapley_additive_approx, shapley_anytime, shapley_sampled,
            AnytimeParams, AnytimeReport, AnytimeState, FactEstimate, SampleParams,
        },
        budget::{Budget, CancelToken, Stopwatch},
        gap::{build_gap_family, expected_gap_value, section_5_1_example},
        probability_by_enumeration,
        relevance::{
            brute_force_relevance, is_negatively_relevant, is_positively_relevant, is_relevant,
            shapley_is_zero,
        },
        rewrite, shapley_by_permutations, shapley_report, shapley_report_per_fact,
        shapley_report_union, shapley_report_union_per_fact, shapley_value, shapley_value_union,
        shapley_via_counts,
        wsms::{wsms_report, WsmsEntry, WsmsReport, WsmsWeight},
        AnyQuery, BruteForceCounter, CompiledCount, CompiledProbability, CompiledUnionCount,
        CoreError, EngineUpdate, FactProbabilities, HierarchicalCounter, ReportStats,
        ResolvedStrategy, SatCountOracle, SessionStats, ShapleyEntry, ShapleyOptions,
        ShapleyReport, ShapleySession, Strategy, TierPolicy, TieredAnswer,
    };
    pub use cqshap_db::{Database, FactId, FactMask, Provenance, World};
    pub use cqshap_numeric::{BigInt, BigRational, BigUint};
    pub use cqshap_probdb::ProbDatabase;
    pub use cqshap_query::{
        classify, classify_with_exo, conjoin_disjuncts, is_hierarchical, is_polarity_consistent,
        parse_cq, parse_ucq, ConjunctiveQuery, DisjunctConjunction, ExactComplexity, QueryBuilder,
        UnionQuery,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_wires_everything_together() {
        let db = crate::workloads::figure_1_database();
        let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
        assert_eq!(classify(&q1), ExactComplexity::TractableHierarchical);
        let f = db.find_fact("Reg", &["Caroline", "DB"]).unwrap();
        let v = shapley_value(&db, &q1, f, &ShapleyOptions::default()).unwrap();
        assert_eq!(v, BigRational::from_i64_ratio(13, 42));
    }
}
