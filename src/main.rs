//! `cqshap` — command-line front end.
//!
//! ```text
//! cqshap classify  "q() :- R(x), S(x, y), !T(y)" [--exo S,T]
//! cqshap shapley   <db-file> "<query>" [--fact "Reg(Adam, OS)"] [--strategy auto|hierarchical|exoshap|brute|permutations]
//! cqshap relevance <db-file> "<query>" --fact "TA(Adam)"
//! cqshap prob      <db-file> "<query>" [--default-p 0.5] [--fact "R(a, b)"] [--threads N]
//! cqshap probability <db-file> "<query>" [--default-p 0.5]
//! cqshap satcount  <db-file> "<query>"
//! ```
//!
//! Databases use the line format of `cqshap-db` (`endo R(a, b)`,
//! `exo S(c)`, `exorel Pub`); queries use the datalog syntax of
//! `cqshap-query`. See `README.md`.

// Binary front end: user-facing timing output is exempt from the
// `no-wall-clock` discipline (see clippy.toml).
#![allow(clippy::disallowed_methods)]

use std::collections::HashSet;
use std::process::ExitCode;

use cqshap::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  cqshap classify  \"<query>\" [--exo R1,R2]
  cqshap shapley   <db-file> \"<query>\" [--fact \"R(a, b)\"] [--strategy auto|hierarchical|exoshap|brute|permutations]
                   [--threads N] [--deadline-ms N]
  cqshap report    <db-file> \"<query>\" [--strategy ...] [--agg count|sum:VAR] [--threads N]
                   [--deadline-ms N] [--tier] [--epsilon E] [--trace [--trace-out FILE]]
                   (the query may be a UCQ: rules separated by `;` or newlines;
                    with --agg it must project the aggregate's head variables;
                    --deadline-ms bounds the exact computation, failing with
                    `deadline exceeded` instead of hanging; --tier degrades to
                    an anytime sampling estimate (target ±E, default 0.05) or
                    a minimal-supports attribution when exact answering is
                    refused or over budget)
  cqshap relevance <db-file> \"<query>\" --fact \"R(a, b)\"
  cqshap prob      <db-file> \"<query>\" [--default-p 0.5] [--fact \"R(a, b)\"] [--threads N]
                   [--trace [--trace-out FILE]]
                   (exact tuple-independent probability from the session's
                    compiled engine; --fact prints the expected marginal;
                    the query may be a UCQ)

  --trace collects per-phase spans, counters, and histograms during the
  command (report, shapley, and prob) and writes a cqshap-trace/v1 JSON
  document afterwards; --trace-out picks the path (default
  TRACE_report.json) and implies --trace.
  cqshap probability <db-file> \"<query>\" [--default-p 0.5]
  cqshap satcount  <db-file> \"<query>\"";

/// Parsed `--flag value` options after the positional arguments.
struct Options {
    positional: Vec<String>,
    exo: Option<String>,
    fact: Option<String>,
    strategy: Option<String>,
    default_p: Option<String>,
    agg: Option<String>,
    threads: Option<String>,
    deadline_ms: Option<String>,
    tier: bool,
    epsilon: Option<String>,
    trace: bool,
    trace_out: Option<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut out = Options {
        positional: Vec::new(),
        exo: None,
        fact: None,
        strategy: None,
        default_p: None,
        agg: None,
        threads: None,
        deadline_ms: None,
        tier: false,
        epsilon: None,
        trace: false,
        trace_out: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--exo" => out.exo = Some(grab("--exo")?),
            "--fact" => out.fact = Some(grab("--fact")?),
            "--strategy" => out.strategy = Some(grab("--strategy")?),
            "--default-p" => out.default_p = Some(grab("--default-p")?),
            "--agg" => out.agg = Some(grab("--agg")?),
            "--threads" => out.threads = Some(grab("--threads")?),
            "--deadline-ms" => out.deadline_ms = Some(grab("--deadline-ms")?),
            "--tier" => out.tier = true,
            "--epsilon" => out.epsilon = Some(grab("--epsilon")?),
            "--trace" => out.trace = true,
            "--trace-out" => out.trace_out = Some(grab("--trace-out")?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            _ => out.positional.push(a.clone()),
        }
    }
    Ok(out)
}

/// Parses `--deadline-ms N` into a [`Budget`] (unlimited by default).
fn parse_budget(spec: Option<&str>) -> Result<Budget, String> {
    match spec {
        None => Ok(Budget::UNLIMITED),
        Some(s) => s
            .parse()
            .map(Budget::wall_ms)
            .map_err(|_| format!("--deadline-ms must be a nonnegative integer, got {s:?}")),
    }
}

/// Parses `--epsilon E` (target half-width of the sampling tier).
fn parse_epsilon(spec: Option<&str>) -> Result<f64, String> {
    match spec {
        None => Ok(0.05),
        Some(s) => match s.parse::<f64>() {
            Ok(e) if e > 0.0 && e < 1.0 => Ok(e),
            _ => Err(format!("--epsilon must lie in (0, 1), got {s:?}")),
        },
    }
}

/// Parses `count` or `sum:VAR` into an aggregate function.
fn parse_aggregate(spec: &str) -> Result<AggregateFunction, String> {
    match spec {
        "count" => Ok(AggregateFunction::Count),
        other => match other.strip_prefix("sum:") {
            Some(var) if !var.is_empty() => Ok(AggregateFunction::Sum {
                weight_var: var.to_string(),
            }),
            _ => Err(format!(
                "bad aggregate spec {spec:?} (expected `count` or `sum:VAR`)"
            )),
        },
    }
}

/// Parses `--threads N` (`0` = all available cores, the default).
fn parse_threads(spec: Option<&str>) -> Result<usize, String> {
    match spec {
        None => Ok(0),
        Some(s) => s
            .parse()
            .map_err(|_| format!("--threads must be a nonnegative integer, got {s:?}")),
    }
}

fn parse_strategy(name: &str) -> Result<Strategy, String> {
    Ok(match name {
        "auto" => Strategy::Auto,
        "hierarchical" => Strategy::Hierarchical,
        "exoshap" => Strategy::ExoShap,
        "brute" => Strategy::BruteForceSubsets,
        "permutations" => Strategy::BruteForcePermutations,
        other => return Err(format!("unknown strategy {other:?}")),
    })
}

/// Parses `"R(a, b)"` into a fact lookup.
fn find_fact(db: &Database, spec: &str) -> Result<FactId, String> {
    let open = spec
        .find('(')
        .ok_or_else(|| format!("bad fact syntax {spec:?}"))?;
    if !spec.ends_with(')') {
        return Err(format!("bad fact syntax {spec:?}"));
    }
    let rel = spec[..open].trim();
    let inner = &spec[open + 1..spec.len() - 1];
    let args: Vec<&str> = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(str::trim).collect()
    };
    db.find_fact(rel, &args)
        .ok_or_else(|| format!("fact {spec} not found in the database"))
}

fn load_db(path: &str) -> Result<Database, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Database::parse(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("missing command".into());
    };
    let opts = parse_options(rest)?;
    // Install the trace recorder before any engine work so the prepare
    // sub-phases land in the window; write the report only on success.
    let trace = if opts.trace || opts.trace_out.is_some() {
        Some(cqshap::obs::install_trace().map_err(|e| e.to_string())?)
    } else {
        None
    };
    let result = match command.as_str() {
        "classify" => cmd_classify(&opts),
        "shapley" => cmd_shapley(&opts),
        "report" => cmd_report(&opts),
        "relevance" => cmd_relevance(&opts),
        "prob" => cmd_prob(&opts),
        "probability" => cmd_probability(&opts),
        "satcount" => cmd_satcount(&opts),
        other => Err(format!("unknown command {other:?}")),
    };
    match trace {
        Some(recorder) => {
            result?;
            write_trace(recorder, &opts)
        }
        None => result,
    }
}

/// Serializes the collected trace window to `--trace-out` (default
/// `TRACE_report.json`), stamped with the host-core and thread-cap
/// metadata the run actually used.
fn write_trace(trace: &cqshap::obs::TraceRecorder, opts: &Options) -> Result<(), String> {
    let host_cores = cqshap::numeric::poly::resolve_threads(0);
    let thread_cap =
        cqshap::numeric::poly::resolve_threads(parse_threads(opts.threads.as_deref())?);
    let meta = cqshap::obs::TraceMeta {
        host_cores,
        thread_cap,
    };
    let path = opts.trace_out.as_deref().unwrap_or("TRACE_report.json");
    std::fs::write(path, trace.to_json(&meta)).map_err(|e| format!("writing {path}: {e}"))?;
    println!("trace written to {path}");
    Ok(())
}

fn cmd_classify(opts: &Options) -> Result<(), String> {
    let [query] = opts.positional.as_slice() else {
        return Err("classify needs exactly one query".into());
    };
    let q = parse_cq(query).map_err(|e| e.to_string())?;
    let exo: HashSet<String> = opts
        .exo
        .as_deref()
        .unwrap_or("")
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    println!("query:        {q}");
    println!("hierarchical: {}", is_hierarchical(&q));
    println!("polarity-consistent: {}", is_polarity_consistent(&q));
    if exo.is_empty() {
        println!("verdict (Thm 3.1): {}", classify(&q));
    } else {
        let mut names: Vec<&str> = exo.iter().map(|s| s.as_str()).collect();
        names.sort();
        println!("X = {{{}}}", names.join(", "));
        println!("verdict (Thm 4.3): {}", classify_with_exo(&q, &exo));
    }
    Ok(())
}

fn cmd_shapley(opts: &Options) -> Result<(), String> {
    let [db_path, query] = opts.positional.as_slice() else {
        return Err("shapley needs a database file and a query".into());
    };
    let db = load_db(db_path)?;
    let q = parse_cq(query).map_err(|e| e.to_string())?;
    let strategy = parse_strategy(opts.strategy.as_deref().unwrap_or("auto"))?;
    let options = ShapleyOptions::with_strategy(strategy)
        .threads(parse_threads(opts.threads.as_deref())?)
        .budget(parse_budget(opts.deadline_ms.as_deref())?);
    // One prepared session serves both the single-fact and the
    // all-facts form, so they can never route differently.
    let session =
        ShapleySession::prepare(&db, AnyQuery::Cq(&q), &options).map_err(|e| e.to_string())?;
    match &opts.fact {
        Some(spec) => {
            let f = find_fact(&db, spec)?;
            let v = session.value(f).map_err(|e| e.to_string())?;
            println!(
                "Shapley(D, {}, {}) = {} ≈ {:.6}",
                q.name(),
                db.render_fact(f),
                v,
                v.to_f64()
            );
        }
        None => {
            let report = session.report().map_err(|e| e.to_string())?;
            print_report(&report);
        }
    }
    Ok(())
}

/// Prints a report's entries plus the efficiency line.
fn print_report(report: &ShapleyReport) {
    for entry in &report.entries {
        println!(
            "{:<32} {:>16} ≈ {:+.6}",
            entry.rendered,
            entry.value.to_string(),
            entry.value.to_f64()
        );
    }
    println!(
        "Σ = {} ({}: q(D) − q(Dx) = {})",
        report.total,
        if report.efficiency_holds() {
            "efficiency holds"
        } else {
            "EFFICIENCY VIOLATED"
        },
        report.expected_total,
    );
}

/// The batched all-facts report: compile the query (CQ¬, UCQ¬, or
/// aggregate) once, recount incrementally per fact, print every value
/// plus timing and the efficiency check.
///
/// Multi-rule queries (`;`- or newline-separated) route through the
/// inclusion–exclusion union engine; `--agg count|sum:VAR` routes a
/// head-projecting query through the aggregate decomposition.
fn cmd_report(opts: &Options) -> Result<(), String> {
    let [db_path, query] = opts.positional.as_slice() else {
        return Err("report needs a database file and a query".into());
    };
    let db = load_db(db_path)?;
    let strategy = parse_strategy(opts.strategy.as_deref().unwrap_or("auto"))?;
    let options = ShapleyOptions::with_strategy(strategy)
        .threads(parse_threads(opts.threads.as_deref())?)
        .budget(parse_budget(opts.deadline_ms.as_deref())?);
    let t0 = std::time::Instant::now();
    let session = if let Some(spec) = &opts.agg {
        let agg = parse_aggregate(spec)?;
        let q = parse_cq(query).map_err(|e| e.to_string())?;
        ShapleySession::prepare_aggregate(&db, &q, agg, &options).map_err(|e| e.to_string())?
    } else {
        // A UCQ¬ parse also accepts single Boolean rules; queries with a
        // head (which unions reject) fall back to the single-CQ¬ path.
        // With --tier, a query the exact engines reject at prepare time
        // still gets a session: the degraded tiers serve it.
        let prepare = |db: &Database, q: AnyQuery<'_>, options: &ShapleyOptions| {
            if opts.tier {
                ShapleySession::prepare_with_fallback(db, q, options)
            } else {
                ShapleySession::prepare(db, q, options)
            }
        };
        let prepared = match parse_ucq(query) {
            Ok(u) if u.disjuncts().len() > 1 => prepare(&db, AnyQuery::Union(&u), &options),
            Ok(u) => prepare(&db, AnyQuery::Cq(&u.disjuncts()[0]), &options),
            Err(_) => {
                let q = parse_cq(query).map_err(|e| e.to_string())?;
                prepare(&db, AnyQuery::Cq(&q), &options)
            }
        };
        prepared.map_err(|e| e.to_string())?
    };
    let prepared_ms = t0.elapsed().as_secs_f64() * 1e3;
    if opts.tier {
        let mut session = session;
        let policy = TierPolicy {
            epsilon: parse_epsilon(opts.epsilon.as_deref())?,
            ..TierPolicy::default()
        };
        let answer = session.report_tiered(&policy).map_err(|e| e.to_string())?;
        let elapsed = t0.elapsed();
        match &answer {
            TieredAnswer::Exact(report) => {
                print_report(report);
                println!("tier: exact");
            }
            TieredAnswer::Sampled(report) => {
                print_anytime(report);
                println!(
                    "tier: sampled (target ±{}, δ = {})",
                    policy.epsilon, policy.delta
                );
            }
            TieredAnswer::Wsms(report) => {
                print_wsms(report);
                println!("tier: minimal supports (not a Shapley estimate)");
            }
        }
        println!(
            "answered in {:.3} ms (prepare {prepared_ms:.3} ms)",
            elapsed.as_secs_f64() * 1e3
        );
        return Ok(());
    }
    let report = session.report().map_err(|e| e.to_string())?;
    let elapsed = t0.elapsed();
    print_report(&report);
    if report.stats.aggregate_candidates > 0 {
        println!(
            "candidates: {} ({} pruned as provably zero)",
            report.stats.aggregate_candidates, report.stats.pruned_candidates
        );
    }
    if let Some(resolved) = session.strategy() {
        println!("strategy: {resolved:?}");
    }
    println!(
        "{} facts in {:.3} ms (prepare {prepared_ms:.3} ms)",
        report.entries.len(),
        elapsed.as_secs_f64() * 1e3
    );
    Ok(())
}

/// Prints an anytime sampling report: estimates with their confidence
/// intervals, plus convergence and budget diagnostics.
fn print_anytime(report: &AnytimeReport) {
    for entry in &report.entries {
        println!(
            "{:<32} {:+.6} ± {:.6}{}",
            entry.rendered,
            entry.estimate,
            entry.half_width,
            if entry.converged { "" } else { "  (wide)" }
        );
    }
    println!(
        "{} draws this call; {}{}",
        report.spent_samples,
        if report.converged {
            "all intervals within ±ε"
        } else {
            "some intervals wider than ±ε"
        },
        if report.deadline_hit {
            " — budget tripped"
        } else {
            ""
        },
    );
}

/// Prints a WSMS report: per-fact minimal-support scores.
fn print_wsms(report: &WsmsReport) {
    for entry in &report.entries {
        println!(
            "{:<32} {:>12} ≈ {:+.6}  ({} minimal supports)",
            entry.rendered,
            entry.score.to_string(),
            entry.score.to_f64(),
            entry.supports
        );
    }
    println!("{} minimal supports in total", report.minimal_supports);
}

fn cmd_relevance(opts: &Options) -> Result<(), String> {
    let [db_path, query] = opts.positional.as_slice() else {
        return Err("relevance needs a database file and a query".into());
    };
    let spec = opts.fact.as_deref().ok_or("relevance needs --fact")?;
    let db = load_db(db_path)?;
    let q = parse_cq(query).map_err(|e| e.to_string())?;
    let f = find_fact(&db, spec)?;
    let pos = is_positively_relevant(&db, AnyQuery::Cq(&q), f).map_err(|e| e.to_string())?;
    let neg = is_negatively_relevant(&db, AnyQuery::Cq(&q), f).map_err(|e| e.to_string())?;
    println!("fact:                {}", db.render_fact(f));
    println!("positively relevant: {pos}");
    println!("negatively relevant: {neg}");
    println!("Shapley value zero:  {}", !(pos || neg));
    Ok(())
}

/// Exact tuple-independent probability (and expected Shapley marginals)
/// served from a prepared session's compiled engine — the same compile
/// that answers Shapley values and satisfaction counts.
fn cmd_prob(opts: &Options) -> Result<(), String> {
    let [db_path, query] = opts.positional.as_slice() else {
        return Err("prob needs a database file and a query".into());
    };
    let p: f64 = opts
        .default_p
        .as_deref()
        .unwrap_or("0.5")
        .parse()
        .map_err(|_| "--default-p must be a number".to_string())?;
    let p = BigRational::from_f64(p)
        .filter(FactProbabilities::is_valid)
        .ok_or("--default-p must lie in [0, 1]")?;
    let db = load_db(db_path)?;
    let options = ShapleyOptions::auto()
        .threads(parse_threads(opts.threads.as_deref())?)
        .budget(parse_budget(opts.deadline_ms.as_deref())?);
    // Same UCQ-with-fallback idiom as `report`: multi-rule queries route
    // through inclusion–exclusion, headed rules through the CQ¬ path.
    let mut session = match parse_ucq(query) {
        Ok(u) if u.disjuncts().len() > 1 => {
            ShapleySession::prepare(&db, AnyQuery::Union(&u), &options)
        }
        Ok(u) => ShapleySession::prepare(&db, AnyQuery::Cq(&u.disjuncts()[0]), &options),
        Err(_) => {
            let q = parse_cq(query).map_err(|e| e.to_string())?;
            ShapleySession::prepare(&db, AnyQuery::Cq(&q), &options)
        }
    }
    .map_err(|e| e.to_string())?;
    session
        .set_default_probability(p.clone())
        .map_err(|e| e.to_string())?;
    match &opts.fact {
        Some(spec) => {
            let f = find_fact(&db, spec)?;
            let v = session.expected_shapley(f).map_err(|e| e.to_string())?;
            println!(
                "E[marginal of {}] = {} ≈ {:+.9}",
                db.render_fact(f),
                v,
                v.to_f64()
            );
        }
        None => {
            let pr = session.probability().map_err(|e| e.to_string())?;
            println!(
                "Pr[D ⊨ q] = {} ≈ {:.9}  (endogenous facts present with p = {} by default)",
                pr,
                pr.to_f64(),
                p
            );
        }
    }
    Ok(())
}

fn cmd_probability(opts: &Options) -> Result<(), String> {
    let [db_path, query] = opts.positional.as_slice() else {
        return Err("probability needs a database file and a query".into());
    };
    let p: f64 = opts
        .default_p
        .as_deref()
        .unwrap_or("0.5")
        .parse()
        .map_err(|_| "--default-p must be a number".to_string())?;
    if !(0.0..=1.0).contains(&p) {
        return Err("--default-p must lie in [0, 1]".into());
    }
    let db = load_db(db_path)?;
    let q = parse_cq(query).map_err(|e| e.to_string())?;
    let pdb = ProbDatabase::new(db, p);
    let pr = pdb
        .query_probability(&q)
        .or_else(|_| pdb.query_probability_with_rewriting(&q, 10_000_000))
        .map_err(|e| e.to_string())?;
    println!(
        "Pr[D ⊨ {}] = {pr:.9}  (endogenous facts present with p = {p})",
        q.name()
    );
    Ok(())
}

fn cmd_satcount(opts: &Options) -> Result<(), String> {
    let [db_path, query] = opts.positional.as_slice() else {
        return Err("satcount needs a database file and a query".into());
    };
    let db = load_db(db_path)?;
    let q = parse_cq(query).map_err(|e| e.to_string())?;
    let counts = cqshap::core::count_sat_hierarchical(&db, &q).map_err(|e| e.to_string())?;
    println!(
        "|Sat(D, {}, k)| for k = 0..={}:",
        q.name(),
        counts.len() - 1
    );
    for (k, c) in counts.iter().enumerate() {
        println!("  k = {k:<4} {c}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn option_parsing() {
        let o = parse_options(&strs(&[
            "db.txt",
            "q() :- R(x)",
            "--fact",
            "R(a)",
            "--strategy",
            "auto",
        ]))
        .unwrap();
        assert_eq!(o.positional, vec!["db.txt", "q() :- R(x)"]);
        assert_eq!(o.fact.as_deref(), Some("R(a)"));
        assert_eq!(o.strategy.as_deref(), Some("auto"));
        assert!(parse_options(&strs(&["--bogus"])).is_err());
        assert!(parse_options(&strs(&["--fact"])).is_err());
    }

    #[test]
    fn aggregate_spec_parsing() {
        assert!(matches!(
            parse_aggregate("count").unwrap(),
            AggregateFunction::Count
        ));
        match parse_aggregate("sum:r").unwrap() {
            AggregateFunction::Sum { weight_var } => assert_eq!(weight_var, "r"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_aggregate("sum:").is_err());
        assert!(parse_aggregate("avg").is_err());
    }

    #[test]
    fn strategy_parsing() {
        assert_eq!(parse_strategy("auto").unwrap(), Strategy::Auto);
        assert_eq!(parse_strategy("exoshap").unwrap(), Strategy::ExoShap);
        assert!(parse_strategy("wat").is_err());
    }

    #[test]
    fn threads_parsing() {
        assert_eq!(parse_threads(None).unwrap(), 0);
        assert_eq!(parse_threads(Some("0")).unwrap(), 0);
        assert_eq!(parse_threads(Some("8")).unwrap(), 8);
        assert!(parse_threads(Some("many")).is_err());
        assert!(parse_threads(Some("-1")).is_err());
        let o = parse_options(&strs(&["db.txt", "q() :- R(x)", "--threads", "4"])).unwrap();
        assert_eq!(o.threads.as_deref(), Some("4"));
    }

    #[test]
    fn budget_and_epsilon_parsing() {
        assert!(parse_budget(None).unwrap().is_unlimited());
        assert!(!parse_budget(Some("50")).unwrap().is_unlimited());
        assert!(parse_budget(Some("soon")).is_err());
        assert_eq!(parse_epsilon(None).unwrap(), 0.05);
        assert_eq!(parse_epsilon(Some("0.1")).unwrap(), 0.1);
        assert!(parse_epsilon(Some("0")).is_err());
        assert!(parse_epsilon(Some("1.5")).is_err());
        let o = parse_options(&strs(&[
            "db.txt",
            "q() :- R(x)",
            "--deadline-ms",
            "50",
            "--tier",
            "--epsilon",
            "0.1",
        ]))
        .unwrap();
        assert_eq!(o.deadline_ms.as_deref(), Some("50"));
        assert!(o.tier);
        assert_eq!(o.epsilon.as_deref(), Some("0.1"));
    }

    #[test]
    fn trace_parsing() {
        let o = parse_options(&strs(&["db.txt", "q() :- R(x)", "--trace"])).unwrap();
        assert!(o.trace);
        assert!(o.trace_out.is_none());
        let o = parse_options(&strs(&["db.txt", "q() :- R(x)", "--trace-out", "t.json"])).unwrap();
        assert!(!o.trace);
        assert_eq!(o.trace_out.as_deref(), Some("t.json"));
        assert!(parse_options(&strs(&["--trace-out"])).is_err());
    }

    #[test]
    fn fact_lookup() {
        let db = Database::parse("endo R(a, b)\nendo Flag()\n").unwrap();
        assert!(find_fact(&db, "R(a, b)").is_ok());
        assert!(find_fact(&db, "R( a , b )").is_ok());
        assert!(find_fact(&db, "Flag()").is_ok());
        assert!(find_fact(&db, "R(a)").is_err());
        assert!(find_fact(&db, "nope").is_err());
    }

    #[test]
    fn classify_command_runs() {
        let opts = parse_options(&strs(&["q() :- R(x), S(x, y), !T(y)", "--exo", "S"])).unwrap();
        assert!(cmd_classify(&opts).is_ok());
        assert!(run(&strs(&["classify", "q() :- R(x)"])).is_ok());
        assert!(run(&strs(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }
}
