//! Property-based equivalence of the batched all-facts engine.
//!
//! The batched `CompiledCount` report must be *bit-identical* (exact
//! rationals) to the independent per-fact paths on randomized
//! hierarchical CQ¬ instances — positive and negated atoms, exogenous
//! mixes — and must satisfy the efficiency axiom on every generated
//! instance. `shapley_by_permutations` ties both back to the textbook
//! definition of the Shapley value on the small instances.

use cqshap::prelude::*;
use cqshap::workloads::random_db::RandomDbConfig;
use proptest::prelude::*;

/// Hierarchical CQ¬s with positive atoms, negated atoms, and constants.
const HIERARCHICAL: &[&str] = &[
    "q() :- A(x), !B(x), C(x, y)",
    "q() :- A(x), B(x)",
    "q() :- C(x, y), !D(x, y)",
    "q() :- A(x), C(x, y), !D(x, y), E(x, y, z)",
    "q() :- A(x), !B(x), F(y), !G(y)",
    "q() :- C(x, 'd0'), !B(x)",
    "q() :- A(x), !B(x), C(x, y), !D(x, y)",
];

/// Relations to declare exogenous, per catalog query, in the
/// "exogenous mix" runs (only relations that carry no endogenous facts
/// may be declared, so the generator is told up front).
const EXO_MIXES: &[&[&str]] = &[&[], &["A"], &["C"], &["A", "F"]];

fn build(
    qi: usize,
    mix: usize,
    seed: u64,
    domain: usize,
    facts: usize,
) -> (ConjunctiveQuery, Database) {
    let q = parse_cq(HIERARCHICAL[qi]).unwrap();
    let exo: Vec<String> = EXO_MIXES[mix % EXO_MIXES.len()]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let cfg = RandomDbConfig {
        domain,
        facts_per_relation: facts,
        seed,
        exogenous_relations: exo,
        ..Default::default()
    };
    let db = cfg.generate(&q);
    (q, db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Batched report values equal the per-fact `|Sat|` oracle — and
    /// the efficiency axiom holds exactly on every generated instance.
    #[test]
    fn batched_report_matches_per_fact_oracle(
        qi in 0..HIERARCHICAL.len(),
        mix in 0usize..4,
        seed in 0u64..5000,
        dom in 2usize..5,
        facts in 2usize..8,
    ) {
        let (q, db) = build(qi, mix, seed, dom, facts);
        prop_assume!(db.endo_count() >= 1 && db.endo_count() <= 16);
        let opts = ShapleyOptions::default();
        let report = shapley_report(&db, &q, &opts).unwrap();
        prop_assert!(report.efficiency_holds(), "efficiency on {} over\n{}", q, db);
        let baseline = shapley_report_per_fact(&db, &q, &opts).unwrap();
        for &f in db.endo_facts() {
            let entry = report.entry(f).unwrap();
            prop_assert_eq!(entry.fact, f);
            let via_counts =
                shapley_via_counts(&db, AnyQuery::Cq(&q), f, &HierarchicalCounter).unwrap();
            prop_assert_eq!(&entry.value, &via_counts, "{} on\n{}", db.render_fact(f), db);
            let seeded = &baseline.entry(f).unwrap().value;
            prop_assert_eq!(&entry.value, seeded, "seed path {} on\n{}", db.render_fact(f), db);
        }
    }

    /// The batched counts pair is bit-identical to the per-fact oracle
    /// on the materialized modified databases.
    #[test]
    fn batched_counts_match_materialized_copies(
        qi in 0..HIERARCHICAL.len(),
        seed in 0u64..3000,
    ) {
        let (q, db) = build(qi, 0, seed, 3, 4);
        prop_assume!(db.endo_count() >= 1 && db.endo_count() <= 12);
        let compiled = CompiledCount::compile(&db, &q).unwrap();
        for &f in db.endo_facts() {
            let (n_minus, n_plus) = compiled.counts_pair(&db, f).unwrap();
            let (db_minus, _) = db.without_fact(f).unwrap();
            let (db_plus, _) = db.with_fact_exogenous(f).unwrap();
            let want_minus = HierarchicalCounter.counts(&db_minus, AnyQuery::Cq(&q)).unwrap();
            let want_plus = HierarchicalCounter.counts(&db_plus, AnyQuery::Cq(&q)).unwrap();
            prop_assert_eq!(&n_minus, &want_minus, "N_k of {} on\n{}", db.render_fact(f), db);
            prop_assert_eq!(&n_plus, &want_plus, "N⁺_k of {} on\n{}", db.render_fact(f), db);
        }
    }

    /// On instances small enough for `|Dn|!` enumeration, the batched
    /// values also equal the permutation definition itself.
    #[test]
    fn batched_report_matches_permutations(
        qi in 0..HIERARCHICAL.len(),
        mix in 0usize..4,
        seed in 0u64..2000,
    ) {
        let (q, db) = build(qi, mix, seed, 3, 3);
        prop_assume!(db.endo_count() >= 1 && db.endo_count() <= 7);
        let report = shapley_report(&db, &q, &ShapleyOptions::default()).unwrap();
        prop_assert!(report.efficiency_holds());
        for &f in db.endo_facts() {
            let p = shapley_by_permutations(&db, AnyQuery::Cq(&q), f, 9).unwrap();
            prop_assert_eq!(
                &report.entry(f).unwrap().value, &p,
                "{} on\n{}", db.render_fact(f), db
            );
        }
    }
}

/// The `ExoShap` strategy routes through the same batched engine after
/// the (shared) rewriting; its report must match brute force.
#[test]
fn exoshap_report_is_batched_and_matches_brute_force() {
    let q = parse_cq("q() :- !R(x, w), S(z, x), !P(z, w), T(y, w)").unwrap();
    for seed in 0..6u64 {
        let cfg = RandomDbConfig {
            domain: 3,
            facts_per_relation: 3,
            seed,
            exogenous_relations: vec!["S".into(), "P".into()],
            ..Default::default()
        };
        let db = cfg.generate(&q);
        if db.endo_count() == 0 || db.endo_count() > 12 {
            continue;
        }
        // `cqshap::prelude::Strategy` collides with proptest's trait of
        // the same name under the glob imports — qualify explicitly.
        let exo = ShapleyOptions::with_strategy(cqshap::core::shapley::Strategy::ExoShap);
        let brute =
            ShapleyOptions::with_strategy(cqshap::core::shapley::Strategy::BruteForceSubsets);
        let batched = shapley_report(&db, &q, &exo).unwrap();
        assert!(batched.efficiency_holds(), "seed {seed}");
        let reference = shapley_report(&db, &q, &brute).unwrap();
        for &f in db.endo_facts() {
            assert_eq!(
                batched.entry(f).unwrap().value,
                reference.entry(f).unwrap().value,
                "{} (seed {seed}) on\n{}",
                db.render_fact(f),
                db
            );
        }
    }
}

/// An `always_false` rewriting outcome (empty fully-exogenous
/// component) must yield an all-zero report that satisfies efficiency.
#[test]
fn always_false_rewrite_gives_zero_report() {
    let mut db = Database::parse("endo S(a)\nendo S(b)\n").unwrap();
    let r = db.add_relation("R", 1).unwrap();
    db.declare_exogenous_relation(r).unwrap();
    let q = parse_cq("q() :- S(x), R(u)").unwrap();
    let options = ShapleyOptions::with_strategy(cqshap::core::shapley::Strategy::ExoShap);
    let report = shapley_report(&db, &q, &options).unwrap();
    assert!(report.efficiency_holds());
    assert!(report.total.is_zero());
    for &f in db.endo_facts() {
        assert!(report.entry(f).unwrap().value.is_zero());
    }
}

/// `ShapleyReport::entry` is an indexed lookup: it answers exactly the
/// endogenous facts and rejects everything else.
#[test]
fn report_entry_lookup() {
    let db = cqshap::workloads::figure_1_database();
    let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
    let report = shapley_report(&db, &q1, &ShapleyOptions::default()).unwrap();
    for &f in db.endo_facts() {
        assert_eq!(report.entry(f).unwrap().fact, f);
    }
    let exo_fact = db.find_fact("Stud", &["Adam"]).unwrap();
    assert!(report.entry(exo_fact).is_none());
}
