//! Cross-crate validation of the executable hardness reductions.

use cqshap::gadgets::{embed, prop55, prop58, reduction_rst};
use cqshap::prelude::*;
use cqshap::workloads::{formulas, graphs};

/// Lemma B.3 end-to-end on random bipartite graphs: Shapley values of
/// `q_RS¬T` instances recover |IS(g)| exactly.
#[test]
fn lemma_b3_recovers_independent_set_counts() {
    for seed in 0..4u64 {
        let g = graphs::random_bipartite(2, 2, 0.45, seed);
        let truth = g.independent_set_count();
        let (recovered, counts) =
            reduction_rst::recover_is_count(&g, &reduction_rst::brute_force_oracle).unwrap();
        assert_eq!(recovered, truth, "seed {seed}");
        assert_eq!(counts, g.closed_subset_counts(), "seed {seed}");
    }
}

/// Proposition 5.5 against DPLL on generated (2+,2−,4+−) formulas, and
/// Corollary 5.6: zeroness of the T-fact matches satisfiability.
#[test]
fn prop_5_5_relevance_and_zeroness() {
    let q = prop55::qrst_nr_query();
    for seed in 0..6u64 {
        let formula = formulas::random_224(4, 5, seed);
        let (db, f) = prop55::build_relevance_instance(&formula).unwrap();
        let (pos, neg) = brute_force_relevance(&db, AnyQuery::Cq(&q), f, 24).unwrap();
        assert_eq!(pos, formula.is_satisfiable(), "seed {seed}: {formula}");
        assert!(
            !neg,
            "T occurs only positively; f cannot be negatively relevant"
        );
        // Corollary 5.6: Shapley zeroness coincides (T is polarity
        // consistent even though the query is not).
        let v = shapley_via_counts(&db, AnyQuery::Cq(&q), f, &BruteForceCounter::new()).unwrap();
        assert_eq!(v.is_zero(), !pos, "seed {seed}");
        if pos {
            assert!(v.is_positive(), "positive relevance only");
        }
    }
}

/// Proposition 5.8 against DPLL on random 3CNF formulas.
#[test]
fn prop_5_8_union_relevance() {
    let u = prop58::qsat_query();
    for seed in 0..6u64 {
        let f3 = formulas::random_3sat(3, 7 + (seed as usize % 6), seed);
        let (db, r0) = prop58::build_relevance_instance(&f3).unwrap();
        let (pos, _) = brute_force_relevance(&db, AnyQuery::Union(&u), r0, 24).unwrap();
        assert_eq!(pos, f3.is_satisfiable(), "seed {seed}: {f3}");
    }
    // Random 3-variable formulas are rarely unsatisfiable; pin the UNSAT
    // side with all eight sign patterns over {x0, x1, x2}.
    use cqshap::gadgets::{Clause, CnfFormula, Literal};
    let unsat = CnfFormula::new(
        3,
        (0u8..8)
            .map(|mask| {
                Clause(
                    (0..3)
                        .map(|i| Literal {
                            var: i,
                            positive: mask & (1 << i) != 0,
                        })
                        .collect(),
                )
            })
            .collect(),
    );
    assert!(!unsat.is_satisfiable());
    let (db, r0) = prop58::build_relevance_instance(&unsat).unwrap();
    let (pos, neg) = brute_force_relevance(&db, AnyQuery::Union(&u), r0, 24).unwrap();
    assert!(!pos && !neg, "UNSAT formula must make R(0) irrelevant");
}

/// Lemma D.1's full chain: coloring → (3+,2−) → (2+,2−,4+−) → relevance.
#[test]
fn lemma_d1_chain_to_relevance() {
    use cqshap::gadgets::coloring::{coloring_to_3p2n, to_224};
    let q = prop55::qrst_nr_query();
    for (n, edge_prob, seed) in [(3usize, 0.8, 1u64), (4, 0.9, 2)] {
        let g = graphs::random_graph(n, edge_prob, seed);
        let f224 = to_224(&coloring_to_3p2n(&g));
        // The reduced formulas are large; check the SAT chain and, when
        // the variable count stays feasible, the relevance instance too.
        assert_eq!(g.is_three_colorable(), f224.is_satisfiable());
        if f224.num_vars <= 13 && f224.clauses.iter().any(|c| c.0.len() == 2) {
            if let Ok((db, f)) = prop55::build_relevance_instance(&f224) {
                if db.endo_count() <= 15 {
                    let (pos, _) = brute_force_relevance(&db, AnyQuery::Cq(&q), f, 24).unwrap();
                    assert_eq!(pos, g.is_three_colorable());
                }
            }
        }
    }
}

/// Lemma B.4 embedding on the farmer-exports query from the intro.
#[test]
fn lemma_b4_embedding_preserves_shapley() {
    let q = cqshap::workloads::queries::farmer_exports();
    // An admissible base instance.
    let mut base = Database::new();
    base.add_relation("S", 2).unwrap();
    base.add_endo("R", &["a0"]).unwrap();
    base.add_endo("R", &["a1"]).unwrap();
    base.add_endo("T", &["b0"]).unwrap();
    base.add_endo("T", &["b1"]).unwrap();
    for (a, b) in [("a0", "b0"), ("a0", "b1"), ("a1", "b1")] {
        base.add_exo("S", &[a, b]).unwrap();
    }
    let emb = embed::embed_triplet(&q, &base).unwrap();
    let oracle = BruteForceCounter::new();
    assert_eq!(emb.fact_map.len(), base.endo_count());
    for (&bf, &ef) in &emb.fact_map {
        let base_v = shapley_via_counts(&base, AnyQuery::Cq(&emb.base), bf, &oracle).unwrap();
        let emb_v = shapley_via_counts(&emb.db, AnyQuery::Cq(&q), ef, &oracle).unwrap();
        assert_eq!(base_v, emb_v, "{}", base.render_fact(bf));
    }
}

/// The path embedding (Theorem 4.3 hardness side) on Section 4.1's q'.
#[test]
fn appendix_c_path_embedding() {
    let q = cqshap::workloads::queries::section_4_1_hard();
    let exo: std::collections::HashSet<String> = ["S", "P"].iter().map(|s| s.to_string()).collect();
    let mut base = Database::new();
    base.add_relation("S", 2).unwrap();
    base.add_endo("R", &["a0"]).unwrap();
    base.add_endo("R", &["a1"]).unwrap();
    base.add_endo("T", &["b0"]).unwrap();
    for (a, b) in [("a0", "b0"), ("a1", "b0")] {
        base.add_exo("S", &[a, b]).unwrap();
    }
    let emb = embed::embed_path(&q, &exo, &base, 1_000_000).unwrap();
    let oracle = BruteForceCounter::new();
    for (&bf, &ef) in &emb.fact_map {
        let base_v = shapley_via_counts(&base, AnyQuery::Cq(&emb.base), bf, &oracle).unwrap();
        let emb_v = shapley_via_counts(&emb.db, AnyQuery::Cq(&q), ef, &oracle).unwrap();
        assert_eq!(base_v, emb_v, "{}", base.render_fact(bf));
    }
}

/// The gap construction generalizes beyond the Section 5.1 query.
#[test]
fn theorem_5_1_generic_families() {
    for text in [
        "q() :- R(x), S(x, y), !R(y)",
        "q() :- A(x), S(x, y), !B(y)",
        "q() :- A(x), !B(x)",
        "q() :- E(x, y), !E(y, x)",
    ] {
        let q = parse_cq(text).unwrap();
        for n in 1..=2usize {
            let inst = build_gap_family(&q, n).unwrap();
            assert_eq!(inst.db.endo_count(), 2 * n + 1, "{text}");
            let v = shapley_via_counts(
                &inst.db,
                AnyQuery::Cq(&q),
                inst.f0,
                &BruteForceCounter::new(),
            )
            .unwrap();
            assert_eq!(v.abs(), inst.expected_abs, "{text}, n={n}");
            assert_eq!(inst.expected_abs, expected_gap_value(n));
        }
    }
}
