//! End-to-end smoke tests for the `cqshap` binary: spawn the real
//! executable against a Figure-1 database file on disk and check the
//! paper's numbers come out of stdout.

use std::path::PathBuf;
use std::process::{Command, Output};

/// The database of Figure 1 in the on-disk line format of `cqshap-db`.
const FIGURE_1: &str = "\
# Figure 1 of the paper.
exo Stud(Adam)
exo Stud(Ben)
exo Stud(Caroline)
exo Stud(David)
endo TA(Adam)
endo TA(Ben)
endo TA(David)
exo Course(OS, EE)
exo Course(IC, EE)
exo Course(DB, CS)
exo Course(AI, CS)
endo Reg(Adam, OS)
endo Reg(Adam, AI)
endo Reg(Ben, OS)
endo Reg(Caroline, DB)
endo Reg(Caroline, IC)
exo Adv(Michael, Adam)
exo Adv(Michael, Ben)
exo Adv(Naomi, Caroline)
exo Adv(Michael, David)
";

const Q1: &str = "q1() :- Stud(x), !TA(x), Reg(x, y)";

/// A Figure-1 database file in a temp directory, removed on drop (also
/// during unwinding, so failed assertions don't leak directories).
struct TempDb {
    dir: PathBuf,
    path: PathBuf,
}

impl TempDb {
    fn path(&self) -> &str {
        self.path.to_str().unwrap()
    }
}

impl Drop for TempDb {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Writes the Figure-1 database to a fresh temp file and returns its path.
fn figure_1_file(tag: &str) -> TempDb {
    let dir = std::env::temp_dir().join(format!("cqshap-cli-smoke-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("figure1.db");
    std::fs::write(&path, FIGURE_1).expect("write database file");
    TempDb { dir, path }
}

fn cqshap(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cqshap"))
        .args(args)
        .output()
        .expect("spawn cqshap")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "cqshap failed: {}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn classify_reports_the_dichotomy() {
    let out = stdout_of(&cqshap(&["classify", Q1]));
    assert!(out.contains("hierarchical: true"), "stdout: {out}");
    assert!(out.contains("PTIME"), "stdout: {out}");

    // q2 of the paper is non-hierarchical: hard without exogenous help...
    let q2 = "q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')";
    let out = stdout_of(&cqshap(&["classify", q2]));
    assert!(out.contains("hierarchical: false"), "stdout: {out}");
    assert!(out.contains("FP#P-complete"), "stdout: {out}");

    // ...and tractable once Stud and Course are declared exogenous
    // (Theorem 4.3).
    let out = stdout_of(&cqshap(&["classify", q2, "--exo", "Stud,Course"]));
    assert!(out.contains("Thm 4.3"), "stdout: {out}");
    assert!(out.contains("PTIME"), "stdout: {out}");
}

#[test]
fn shapley_single_fact_matches_example_2_3() {
    let db = figure_1_file("single");
    let out = stdout_of(&cqshap(&["shapley", db.path(), Q1, "--fact", "TA(Adam)"]));
    assert!(out.contains("-3/28"), "stdout: {out}");
}

#[test]
fn shapley_report_covers_every_fact_and_efficiency() {
    let db = figure_1_file("report");
    let out = stdout_of(&cqshap(&["shapley", db.path(), Q1]));
    // All five Example 2.3 values appear (two facts share 37/210 and two
    // share 13/42), and the efficiency check passes with Σ = 1.
    for value in ["-3/28", "-2/35", "37/210", "27/140", "13/42"] {
        assert!(out.contains(value), "missing {value} in stdout: {out}");
    }
    assert!(out.contains("efficiency holds"), "stdout: {out}");
}

#[test]
fn report_command_prints_values_and_timing() {
    let db = figure_1_file("batched-report");
    let out = stdout_of(&cqshap(&["report", db.path(), Q1]));
    for value in ["-3/28", "-2/35", "37/210", "27/140", "13/42"] {
        assert!(out.contains(value), "missing {value} in stdout: {out}");
    }
    assert!(out.contains("efficiency holds"), "stdout: {out}");
    assert!(out.contains("8 facts in"), "stdout: {out}");
}

#[test]
fn report_command_accepts_unions() {
    let db = figure_1_file("union-report");
    // q1 unioned with a rule over relations absent from the database:
    // the union's values equal q1's own (the second disjunct never
    // fires), and they come out of the inclusion–exclusion engine.
    let union = "q1() :- Stud(x), !TA(x), Reg(x, y); q2() :- Lab(l), Asst(l, s), !Closed(l)";
    let out = stdout_of(&cqshap(&["report", db.path(), union]));
    for value in ["-3/28", "-2/35", "37/210", "27/140", "13/42"] {
        assert!(out.contains(value), "missing {value} in stdout: {out}");
    }
    assert!(out.contains("efficiency holds"), "stdout: {out}");
}

#[test]
fn report_command_accepts_aggregates() {
    let db = figure_1_file("agg-report");
    // Count{y | Stud(x), !TA(x), Reg(x, y)}: per-course counting. The
    // efficiency total is agg(D) − agg(Dx) = 4 − 0.
    let q = "qc(y) :- Stud(x), !TA(x), Reg(x, y)";
    let out = stdout_of(&cqshap(&["report", db.path(), q, "--agg", "count"]));
    assert!(out.contains("efficiency holds"), "stdout: {out}");
    assert!(out.contains("8 facts in"), "stdout: {out}");

    let out = cqshap(&["report", db.path(), q, "--agg", "avg"]);
    assert!(!out.status.success());
}

#[test]
fn shapley_strategies_agree() {
    let db = figure_1_file("strategies");
    for strategy in ["auto", "hierarchical", "brute", "permutations"] {
        let out = stdout_of(&cqshap(&[
            "shapley",
            db.path(),
            Q1,
            "--fact",
            "Reg(Caroline, DB)",
            "--strategy",
            strategy,
        ]));
        assert!(out.contains("13/42"), "strategy {strategy}: {out}");
    }
}

#[test]
fn bad_inputs_fail_with_nonzero_exit() {
    let out = cqshap(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "stderr: {err}");

    let db = figure_1_file("bad");
    let out = cqshap(&["shapley", db.path(), "not a query"]);
    assert!(!out.status.success());

    let out = cqshap(&["shapley", "/nonexistent/file.db", Q1]);
    assert!(!out.status.success());
}
