//! Property-based pinning of the unified probability path.
//!
//! The tentpole claim of the evaluation-domain refactor is that the
//! compiled engine instantiated at the probability domain computes the
//! *same function* as both (a) the seed lifted-inference traversal
//! (retained in `cqshap-probdb` as an independent oracle) and (b)
//! brute-force world enumeration. These proptests check all three on
//! random tuple-independent CQ¬ instances with exact dyadic
//! probabilities — equality is bit-for-bit on `BigRational`, never
//! epsilon-close. A second group pins `ShapleySession` incremental
//! maintenance: after every random update, `probability()` and
//! `expected_shapley()` must match a freshly prepared session exactly.

use cqshap::prelude::*;
use cqshap::probdb::lifted::oracle_probability;
use cqshap::workloads::random_db::RandomDbConfig;
use proptest::prelude::*;

/// Hierarchical self-join-free CQ¬s (the compiled fragment, so the
/// oracle applies too), plus constants and vacuous-negation shapes.
const CQS: &[&str] = &[
    "q() :- A(x), !B(x), C(x, y)",
    "q() :- A(x), B(x)",
    "q() :- C(x, y), !D(x, y)",
    "q() :- A(x), C(x, y), !D(x, y), E(x, y, z)",
    "q() :- A(x), !B(x), F(y), !G(y)",
    "q() :- C(x, 'd0'), !B(x)",
    "q() :- A(x), C(x, y), E(x, y, z)",
];

/// 2–3-disjunct UCQ¬s for the inclusion–exclusion probability path.
const UNIONS: &[&str] = &[
    "q1() :- A(x), !B(x), C(x, y); q2() :- F(u), !G(u)",
    "q1() :- A(x), B(x); q2() :- C(x, y), !D(x, y)",
    "q1() :- A(x); q2() :- F(y); q3() :- H(z, w)",
    "q1() :- A(x), !B(x); q2() :- A(y)",
];

const EXO_MIXES: &[&[&str]] = &[&[], &["A"], &["C"]];

/// Exact dyadic probabilities including both degenerate endpoints.
const PROBS: &[(i64, i64)] = &[
    (1, 2),
    (1, 4),
    (3, 4),
    (1, 8),
    (5, 8),
    (1, 1),
    (0, 1),
    (7, 8),
];

/// Deterministic per-fact probability table: cycle through [`PROBS`]
/// with a seed-dependent phase so every instance mixes plain, extreme,
/// and default probabilities.
fn assign_probs(db: &Database, seed: u64) -> FactProbabilities {
    let mut probs = FactProbabilities::uniform(BigRational::from_i64_ratio(1, 3));
    for (i, f) in db.fact_ids().enumerate() {
        if db.fact(f).provenance.is_endogenous() && !(i as u64 + seed).is_multiple_of(3) {
            let (n, d) = PROBS[(i + seed as usize) % PROBS.len()];
            probs.set(f, BigRational::from_i64_ratio(n, d));
        }
    }
    probs
}

/// One deterministic pseudo-random update derived from `step`: insert a
/// fresh fact, retract a live one, or flip provenance (same mix as the
/// Shapley session proptests).
fn apply_update(session: &mut ShapleySession, step: u64) {
    let h = |k: u64| step.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(k as u32);
    match h(1) % 3 {
        0 => {
            let db = session.database();
            let rels: Vec<(String, usize)> = db
                .schema()
                .iter()
                .map(|(rel, def)| (def.name.clone(), db.schema().arity(rel)))
                .collect();
            if rels.is_empty() {
                return;
            }
            let (name, arity) = rels[(h(2) % rels.len() as u64) as usize].clone();
            let consts: Vec<String> = (0..arity)
                .map(|i| format!("d{}", (h(3 + i as u64) % 4) as usize))
                .collect();
            let refs: Vec<&str> = consts.iter().map(|s| s.as_str()).collect();
            let provenance = if h(7) % 2 == 0 {
                Provenance::Endogenous
            } else {
                Provenance::Exogenous
            };
            let _ = session.insert_fact(&name, &refs, provenance);
        }
        1 => {
            let ids: Vec<FactId> = session.database().fact_ids().collect();
            if ids.is_empty() {
                return;
            }
            let f = ids[(h(2) % ids.len() as u64) as usize];
            session.retract_fact(f).expect("live fact retracts");
        }
        _ => {
            let ids: Vec<FactId> = session.database().fact_ids().collect();
            if ids.is_empty() {
                return;
            }
            let f = ids[(h(2) % ids.len() as u64) as usize];
            let exo = session.database().fact(f).provenance.is_endogenous();
            let _ = session.set_exogenous(f, exo);
        }
    }
}

/// Maintained session ≡ fresh prepare with the same default
/// probability, for `probability()` and every `expected_shapley()`.
fn assert_prob_matches_fresh(
    session: &mut ShapleySession,
    query: AnyQuery<'_>,
    opts: &ShapleyOptions,
    default_p: &BigRational,
) {
    let db = session.database().clone();
    let mut fresh = ShapleySession::prepare(&db, query, opts).unwrap();
    fresh.set_default_probability(default_p.clone()).unwrap();
    assert_eq!(
        session.probability().unwrap(),
        fresh.probability().unwrap(),
        "maintained vs fresh probability over\n{db}"
    );
    for f in db.fact_ids() {
        if db.endo_index(f).is_none() {
            continue;
        }
        assert_eq!(
            session.expected_shapley(f).unwrap(),
            fresh.expected_shapley(f).unwrap(),
            "maintained vs fresh expected marginal at {} over\n{db}",
            db.render_fact(f)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Unified compiled probability ≡ seed lifted oracle ≡ brute-force
    /// enumeration, bit for bit, on random tuple-independent instances.
    #[test]
    fn unified_probability_matches_oracle_and_enumeration(
        qi in 0..CQS.len(),
        mix in 0usize..3,
        seed in 0u64..4000,
    ) {
        let q = parse_cq(CQS[qi]).unwrap();
        let exo: Vec<String> = EXO_MIXES[mix].iter().map(|s| s.to_string()).collect();
        let cfg = RandomDbConfig {
            domain: 3,
            facts_per_relation: 3,
            seed,
            exogenous_relations: exo,
            ..Default::default()
        };
        let db = cfg.generate(&q);
        prop_assume!(db.endo_count() <= 12);
        let probs = assign_probs(&db, seed);

        let unified = CompiledProbability::compile(&db, &q, probs.clone())
            .unwrap()
            .probability()
            .clone();
        let oracle = oracle_probability(&db, &probs, &q).unwrap();
        prop_assert_eq!(&unified, &oracle, "compiled vs seed oracle over\n{}", db);
        let enumerated =
            probability_by_enumeration(&db, AnyQuery::Cq(&q), &probs, None, 14).unwrap();
        prop_assert_eq!(&unified, &enumerated, "compiled vs enumeration over\n{}", db);

        // Conditioned marginals against forced enumeration too.
        let engine = CompiledProbability::compile(&db, &q, probs.clone()).unwrap();
        for f in db.fact_ids().filter(|&f| db.endo_index(f).is_some()).take(3) {
            let expected = engine.expected_marginal(&db, f).unwrap();
            let present =
                probability_by_enumeration(&db, AnyQuery::Cq(&q), &probs, Some((f, true)), 14)
                    .unwrap();
            let absent =
                probability_by_enumeration(&db, AnyQuery::Cq(&q), &probs, Some((f, false)), 14)
                    .unwrap();
            prop_assert_eq!(expected, present - absent, "marginal at {}", db.render_fact(f));
        }
    }

    /// Union probabilities through the session's inclusion–exclusion
    /// path match world enumeration exactly.
    #[test]
    fn union_probability_matches_enumeration(
        ui in 0..UNIONS.len(),
        mix in 0usize..3,
        seed in 0u64..4000,
    ) {
        let u = parse_ucq(UNIONS[ui]).unwrap();
        let exo: Vec<String> = EXO_MIXES[mix].iter().map(|s| s.to_string()).collect();
        let cfg = RandomDbConfig {
            domain: 3,
            facts_per_relation: 2,
            seed,
            exogenous_relations: exo,
            ..Default::default()
        };
        let db = cfg.generate_union(&u);
        prop_assume!(db.endo_count() <= 10);
        let default_p = BigRational::from_i64_ratio(1, 3);
        let opts = ShapleyOptions::auto();
        let mut session = ShapleySession::prepare(&db, AnyQuery::Union(&u), &opts).unwrap();
        session.set_default_probability(default_p.clone()).unwrap();
        let probs = FactProbabilities::uniform(default_p);
        let enumerated =
            probability_by_enumeration(&db, AnyQuery::Union(&u), &probs, None, 12).unwrap();
        prop_assert_eq!(session.probability().unwrap(), enumerated, "over\n{}", db);
    }

    /// Session probability state survives random update sequences: after
    /// every insert / retract / provenance flip, `probability()` and
    /// `expected_shapley()` are bit-identical to a fresh prepare.
    #[test]
    fn session_probability_updates_match_fresh_prepare(
        qi in 0..CQS.len(),
        mix in 0usize..3,
        seed in 0u64..4000,
        steps in 1usize..5,
    ) {
        let q = parse_cq(CQS[qi]).unwrap();
        let exo: Vec<String> = EXO_MIXES[mix].iter().map(|s| s.to_string()).collect();
        let cfg = RandomDbConfig {
            domain: 3,
            facts_per_relation: 3,
            seed,
            exogenous_relations: exo,
            ..Default::default()
        };
        let db = cfg.generate(&q);
        prop_assume!(db.endo_count() >= 1 && db.endo_count() <= 10);
        let default_p = BigRational::from_i64_ratio(2, 5);
        let opts = ShapleyOptions::auto();
        let mut session = ShapleySession::prepare(&db, AnyQuery::Cq(&q), &opts).unwrap();
        session.set_default_probability(default_p.clone()).unwrap();
        // Force the lazy probability state to exist so updates exercise
        // the maintenance path rather than a first build.
        session.probability().unwrap();
        for step in 0..steps as u64 {
            apply_update(&mut session, seed.wrapping_add(step).wrapping_mul(2654435761));
            prop_assume!(session.database().endo_count() <= 12);
            assert_prob_matches_fresh(&mut session, AnyQuery::Cq(&q), &opts, &default_p);
        }
    }
}
