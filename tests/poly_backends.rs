//! End-to-end checks of the engines at sizes where the `poly`
//! subsystem's fast convolution backends actually engage.
//!
//! The unit and property tests pin the backends against schoolbook on
//! synthetic vectors; these tests pin the *engines* — compile, report,
//! and incremental maintenance run their polynomials through the
//! dispatched arithmetic (Karatsuba/NTT products, division-based
//! leave-one-out environments, Pascal shifts), and every answer must
//! be bit-identical to the independent per-fact counting path.

use cqshap::core::{
    count_sat_hierarchical, shapley_via_counts, AnyQuery, CompiledCount, HierarchicalCounter,
    ShapleyOptions, ShapleySession,
};
use cqshap::workloads::{self, queries};

/// Large enough that the compile-stage products leave the pure
/// schoolbook band (the leave-one-out total spans ~190 coefficients),
/// small enough for a quick per-fact cross-check.
const M: usize = 192;

#[test]
fn large_compile_matches_per_fact_counting() {
    let db = workloads::report_benchmark_db(M);
    let q1 = queries::q1();
    let compiled = CompiledCount::compile(&db, &q1).unwrap();
    // The total counts recompose through a different convolution order
    // (sequential recursion vs leave-one-out division), so agreement
    // cross-validates the subsystem on real count polynomials.
    assert_eq!(
        compiled.total_counts(),
        &count_sat_hierarchical(&db, &q1).unwrap()[..]
    );
    // Spot-check a spread of facts against the independent reduction.
    for &f in db.endo_facts().iter().step_by(M / 8) {
        let want = shapley_via_counts(&db, AnyQuery::Cq(&q1), f, &HierarchicalCounter).unwrap();
        assert_eq!(
            compiled.value(&db, f).unwrap(),
            want,
            "{}",
            db.render_fact(f)
        );
    }
}

#[test]
fn large_report_is_efficient_across_thread_caps() {
    let db = workloads::report_benchmark_db(M);
    let q1 = queries::q1();
    let reference =
        ShapleySession::prepare(&db, AnyQuery::Cq(&q1), &ShapleyOptions::auto().threads(1))
            .unwrap()
            .report()
            .unwrap();
    assert!(reference.efficiency_holds());
    for threads in [2usize, 4] {
        let report = ShapleySession::prepare(
            &db,
            AnyQuery::Cq(&q1),
            &ShapleyOptions::auto().threads(threads),
        )
        .unwrap()
        .report()
        .unwrap();
        for (a, b) in report.entries.iter().zip(&reference.entries) {
            assert_eq!(a.value, b.value, "{} with {threads} threads", a.rendered);
        }
    }
}

#[test]
fn large_session_updates_stay_bit_identical() {
    // Incremental maintenance at this size patches NTT-built
    // environments by exact division and Pascal shifts; the session
    // must keep agreeing with a fresh prepare bit-for-bit.
    let db = workloads::report_benchmark_db(M);
    let q1 = queries::q1();
    let opts = ShapleyOptions::auto();
    let mut session = ShapleySession::prepare(&db, AnyQuery::Cq(&q1), &opts).unwrap();
    let grouped = db.find_fact("TA", &["s0"]).unwrap();
    session.set_exogenous(grouped, true).unwrap();
    session.set_exogenous(grouped, false).unwrap();
    let inserted = session
        .insert_fact("Reg", &["s1", "c10"], cqshap::db::Provenance::Endogenous)
        .unwrap();
    session.retract_fact(inserted).unwrap();
    assert_eq!(session.stats().incremental_updates, 4);
    let fresh = ShapleySession::prepare(session.database(), AnyQuery::Cq(&q1), &opts).unwrap();
    let (a, b) = (session.report().unwrap(), fresh.report().unwrap());
    assert!(a.efficiency_holds());
    for (x, y) in a.entries.iter().zip(&b.entries) {
        assert_eq!(x.value, y.value, "{}", x.rendered);
    }
}
