//! End-to-end observability: the trace recorder installed once for the
//! whole process, sessions running under it, and the contract that a
//! deadline trip's phase label and the trace vocabulary are the same
//! strings.
//!
//! All tests share one process-wide trace window (installation is
//! permanent), so every assertion here is monotone — "at least", "is
//! present" — and no test clears the window.

use cqshap::obs;
use cqshap::prelude::*;
use cqshap::workloads::{self, queries};

fn trace() -> &'static obs::TraceRecorder {
    obs::install_trace().expect("only the trace recorder is installed in this binary")
}

/// Satellite contract: `budget::check` phase labels ARE obs phase keys,
/// so the phase named by a `DeadlineExceeded` error can be looked up
/// verbatim among the trace's `deadline.trip` events.
#[test]
fn deadline_trip_phase_appears_in_trace() {
    let t = trace();
    let db = workloads::report_benchmark_db(64);
    let q1 = queries::q1();
    let options = ShapleyOptions::auto().budget(Budget::wall_ms(0));
    let err = ShapleySession::prepare(&db, AnyQuery::Cq(&q1), &options)
        .and_then(|s| s.report())
        .expect_err("a zero budget must trip at the first checkpoint");
    let CoreError::DeadlineExceeded { phase, .. } = err else {
        panic!("expected DeadlineExceeded, got {err}");
    };
    // The error's label is drawn from the shared vocabulary…
    let known = [
        obs::phase::COMPILE,
        obs::phase::UPDATE,
        obs::phase::RECOUNT,
        obs::phase::UNION_COMPILE,
        obs::phase::UNION_TERMS,
        obs::phase::AGGREGATE,
        obs::phase::AGGREGATE_PREPARE,
        obs::phase::EVALUATE,
        obs::phase::PERMUTATIONS,
        obs::phase::BRUTE_FORCE,
        obs::phase::WSMS,
    ];
    assert!(
        known.contains(&phase.as_str()),
        "deadline phase {phase:?} is not an obs phase key"
    );
    // …and the trip itself was recorded under that exact label.
    assert!(
        t.has_event(obs::phase::EV_DEADLINE_TRIP, &phase),
        "no deadline.trip event with detail {phase:?} in the trace"
    );
}

/// The tentpole coverage check: one prepared session driven through
/// report, update, and re-report leaves prepare sub-phases, engine
/// spans, and cache counters in the window, and the serialized window
/// matches the documented schema.
#[test]
fn traced_session_covers_the_documented_vocabulary() {
    let t = trace();
    let db = workloads::figure_1_database();
    let q1 = queries::q1();
    let mut session = ShapleySession::prepare(&db, AnyQuery::Cq(&q1), &ShapleyOptions::auto())
        .expect("hierarchical");
    assert!(session.report().expect("hierarchical").efficiency_holds());
    let f = session
        .database()
        .find_fact("TA", &["Adam"])
        .expect("exists");
    session.set_exogenous(f, true).expect("live fact");
    assert!(session.report().expect("hierarchical").efficiency_holds());

    for phase in [
        obs::phase::PREPARE,
        obs::phase::PREPARE_CLASSIFY,
        obs::phase::PREPARE_RESOLVE_STRATEGY,
        obs::phase::PREPARE_COMPILE,
        obs::phase::REPORT,
        obs::phase::COMPILE,
        obs::phase::RECOUNT,
        obs::phase::UPDATE,
    ] {
        assert!(t.span_count(phase) >= 1, "no {phase:?} span in the trace");
    }
    assert!(
        t.counter_value(obs::phase::CTR_RECOUNT_CACHE_MISS) >= 1,
        "recounts must miss the cache at least once"
    );

    let meta = obs::TraceMeta {
        host_cores: cqshap::numeric::poly::resolve_threads(0),
        thread_cap: cqshap::numeric::poly::resolve_threads(0),
    };
    let json = t.to_json(&meta);
    for needle in [
        "\"cqshap-trace/v1\"",
        "\"host_cores\"",
        "\"thread_cap\"",
        "\"spans\"",
    ] {
        assert!(json.contains(needle), "trace JSON lacks {needle}");
    }
}

/// Satellite contract: `ShapleyReport::stats` is now a view over obs
/// counters — the local values the report carries and the global trace
/// aggregation must agree (this is the only test in the binary driving
/// the aggregate counters).
#[test]
fn aggregate_stats_view_matches_trace_counters() {
    let t = trace();
    let db = workloads::report_benchmark_db(64);
    let q = queries::per_course_count();
    let report = aggregate_report(&db, &q, &AggregateFunction::Count, &ShapleyOptions::auto())
        .expect("tractable aggregate");
    assert!(report.stats.aggregate_candidates > 0, "no candidates found");
    assert_eq!(
        t.counter_value(obs::phase::CTR_AGG_CANDIDATES) as usize,
        report.stats.aggregate_candidates,
        "trace counter and ReportStats view disagree on candidates"
    );
    assert_eq!(
        t.counter_value(obs::phase::CTR_AGG_PRUNED) as usize,
        report.stats.pruned_candidates,
        "trace counter and ReportStats view disagree on pruned"
    );
}
