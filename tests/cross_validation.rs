//! Property-based cross-validation: every polynomial algorithm against
//! an independent exponential ground truth, on randomized inputs.

use cqshap::prelude::*;
use cqshap::workloads::random_db::RandomDbConfig;
use proptest::prelude::*;

/// A small catalog of hierarchical CQ¬s exercised against random data.
const HIERARCHICAL: &[&str] = &[
    "q() :- A(x), !B(x), C(x, y)",
    "q() :- A(x), B(x)",
    "q() :- C(x, y), !D(x, y)",
    "q() :- A(x), C(x, y), !D(x, y), E(x, y, z)",
    "q() :- A(x), !B(x), F(y), !G(y)",
    "q() :- C(x, 'd0'), !B(x)",
];

/// Polarity-consistent CQ¬s (some with self-joins) for relevance tests.
const POLARITY_CONSISTENT: &[&str] = &[
    "q() :- A(x), !B(x), C(x, y)",
    "q() :- A(x), C(x, y), C(y, x)",
    "q() :- A(x), C(x, y), !B(y)",
    "q() :- A(x), F(y), C(x, y), !B(x), !G(y)",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CntSat (Lemma 3.2) equals brute-force counting, and therefore so
    /// do all derived Shapley values, on random databases.
    #[test]
    fn cntsat_matches_brute_force(qi in 0..HIERARCHICAL.len(), seed in 0u64..5000, dom in 2usize..5, facts in 2usize..8) {
        let q = parse_cq(HIERARCHICAL[qi]).unwrap();
        let cfg = RandomDbConfig { domain: dom, facts_per_relation: facts, seed, ..Default::default() };
        let db = cfg.generate(&q);
        prop_assume!(db.endo_count() <= 14);
        let fast = cqshap::core::count_sat_hierarchical(&db, &q).unwrap();
        let slow = BruteForceCounter::new()
            .counts(&db, AnyQuery::Cq(&q))
            .unwrap();
        prop_assert_eq!(fast, slow, "query {} on\n{}", q, db);
    }

    /// The |Sat|-reduction with the hierarchical oracle equals the
    /// permutation definition of the Shapley value.
    #[test]
    fn hierarchical_shapley_matches_permutations(qi in 0..HIERARCHICAL.len(), seed in 0u64..2000) {
        let q = parse_cq(HIERARCHICAL[qi]).unwrap();
        let cfg = RandomDbConfig { domain: 3, facts_per_relation: 3, seed, ..Default::default() };
        let db = cfg.generate(&q);
        prop_assume!(db.endo_count() >= 1 && db.endo_count() <= 7);
        for &f in db.endo_facts() {
            let a = shapley_via_counts(&db, AnyQuery::Cq(&q), f, &HierarchicalCounter).unwrap();
            let b = shapley_by_permutations(&db, AnyQuery::Cq(&q), f, 9).unwrap();
            prop_assert_eq!(a, b, "{} on\n{}", db.render_fact(f), db);
        }
    }

    /// Efficiency: Shapley values sum to q(D) − q(Dx) on every input.
    #[test]
    fn efficiency_axiom(qi in 0..HIERARCHICAL.len(), seed in 0u64..2000, facts in 2usize..7) {
        let q = parse_cq(HIERARCHICAL[qi]).unwrap();
        let cfg = RandomDbConfig { domain: 3, facts_per_relation: facts, seed, ..Default::default() };
        let db = cfg.generate(&q);
        let report = shapley_report(&db, &q, &ShapleyOptions::default()).unwrap();
        prop_assert!(report.efficiency_holds(), "query {} on\n{}", q, db);
    }

    /// Algorithms 2/3 (IsPosRelevant / IsNegRelevant) equal brute-force
    /// relevance on random polarity-consistent inputs.
    #[test]
    fn relevance_matches_brute_force(qi in 0..POLARITY_CONSISTENT.len(), seed in 0u64..3000, facts in 2usize..7) {
        let q = parse_cq(POLARITY_CONSISTENT[qi]).unwrap();
        let cfg = RandomDbConfig { domain: 3, facts_per_relation: facts, seed, ..Default::default() };
        let db = cfg.generate(&q);
        prop_assume!(db.endo_count() <= 12);
        for &f in db.endo_facts() {
            let fast_pos = is_positively_relevant(&db, AnyQuery::Cq(&q), f).unwrap();
            let fast_neg = is_negatively_relevant(&db, AnyQuery::Cq(&q), f).unwrap();
            let (bf_pos, bf_neg) = brute_force_relevance(&db, AnyQuery::Cq(&q), f, 24).unwrap();
            prop_assert_eq!(fast_pos, bf_pos, "pos {} on\n{}", db.render_fact(f), db);
            prop_assert_eq!(fast_neg, bf_neg, "neg {} on\n{}", db.render_fact(f), db);
        }
    }

    /// Zeroness via relevance coincides with the exact value being zero
    /// (the polarity-consistent bridge of Section 5.2) on sjf queries.
    #[test]
    fn zeroness_matches_exact_value(seed in 0u64..2000) {
        let q = parse_cq("q() :- A(x), C(x, y), !B(y)").unwrap();
        let cfg = RandomDbConfig { domain: 3, facts_per_relation: 4, seed, ..Default::default() };
        let db = cfg.generate(&q);
        prop_assume!(db.endo_count() <= 12);
        for &f in db.endo_facts() {
            let zero = shapley_is_zero(&db, AnyQuery::Cq(&q), f).unwrap();
            let v = shapley_via_counts(&db, AnyQuery::Cq(&q), f, &BruteForceCounter::new()).unwrap();
            prop_assert_eq!(zero, v.is_zero(), "{} on\n{}", db.render_fact(f), db);
        }
    }

    /// ExoShap equals brute force on the Example 4.1 query with random
    /// data and exogenous Pub/Citations.
    #[test]
    fn exoshap_matches_brute_force(seed in 0u64..2000, facts in 2usize..6) {
        let q = parse_cq("q() :- Author(x, y), Pub(x, z), Citations(z, w)").unwrap();
        let cfg = RandomDbConfig {
            domain: 3,
            facts_per_relation: facts,
            exogenous_relations: vec!["Pub".into(), "Citations".into()],
            seed,
            ..Default::default()
        };
        let db = cfg.generate(&q);
        prop_assume!(db.endo_count() >= 1 && db.endo_count() <= 10);
        let exo_opts = ShapleyOptions::with_strategy(cqshap::core::Strategy::ExoShap);
        let bf_opts = ShapleyOptions::with_strategy(cqshap::core::Strategy::BruteForceSubsets);
        for &f in db.endo_facts() {
            prop_assert_eq!(
                shapley_value(&db, &q, f, &exo_opts).unwrap(),
                shapley_value(&db, &q, f, &bf_opts).unwrap(),
                "{} on\n{}", db.render_fact(f), db
            );
        }
    }

    /// Lifted probabilistic inference equals world enumeration.
    #[test]
    fn lifted_inference_matches_enumeration(qi in 0..HIERARCHICAL.len(), seed in 0u64..2000) {
        let q = parse_cq(HIERARCHICAL[qi]).unwrap();
        let cfg = RandomDbConfig { domain: 3, facts_per_relation: 4, seed, ..Default::default() };
        let db = cfg.generate(&q);
        prop_assume!(db.endo_count() <= 12);
        let mut pdb = ProbDatabase::new(db, 0.5);
        // Vary probabilities deterministically from the seed.
        let endo: Vec<FactId> = pdb.database().endo_facts().to_vec();
        for (i, f) in endo.into_iter().enumerate() {
            let p = [0.15, 0.4, 0.65, 0.9][((seed as usize) + i) % 4];
            pdb.set_prob(f, p).unwrap();
        }
        let fast = pdb.query_probability(&q).unwrap();
        let slow = pdb.query_probability_enumerated(&q, 20).unwrap();
        prop_assert!((fast - slow).abs() < 1e-9, "{} vs {} for {} on\n{}", fast, slow, q, pdb.database());
    }
}

/// The sampler is unbiased enough to pass a generous tolerance test on
/// a fixed instance (non-proptest: sampling is expensive).
#[test]
fn sampler_tracks_exact_values() {
    let db = cqshap::workloads::figure_1_database();
    let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
    let report = shapley_report(&db, &q1, &ShapleyOptions::default()).unwrap();
    for entry in &report.entries {
        let approx = shapley_sampled(&db, AnyQuery::Cq(&q1), entry.fact, 30_000, 2024, 0).unwrap();
        let exact = entry.value.to_f64();
        assert!(
            (approx.estimate - exact).abs() < 0.025,
            "{}: {} vs {}",
            entry.rendered,
            approx.estimate,
            exact
        );
    }
}
