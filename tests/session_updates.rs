//! Property-based pinning of `ShapleySession` incremental maintenance.
//!
//! Random insert / retract / exogenous-flip sequences on random CQ¬s
//! and 2–3-disjunct UCQ¬s: after *every* update the maintained session
//! must be bit-identical (exact rationals) to a freshly prepared
//! session on the same database, and the efficiency axiom must hold
//! exactly. This is the contract that lets the compiled engines be
//! *maintained* (factor-swapped environments, single-group recounts)
//! instead of recompiled — any drift between the incremental and
//! recompiled states shows up as a value mismatch here.

use cqshap::prelude::*;
use cqshap::workloads::random_db::RandomDbConfig;
use proptest::prelude::*;

/// Hierarchical CQ¬s with positive atoms, negated atoms, and constants
/// (the compiled-engine fragment), plus shapes that route to brute
/// force under `Auto` so the re-prepare fallback is exercised too.
const CQS: &[&str] = &[
    "q() :- A(x), !B(x), C(x, y)",
    "q() :- A(x), B(x)",
    "q() :- C(x, y), !D(x, y)",
    "q() :- A(x), C(x, y), !D(x, y), E(x, y, z)",
    "q() :- A(x), !B(x), F(y), !G(y)",
    "q() :- C(x, 'd0'), !B(x)",
    "q() :- A(x), C(x, y), E(x, y, z)",
];

/// 2–3-disjunct UCQ¬s: compiled-fragment unions and overlapping ones
/// that fall back under `Auto`.
const UNIONS: &[&str] = &[
    "q1() :- A(x), !B(x), C(x, y); q2() :- F(u), !G(u)",
    "q1() :- A(x), B(x); q2() :- C(x, y), !D(x, y)",
    "q1() :- A(x); q2() :- F(y); q3() :- H(z, w)",
    "q1() :- A(x), !B(x); q2() :- A(y)",
];

const EXO_MIXES: &[&[&str]] = &[&[], &["A"], &["C"]];

/// One deterministic pseudo-random update derived from `step`: insert
/// a fresh fact over one of the query's relations, retract some live
/// fact, or flip some fact's provenance. Ops that the database rejects
/// (duplicates, exogenous-relation violations) are skipped — the point
/// is the engine contract, not db error surfaces.
fn apply_update(session: &mut ShapleySession, step: u64) {
    let h = |k: u64| step.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(k as u32);
    match h(1) % 3 {
        0 => {
            let db = session.database();
            let rels: Vec<(String, usize)> = db
                .schema()
                .iter()
                .map(|(rel, def)| (def.name.clone(), db.schema().arity(rel)))
                .collect();
            if rels.is_empty() {
                return;
            }
            let (name, arity) = rels[(h(2) % rels.len() as u64) as usize].clone();
            let consts: Vec<String> = (0..arity)
                .map(|i| format!("d{}", (h(3 + i as u64) % 4) as usize))
                .collect();
            let refs: Vec<&str> = consts.iter().map(|s| s.as_str()).collect();
            let provenance = if h(7) % 2 == 0 {
                Provenance::Endogenous
            } else {
                Provenance::Exogenous
            };
            let _ = session.insert_fact(&name, &refs, provenance);
        }
        1 => {
            let ids: Vec<FactId> = session.database().fact_ids().collect();
            if ids.is_empty() {
                return;
            }
            let f = ids[(h(2) % ids.len() as u64) as usize];
            session.retract_fact(f).expect("live fact retracts");
        }
        _ => {
            let ids: Vec<FactId> = session.database().fact_ids().collect();
            if ids.is_empty() {
                return;
            }
            let f = ids[(h(2) % ids.len() as u64) as usize];
            let exo = session.database().fact(f).provenance.is_endogenous();
            let _ = session.set_exogenous(f, exo);
        }
    }
}

/// After every update: maintained session ≡ fresh prepare, bit for bit,
/// and the efficiency axiom holds.
fn assert_matches_fresh(session: &ShapleySession, query: AnyQuery<'_>, opts: &ShapleyOptions) {
    let fresh = ShapleySession::prepare(session.database(), query, opts).unwrap();
    let (a, b) = (session.report().unwrap(), fresh.report().unwrap());
    assert!(
        a.efficiency_holds(),
        "efficiency after update over\n{}",
        session.database()
    );
    assert_eq!(a.entries.len(), b.entries.len());
    for (x, y) in a.entries.iter().zip(&b.entries) {
        assert_eq!(
            x.value,
            y.value,
            "maintained vs fresh at {} over\n{}",
            x.rendered,
            session.database()
        );
        // The single-value path serves the same number.
        assert_eq!(session.value(x.fact).unwrap(), x.value, "{}", x.rendered);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CQ¬ sessions survive random update sequences bit-identically.
    #[test]
    fn cq_session_updates_match_fresh_prepare(
        qi in 0..CQS.len(),
        mix in 0usize..3,
        seed in 0u64..4000,
        steps in 1usize..5,
    ) {
        let q = parse_cq(CQS[qi]).unwrap();
        let exo: Vec<String> = EXO_MIXES[mix].iter().map(|s| s.to_string()).collect();
        let cfg = RandomDbConfig {
            domain: 3,
            facts_per_relation: 3,
            seed,
            exogenous_relations: exo,
            ..Default::default()
        };
        let db = cfg.generate(&q);
        prop_assume!(db.endo_count() >= 1 && db.endo_count() <= 12);
        let opts = ShapleyOptions::auto();
        let mut session = ShapleySession::prepare(&db, AnyQuery::Cq(&q), &opts).unwrap();
        for step in 0..steps as u64 {
            apply_update(&mut session, seed.wrapping_add(step).wrapping_mul(2654435761));
            prop_assume!(session.database().endo_count() <= 14);
            assert_matches_fresh(&session, AnyQuery::Cq(&q), &opts);
        }
        let stats = session.stats();
        prop_assert_eq!(stats.incremental_updates + stats.full_recompiles, stats.updates);
    }

    /// UCQ¬ sessions survive random update sequences bit-identically.
    #[test]
    fn union_session_updates_match_fresh_prepare(
        ui in 0..UNIONS.len(),
        mix in 0usize..3,
        seed in 0u64..4000,
        steps in 1usize..4,
    ) {
        let u = parse_ucq(UNIONS[ui]).unwrap();
        let exo: Vec<String> = EXO_MIXES[mix].iter().map(|s| s.to_string()).collect();
        let cfg = RandomDbConfig {
            domain: 3,
            facts_per_relation: 2,
            seed,
            exogenous_relations: exo,
            ..Default::default()
        };
        let db = cfg.generate_union(&u);
        prop_assume!(db.endo_count() >= 1 && db.endo_count() <= 10);
        let opts = ShapleyOptions::auto();
        let mut session = ShapleySession::prepare(&db, AnyQuery::Union(&u), &opts).unwrap();
        for step in 0..steps as u64 {
            apply_update(&mut session, seed.wrapping_add(step).wrapping_mul(0xB5297A4D));
            prop_assume!(session.database().endo_count() <= 12);
            assert_matches_fresh(&session, AnyQuery::Union(&u), &opts);
        }
    }

    /// A session whose engine failed (poisoned) recovers in place:
    /// after `recover()` every value is bit-identical to a session
    /// freshly prepared on the same database.
    #[test]
    fn recovered_sessions_match_fresh_prepare(
        qi in 0..CQS.len(),
        mix in 0usize..3,
        seed in 0u64..4000,
    ) {
        let q = parse_cq(CQS[qi]).unwrap();
        let exo: Vec<String> = EXO_MIXES[mix].iter().map(|s| s.to_string()).collect();
        let cfg = RandomDbConfig {
            domain: 3,
            facts_per_relation: 3,
            seed,
            exogenous_relations: exo,
            ..Default::default()
        };
        let db = cfg.generate(&q);
        prop_assume!(db.endo_count() >= 1 && db.endo_count() <= 12);
        let opts = ShapleyOptions::auto();
        let mut session = ShapleySession::prepare(&db, AnyQuery::Cq(&q), &opts).unwrap();
        session.poison_for_tests("synthetic maintenance failure");
        prop_assert!(session.is_poisoned());
        prop_assert!(session.report().is_err());
        session.recover().unwrap();
        prop_assert!(!session.is_poisoned());
        assert_matches_fresh(&session, AnyQuery::Cq(&q), &opts);
    }

    /// A rejected update (the post-update rebuild fails) rolls the
    /// database back completely: same facts, same provenance, same
    /// values, and the session keeps serving.
    #[test]
    fn rolled_back_updates_leave_the_database_unchanged(
        seed in 0u64..4000,
    ) {
        // The self-join routes Auto to brute force; capping the limit
        // at the current fact count makes any endogenous insert fail
        // its rebuild.
        let q = parse_cq("q() :- C(x, y), C(y, x)").unwrap();
        let cfg = RandomDbConfig {
            domain: 3,
            facts_per_relation: 3,
            seed,
            ..Default::default()
        };
        let db = cfg.generate(&q);
        prop_assume!(db.endo_count() >= 1 && db.endo_count() <= 10);
        let opts = ShapleyOptions::auto().brute_force_limit(db.endo_count());
        let mut session = ShapleySession::prepare(&db, AnyQuery::Cq(&q), &opts).unwrap();
        let before_db = session.database().to_string();
        let before = session.report().unwrap();
        let err = session
            .insert_fact("C", &["fresh", "fresh"], Provenance::Endogenous)
            .unwrap_err();
        prop_assert!(matches!(err, CoreError::TooManyEndogenousFacts { .. }));
        // Bit-identical database and answers; a healthy session.
        prop_assert_eq!(session.database().to_string(), before_db);
        prop_assert!(!session.is_poisoned());
        prop_assert_eq!(session.stats().rolled_back, 1);
        prop_assert_eq!(session.stats().updates, 0);
        let after = session.report().unwrap();
        for (x, y) in before.entries.iter().zip(&after.entries) {
            prop_assert_eq!(&x.value, &y.value, "{}", &x.rendered);
        }
    }

    /// The efficiency axiom holds for aggregate sessions after updates
    /// (aggregates re-prepare: candidates themselves shift).
    #[test]
    fn aggregate_session_updates_keep_efficiency(
        seed in 0u64..4000,
        steps in 1usize..4,
    ) {
        let q = parse_cq("qa(c) :- A(s, c), !B(s)").unwrap();
        let cfg = RandomDbConfig {
            domain: 3,
            facts_per_relation: 3,
            seed,
            ..Default::default()
        };
        let db = cfg.generate(&q);
        prop_assume!(db.endo_count() >= 1 && db.endo_count() <= 10);
        let opts = ShapleyOptions::auto();
        let mut session =
            ShapleySession::prepare_aggregate(&db, &q, AggregateFunction::Count, &opts).unwrap();
        for step in 0..steps as u64 {
            apply_update(&mut session, seed.wrapping_add(step).wrapping_mul(0x1B873593));
            prop_assume!(session.database().endo_count() <= 12);
            let report = session.aggregate_report().unwrap();
            prop_assert!(report.efficiency_holds(), "over\n{}", session.database());
            // Per-fact free function agrees with the session's engines.
            for entry in &report.entries {
                let v = aggregate_shapley(
                    session.database(), &q, &AggregateFunction::Count, entry.fact, &opts,
                ).unwrap();
                prop_assert_eq!(&entry.value, &v, "{}", &entry.rendered);
            }
        }
    }
}
