//! The Shapley value's characterizing axioms, checked on query games.
//!
//! The Shapley value is the unique attribution scheme satisfying
//! efficiency, symmetry, the null-player axiom, and linearity. The
//! query game of the paper inherits all four — good, cheap invariants
//! over random inputs, independent of the paper's specific examples.

use cqshap::prelude::*;
use cqshap::workloads::random_db::RandomDbConfig;
use proptest::prelude::*;

const QUERIES: &[&str] = &[
    "q() :- A(x), !B(x), C(x, y)",
    "q() :- A(x), C(x, y), !D(x, y)",
    "q() :- A(x), B(x)",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Null player: a fact whose presence never changes the answer has
    /// value exactly 0 — and for polarity-consistent queries that is
    /// precisely irrelevance (Section 5.2).
    #[test]
    fn null_player_axiom(qi in 0..QUERIES.len(), seed in 0u64..3000) {
        let q = parse_cq(QUERIES[qi]).unwrap();
        let cfg = RandomDbConfig { domain: 3, facts_per_relation: 4, seed, ..Default::default() };
        let db = cfg.generate(&q);
        prop_assume!(db.endo_count() >= 1 && db.endo_count() <= 12);
        for &f in db.endo_facts() {
            let relevant = is_relevant(&db, AnyQuery::Cq(&q), f).unwrap();
            let v = shapley_value(&db, &q, f, &ShapleyOptions::default()).unwrap();
            if !relevant {
                prop_assert!(v.is_zero(), "{} on\n{}", db.render_fact(f), db);
            } else {
                prop_assert!(!v.is_zero(), "{} on\n{}", db.render_fact(f), db);
            }
        }
    }

    /// Symmetry: interchangeable facts receive equal values. Two facts
    /// over unary relations with identical join behavior are symmetric;
    /// we construct them deliberately.
    #[test]
    fn symmetry_axiom(extra in 0usize..4, seed in 0u64..500) {
        // A(c1), A(c2) with identical C-neighborhoods are symmetric for
        // q() :- A(x), C(x, y), !B(y).
        let q = parse_cq("q() :- A(x), C(x, y), !B(y)").unwrap();
        let mut db = Database::new();
        let f1 = db.add_endo("A", &["c1"]).unwrap();
        let f2 = db.add_endo("A", &["c2"]).unwrap();
        // Same neighborhood for both, derived from the seed.
        for j in 0..=(seed % 3) {
            db.add_exo("C", &["c1", &format!("y{j}")]).unwrap();
            db.add_exo("C", &["c2", &format!("y{j}")]).unwrap();
        }
        for j in 0..extra {
            db.add_endo("B", &[&format!("y{j}")]).unwrap();
        }
        let a = shapley_value(&db, &q, f1, &ShapleyOptions::default()).unwrap();
        let b = shapley_value(&db, &q, f2, &ShapleyOptions::default()).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Anti-monotone facts: in a polarity-consistent query, facts over
    /// positively-occurring relations have non-negative values and facts
    /// over negatively-occurring relations non-positive ones (the sign
    /// observation of Section 1 / Example 2.3).
    #[test]
    fn sign_pattern(qi in 0..QUERIES.len(), seed in 0u64..3000) {
        let q = parse_cq(QUERIES[qi]).unwrap();
        let cfg = RandomDbConfig { domain: 3, facts_per_relation: 4, seed, ..Default::default() };
        let db = cfg.generate(&q);
        prop_assume!(db.endo_count() >= 1 && db.endo_count() <= 12);
        let polarity = cqshap::query::analysis::polarity_map(&q);
        for &f in db.endo_facts() {
            let rel = db.schema().name(db.fact(f).rel).to_string();
            let v = shapley_value(&db, &q, f, &ShapleyOptions::default()).unwrap();
            match polarity.get(&rel) {
                Some(cqshap::query::analysis::Polarity::Positive) => {
                    prop_assert!(!v.is_negative(), "{} on\n{}", db.render_fact(f), db)
                }
                Some(cqshap::query::analysis::Polarity::Negative) => {
                    prop_assert!(!v.is_positive(), "{} on\n{}", db.render_fact(f), db)
                }
                _ => {}
            }
        }
    }

    /// Linearity over disjoint unions of games: if two queries touch
    /// disjoint relations, the value of a fact for the combined game
    /// v = v1 + v2 − v1·v2 is NOT the sum — but for the *numeric* game
    /// q1 + q2 it is. We check the exact additive identity through
    /// aggregate machinery instead: Shapley is additive over candidate
    /// answers (that is how `aggregate_shapley` is computed), so
    /// re-summing per-answer values reproduces the whole.
    #[test]
    fn linearity_over_answers(seed in 0u64..1500) {
        use cqshap::core::aggregates::{aggregate_shapley, AggregateFunction};
        let q = parse_cq("qa(y) :- A(x), C(x, y), !B(y)").unwrap();
        let cfg = RandomDbConfig { domain: 3, facts_per_relation: 4, seed, ..Default::default() };
        let db = cfg.generate(&q);
        prop_assume!(db.endo_count() >= 1 && db.endo_count() <= 10);
        let opts = ShapleyOptions::default();
        for &f in db.endo_facts().iter().take(3) {
            let whole = aggregate_shapley(&db, &q, &AggregateFunction::Count, f, &opts).unwrap();
            let mut sum = BigRational::zero();
            for a in cqshap::core::aggregates::candidate_answers(&db, &q) {
                // Rebuild the per-answer Boolean query by substitution.
                let name = db.interner().resolve(a[0]).to_string();
                let qa = parse_cq(&format!("qa() :- A(x), C(x, '{name}'), !B('{name}')")).unwrap();
                sum = sum + shapley_value(&db, &qa, f, &opts).unwrap();
            }
            prop_assert_eq!(whole, sum, "{} on\n{}", db.render_fact(f), db);
        }
    }
}

/// Dummy-player sanity on the running example: TA(David) never matters.
#[test]
fn null_player_running_example() {
    let db = cqshap::workloads::figure_1_database();
    let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
    let f = db.find_fact("TA", &["David"]).unwrap();
    let v = shapley_value(&db, &q1, f, &ShapleyOptions::default()).unwrap();
    assert!(v.is_zero());
    assert!(shapley_is_zero(&db, AnyQuery::Cq(&q1), f).unwrap());
}
