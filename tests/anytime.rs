//! Integration tests for the anytime answer tier: deadlines on the
//! exact engines, the degradation ladder, the anytime sampler's
//! interval guarantees, and the WSMS floor.
//!
//! The #P-hard regime of the paper (non-hierarchical CQ¬s, Theorem 3.1)
//! is exactly where these paths matter: exact computation cannot be
//! fast, so it must be *interruptible*, and the session must still
//! produce a principled answer.

use cqshap::prelude::*;

/// A non-hierarchical instance (path `x–y` between `R(x)` and `T(y)`)
/// with `pairs` R/S pairs plus one `T` fact: `2·pairs + 1` endogenous
/// facts, rejected by the hierarchical and `ExoShap` strategies.
fn hard_instance(pairs: usize) -> Database {
    let mut db = Database::new();
    for i in 0..pairs {
        db.add_endo("R", &[&format!("a{i}")]).unwrap();
        db.add_endo("S", &[&format!("a{i}"), "u"]).unwrap();
    }
    db.add_endo("T", &["u"]).unwrap();
    db
}

fn hard_query() -> ConjunctiveQuery {
    parse_cq("q() :- R(x), S(x, y), T(y)").unwrap()
}

#[test]
fn hard_instance_under_deadline_returns_deadline_exceeded() {
    // m = 25 routes Auto to brute force (2^25 worlds per root — hours
    // of work); a 50 ms budget must surface DeadlineExceeded promptly
    // instead of hanging.
    let db = hard_instance(12);
    let q = hard_query();
    let options = ShapleyOptions::auto().budget(Budget::wall_ms(50));
    let session = ShapleySession::prepare(&db, AnyQuery::Cq(&q), &options).unwrap();
    let t0 = Stopwatch::start();
    let err = session.report().unwrap_err();
    assert!(
        matches!(err, CoreError::DeadlineExceeded { .. }),
        "expected DeadlineExceeded, got: {err}"
    );
    // Prompt means the same order of magnitude as the deadline, not the
    // hours the full enumeration would take.
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(10),
        "deadline took {:?} to surface",
        t0.elapsed()
    );
    // The session is not poisoned by a tripped read: the next
    // (degraded) read still serves.
    assert!(!session.is_poisoned());
}

#[test]
fn ladder_degrades_instead_of_erroring_under_a_deadline() {
    let db = hard_instance(12);
    let q = hard_query();
    let options = ShapleyOptions::auto().budget(Budget::wall_ms(50));
    let mut session = ShapleySession::prepare(&db, AnyQuery::Cq(&q), &options).unwrap();
    let answer = session.report_tiered(&TierPolicy::default()).unwrap();
    assert!(
        !matches!(answer, TieredAnswer::Exact(_)),
        "the exact tier cannot finish 2^25 worlds in 50 ms"
    );
}

#[test]
fn ladder_survives_prepare_time_rejection() {
    // m = 31 exceeds the brute-force limit: every exact strategy
    // rejects the instance at *prepare* time. The fallback constructor
    // still yields a session, and the ladder answers through the
    // degraded tiers.
    let db = hard_instance(15);
    let q = hard_query();
    let options = ShapleyOptions::auto();
    assert!(ShapleySession::prepare(&db, AnyQuery::Cq(&q), &options).is_err());
    let mut session =
        ShapleySession::prepare_with_fallback(&db, AnyQuery::Cq(&q), &options).unwrap();
    assert!(session.is_exact_unavailable());
    let policy = TierPolicy {
        epsilon: 0.2,
        ..TierPolicy::default()
    };
    match session.report_tiered(&policy).unwrap() {
        TieredAnswer::Exact(_) => panic!("no exact engine exists for this session"),
        TieredAnswer::Sampled(report) => {
            assert_eq!(report.entries.len(), db.endo_count());
            assert!(report.converged);
        }
        TieredAnswer::Wsms(report) => assert!(report.minimal_supports > 0),
    }
}

#[test]
fn anytime_intervals_contain_exact_values_on_tractable_instances() {
    // Cross-check against the exact engine on the paper's running
    // example. δ = 0.002 leaves real headroom for the sequential
    // stopping rule's coverage erosion.
    let db = cqshap::workloads::figure_1_database();
    let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
    let exact = shapley_report(&db, &q1, &ShapleyOptions::default()).unwrap();
    let mut state = None;
    let report = shapley_anytime(
        &db,
        AnyQuery::Cq(&q1),
        &AnytimeParams {
            epsilon: 0.04,
            delta: 0.002,
            ..AnytimeParams::default()
        },
        None,
        &mut state,
    )
    .unwrap();
    assert!(report.converged);
    for est in &report.entries {
        let truth = exact.entry(est.fact).unwrap().value.to_f64();
        assert!(
            (est.estimate - truth).abs() <= est.half_width,
            "{}: exact {truth:.4} outside {:.4} ± {:.4}",
            est.rendered,
            est.estimate,
            est.half_width
        );
    }
}

#[test]
fn wsms_floor_matches_the_minimal_support_definition() {
    // q() :- R(x) over two endogenous R facts: the minimal supports are
    // exactly {R(a)} and {R(b)}, each of size 1, so both weightings
    // score each fact 1.
    let mut db = Database::new();
    let a = db.add_endo("R", &["a"]).unwrap();
    let b = db.add_endo("R", &["b"]).unwrap();
    let q = parse_cq("q() :- R(x)").unwrap();
    for weight in [WsmsWeight::Uniform, WsmsWeight::SizeInverse] {
        let report = wsms_report(&db, AnyQuery::Cq(&q), weight, None).unwrap();
        assert_eq!(report.minimal_supports, 2);
        for f in [a, b] {
            let entry = report.entry(f).unwrap();
            assert_eq!(entry.supports, 1);
            assert_eq!(entry.score, BigRational::from_i64_ratio(1, 1));
        }
    }

    // The hard query's instance: the minimal supports are the triples
    // {R(ai), S(ai, u), T(u)} — one per pair, each of size 3.
    let db = hard_instance(4);
    let report = wsms_report(
        &db,
        AnyQuery::Cq(&hard_query()),
        WsmsWeight::SizeInverse,
        None,
    )
    .unwrap();
    assert_eq!(report.minimal_supports, 4);
    let t = db.find_fact("T", &["u"]).unwrap();
    // T(u) is in every minimal support; each contributes 1/3.
    let entry = report.entry(t).unwrap();
    assert_eq!(entry.supports, 4);
    assert_eq!(entry.score, BigRational::from_i64_ratio(4, 3));
}

#[test]
fn sampled_estimates_propagate_errors_instead_of_panicking() {
    // ε, δ outside (0, 1) are input errors, not assertion failures.
    assert!(required_samples(0.0, 0.01).is_err());
    assert!(required_samples(0.05, 1.0).is_err());
    assert!(required_samples(-0.2, 0.5).is_err());
    assert!(required_samples(0.05, 0.01).is_ok());
}
