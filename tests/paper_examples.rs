//! End-to-end checks of the paper's worked examples, spanning all
//! crates through the facade.

use cqshap::prelude::*;
use std::collections::HashSet;

fn rat(p: i64, q: i64) -> BigRational {
    BigRational::from_i64_ratio(p, q)
}

/// Example 2.3: all eight exact Shapley values, by three independent
/// code paths (hierarchical CntSat, brute-force subsets, permutations).
#[test]
fn example_2_3_values_by_all_strategies() {
    let db = cqshap::workloads::figure_1_database();
    let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
    let expected = [
        ("TA", vec!["Adam"], rat(-3, 28)),
        ("TA", vec!["Ben"], rat(-2, 35)),
        ("TA", vec!["David"], rat(0, 1)),
        ("Reg", vec!["Adam", "OS"], rat(37, 210)),
        ("Reg", vec!["Adam", "AI"], rat(37, 210)),
        ("Reg", vec!["Ben", "OS"], rat(27, 140)),
        ("Reg", vec!["Caroline", "DB"], rat(13, 42)),
        ("Reg", vec!["Caroline", "IC"], rat(13, 42)),
    ];
    for strategy in [
        Strategy::Hierarchical,
        Strategy::BruteForceSubsets,
        Strategy::BruteForcePermutations,
    ] {
        let opts = ShapleyOptions::with_strategy(strategy);
        for (rel, args, want) in &expected {
            let refs: Vec<&str> = args.to_vec();
            let f = db.find_fact(rel, &refs).unwrap();
            let got = shapley_value(&db, &q1, f, &opts).unwrap();
            assert_eq!(&got, want, "{rel}{args:?} under {strategy:?}");
        }
    }
}

/// The paper notes the sum of all values is 1 (efficiency).
#[test]
fn example_2_3_efficiency() {
    let db = cqshap::workloads::figure_1_database();
    let q1 = parse_cq("q1() :- Stud(x), !TA(x), Reg(x, y)").unwrap();
    let report = shapley_report(&db, &q1, &ShapleyOptions::default()).unwrap();
    assert_eq!(report.total, BigRational::one());
    assert!(report.efficiency_holds());
}

/// Section 4 / Example 4.1: exogenous relations flip q2 and the
/// citations query from FP#P-complete to PTIME, and the ExoShap values
/// agree with brute force.
#[test]
fn section_4_tractability_flip() {
    let q2 = parse_cq("q2() :- Stud(x), !TA(x), Reg(x, y), !Course(y, 'CS')").unwrap();
    assert!(matches!(
        classify(&q2),
        ExactComplexity::FpSharpPComplete { .. }
    ));
    let exo: HashSet<String> = ["Stud", "Course"].iter().map(|s| s.to_string()).collect();
    assert_eq!(
        classify_with_exo(&q2, &exo),
        ExactComplexity::TractableViaExoShap
    );

    let mut db = cqshap::workloads::figure_1_database();
    for name in ["Stud", "Course", "Adv"] {
        let rel = db.schema().id(name).unwrap();
        db.declare_exogenous_relation(rel).unwrap();
    }
    let exo_opts = ShapleyOptions::with_strategy(Strategy::ExoShap);
    let bf_opts = ShapleyOptions::with_strategy(Strategy::BruteForceSubsets);
    for &f in db.endo_facts() {
        assert_eq!(
            shapley_value(&db, &q2, f, &exo_opts).unwrap(),
            shapley_value(&db, &q2, f, &bf_opts).unwrap(),
            "{}",
            db.render_fact(f)
        );
    }
}

/// Example 4.2: `q` has a non-hierarchical path, `q'` does not.
#[test]
fn example_4_2_path_criterion() {
    let q = cqshap::workloads::queries::example_4_2_q();
    let x: HashSet<String> = ["Q", "S", "U", "P"].iter().map(|s| s.to_string()).collect();
    assert!(matches!(
        classify_with_exo(&q, &x),
        ExactComplexity::FpSharpPComplete { .. }
    ));
    let qp = cqshap::workloads::queries::example_4_2_qprime();
    let xp: HashSet<String> = ["R", "S", "O", "P", "V"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(
        classify_with_exo(&qp, &xp),
        ExactComplexity::TractableViaExoShap
    );
}

/// Section 4.1's twin queries differ only in one variable, yet land on
/// opposite sides of Theorem 4.3.
#[test]
fn section_4_1_twin_queries() {
    let x: HashSet<String> = ["S", "P"].iter().map(|s| s.to_string()).collect();
    let q = cqshap::workloads::queries::section_4_1_tractable();
    let qp = cqshap::workloads::queries::section_4_1_hard();
    assert_eq!(
        classify_with_exo(&q, &x),
        ExactComplexity::TractableViaExoShap
    );
    assert!(matches!(
        classify_with_exo(&qp, &x),
        ExactComplexity::FpSharpPComplete { .. }
    ));
}

/// Example 5.4's polarity observations across the query catalog.
#[test]
fn example_5_4_polarity_catalog() {
    use cqshap::workloads::queries;
    assert!(is_polarity_consistent(&queries::q1()));
    assert!(is_polarity_consistent(&queries::q2()));
    assert!(is_polarity_consistent(&queries::q3()));
    assert!(!is_polarity_consistent(&queries::q4()));
    assert!(!is_polarity_consistent(&queries::qrst_nr()));
    // Every q_SAT disjunct is consistent; the union is not.
    let u = queries::qsat();
    assert!(u.disjuncts().iter().all(is_polarity_consistent));
    assert!(!cqshap::query::analysis::is_polarity_consistent_union(&u));
}

/// Theorem 5.1 closed form vs the real computation, plus the 2^-n bound.
#[test]
fn theorem_5_1_gap() {
    for n in 1..=3usize {
        let (q, inst) = section_5_1_example(n);
        let v = shapley_via_counts(
            &inst.db,
            AnyQuery::Cq(&q),
            inst.f0,
            &BruteForceCounter::new(),
        )
        .unwrap();
        assert_eq!(v.abs(), inst.expected_abs);
        assert!(v.is_positive());
        assert!(v.abs() <= rat(1, 1 << n));
    }
}

/// The Section 3 remark: hardness generalizes to certain self-joins
/// (Theorem B.5's examples classify as hard; mixed polarity stays open).
#[test]
fn theorem_b5_self_join_catalog() {
    use cqshap::workloads::queries;
    assert!(matches!(
        classify(&queries::unemployed_couple()),
        ExactComplexity::SelfJoinHard { .. }
    ));
    assert!(matches!(
        classify(&queries::non_citizen_couple()),
        ExactComplexity::SelfJoinHard { .. }
    ));
    assert!(matches!(
        classify(&queries::example_5_3()),
        ExactComplexity::OpenSelfJoins
    ));
}

/// The four basic hard queries stay hard; q1 alone is tractable.
#[test]
fn basic_query_classification() {
    use cqshap::workloads::queries;
    assert_eq!(
        classify(&queries::q1()),
        ExactComplexity::TractableHierarchical
    );
    for q in [
        queries::qrst(),
        queries::qnrsnt(),
        queries::qrnst(),
        queries::qrsnt(),
    ] {
        assert!(
            matches!(classify(&q), ExactComplexity::FpSharpPComplete { .. }),
            "{q}"
        );
    }
}
