//! Property-based equivalence of the inclusion–exclusion union engine
//! and the aggregate decomposition.
//!
//! `shapley_report_union` must be *bit-identical* (exact rationals) to
//! the per-fact brute-force path on randomized 2–3-disjunct UCQ¬
//! instances — disjoint and overlapping relation sets, exogenous mixes
//! — and must satisfy the efficiency axiom on every generated instance;
//! `shapley_by_permutations` ties it back to the textbook definition on
//! the small ones. `aggregate_shapley` / `aggregate_report` must
//! satisfy the efficiency axiom `Σ_f Shapley_agg(f) = agg(D) − agg(Dx)`
//! on random Count and Sum instances, agreeing with each other.

use cqshap::prelude::*;
use cqshap::workloads::random_db::RandomDbConfig;
use proptest::prelude::*;

/// 2–3-disjunct UCQ¬ catalog: the first four route through the compiled
/// inclusion–exclusion engine (all intersections hierarchical and
/// self-join-free), the last two share a relation across disjuncts and
/// exercise the `Auto` fallback to brute force.
const UNIONS: &[&str] = &[
    "q1() :- A(x), !B(x), C(x, y); q2() :- F(u), !G(u)",
    "q1() :- A(x), B(x); q2() :- C(x, y), !D(x, y)",
    "q1() :- A(x); q2() :- F(y); q3() :- H(z, w)",
    "q1() :- C(x, 'd0'), !B(x); q2() :- F(y), !G(y); q3() :- A(x), !B(x)",
    "q1() :- A(x), !B(x); q2() :- A(y)",
    "q1() :- A(x), C(x, y); q2() :- C(u, v), !D(u, v)",
];

/// Relations to declare exogenous, per run (only relations that may
/// carry no endogenous facts).
const EXO_MIXES: &[&[&str]] = &[&[], &["A"], &["C"], &["A", "F"]];

fn build_union(
    ui: usize,
    mix: usize,
    seed: u64,
    domain: usize,
    facts: usize,
) -> (UnionQuery, Database) {
    let u = parse_ucq(UNIONS[ui]).unwrap();
    let exo: Vec<String> = EXO_MIXES[mix % EXO_MIXES.len()]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let cfg = RandomDbConfig {
        domain,
        facts_per_relation: facts,
        seed,
        exogenous_relations: exo,
        ..Default::default()
    };
    let db = cfg.generate_union(&u);
    (u, db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Batched union report values equal per-fact brute force on the
    /// union itself — and the efficiency axiom holds exactly.
    #[test]
    fn union_report_matches_brute_force(
        ui in 0..UNIONS.len(),
        mix in 0usize..4,
        seed in 0u64..5000,
        dom in 2usize..5,
        facts in 2usize..6,
    ) {
        let (u, db) = build_union(ui, mix, seed, dom, facts);
        prop_assume!(db.endo_count() >= 1 && db.endo_count() <= 14);
        let opts = ShapleyOptions::default();
        let report = shapley_report_union(&db, &u, &opts).unwrap();
        prop_assert!(report.efficiency_holds(), "efficiency on {} over\n{}", u, db);
        let brute = BruteForceCounter::new();
        for &f in db.endo_facts() {
            let want = shapley_via_counts(&db, AnyQuery::Union(&u), f, &brute).unwrap();
            let entry = report.entry(f).unwrap();
            prop_assert_eq!(&entry.value, &want, "{} on\n{}", db.render_fact(f), db);
        }
        // The per-fact reference path is bit-identical too.
        let per_fact = shapley_report_union_per_fact(&db, &u, &opts).unwrap();
        for &f in db.endo_facts() {
            prop_assert_eq!(
                &report.entry(f).unwrap().value,
                &per_fact.entry(f).unwrap().value,
                "per-fact path {} on\n{}", db.render_fact(f), db
            );
        }
    }

    /// On instances small enough for `|Dn|!` enumeration, the batched
    /// union values also equal the permutation definition itself.
    #[test]
    fn union_report_matches_permutations(
        ui in 0..UNIONS.len(),
        mix in 0usize..4,
        seed in 0u64..2000,
    ) {
        let (u, db) = build_union(ui, mix, seed, 3, 2);
        prop_assume!(db.endo_count() >= 1 && db.endo_count() <= 7);
        let report = shapley_report_union(&db, &u, &ShapleyOptions::default()).unwrap();
        prop_assert!(report.efficiency_holds());
        for &f in db.endo_facts() {
            let p = shapley_by_permutations(&db, AnyQuery::Union(&u), f, 9).unwrap();
            prop_assert_eq!(
                &report.entry(f).unwrap().value, &p,
                "{} on\n{}", db.render_fact(f), db
            );
        }
    }

    /// `Σ_f Shapley_agg(f) = agg(D) − agg(Dx)` (efficiency by linearity)
    /// on random Count instances, with `aggregate_report` agreeing with
    /// the per-fact `aggregate_shapley` decomposition.
    #[test]
    fn aggregate_count_efficiency(
        qi in 0usize..3,
        seed in 0u64..5000,
        dom in 2usize..5,
        facts in 2usize..6,
    ) {
        let texts = [
            "qa(c) :- A(s, c), !B(s)",
            "qa(c) :- A(s, c), B(s), !D(s, c)",
            "qa(c) :- A(s, c), E(c)",
        ];
        let q = parse_cq(texts[qi]).unwrap();
        let cfg = RandomDbConfig {
            domain: dom,
            facts_per_relation: facts,
            seed,
            ..Default::default()
        };
        let db = cfg.generate(&q);
        prop_assume!(db.endo_count() >= 1 && db.endo_count() <= 12);
        let agg = AggregateFunction::Count;
        let opts = ShapleyOptions::default();
        let report = aggregate_report(&db, &q, &agg, &opts).unwrap();
        prop_assert!(report.efficiency_holds(), "efficiency on {} over\n{}", q, db);
        let full = aggregate_value(&db, &World::full(&db), &q, &agg).unwrap();
        let empty = aggregate_value(&db, &World::empty(&db), &q, &agg).unwrap();
        prop_assert_eq!(&report.expected_total, &(full - empty));
        let mut total = BigRational::zero();
        for &f in db.endo_facts() {
            let v = aggregate_shapley(&db, &q, &agg, f, &opts).unwrap();
            prop_assert_eq!(&v, &report.entry(f).unwrap().value, "{}", db.render_fact(f));
            total += &v;
        }
        prop_assert_eq!(&total, &report.expected_total);
    }

    /// Efficiency for Sum aggregates, with weight constants drawn
    /// beyond the i64 range.
    #[test]
    fn aggregate_sum_efficiency(
        seed in 0u64..5000,
        pairs in 1usize..5,
        huge in 0usize..2,
    ) {
        // Sum{w | P(x, w), !B(x)}: x-values x0..x{pairs-1}, each paired
        // with an integer weight; B facts flip a subset endogenous.
        let mut db = Database::new();
        for i in 0..pairs {
            let w = if huge == 1 && i == 0 {
                format!("1234567890123456789{i}")
            } else {
                format!("{}", (seed as i64 % 17) - 8 + i as i64)
            };
            db.add_exo("P", &[&format!("x{i}"), &w]).unwrap();
        }
        for i in 0..pairs {
            if (seed >> i) & 1 == 0 {
                db.add_endo("B", &[&format!("x{i}")]).unwrap();
            } else if i % 2 == 0 {
                db.add_exo("B", &[&format!("x{i}")]).unwrap();
            }
        }
        prop_assume!(db.endo_count() >= 1);
        let q = parse_cq("qs(w) :- P(x, w), !B(x)").unwrap();
        let agg = AggregateFunction::Sum { weight_var: "w".into() };
        let opts = ShapleyOptions::default();
        let report = aggregate_report(&db, &q, &agg, &opts).unwrap();
        prop_assert!(report.efficiency_holds(), "efficiency over\n{db}");
        let full = aggregate_value(&db, &World::full(&db), &q, &agg).unwrap();
        let empty = aggregate_value(&db, &World::empty(&db), &q, &agg).unwrap();
        prop_assert_eq!(&report.expected_total, &(full - empty));
        let mut total = BigRational::zero();
        for &f in db.endo_facts() {
            total += &aggregate_shapley(&db, &q, &agg, f, &opts).unwrap();
        }
        prop_assert_eq!(&total, &report.expected_total);
    }
}

/// The union benchmark workload itself: batched ≡ per-fact at a small
/// size, plus the compiled engine really engages (no brute fallback —
/// m exceeds the brute-force limit).
#[test]
fn union_benchmark_workload_is_compiled_and_consistent() {
    let u = cqshap::workloads::queries::union_benchmark();
    let db = cqshap::workloads::union_benchmark_db(32);
    let opts = ShapleyOptions::default();
    let batched = shapley_report_union(&db, &u, &opts).unwrap();
    assert!(batched.efficiency_holds());
    let per_fact = shapley_report_union_per_fact(&db, &u, &opts).unwrap();
    for &f in db.endo_facts() {
        assert_eq!(
            batched.entry(f).unwrap().value,
            per_fact.entry(f).unwrap().value,
            "{}",
            db.render_fact(f)
        );
    }
    // m = 64 > brute limit: only the compiled engine can answer Auto.
    let big = cqshap::workloads::union_benchmark_db(64);
    let report = shapley_report_union(&big, &u, &opts).unwrap();
    assert!(report.efficiency_holds());
    // The explicit Hierarchical strategy takes the same path.
    let hier = ShapleyOptions::with_strategy(cqshap::core::shapley::Strategy::Hierarchical);
    let hreport = shapley_report_union(&big, &u, &hier).unwrap();
    for (a, b) in report.entries.iter().zip(&hreport.entries) {
        assert_eq!(a.value, b.value, "{}", a.rendered);
    }
}

/// The aggregate benchmark pairing: `aggregate_report` over the
/// per-course count on the report workload agrees with the per-fact
/// decomposition and satisfies efficiency.
#[test]
fn aggregate_benchmark_workload_is_consistent() {
    let q = cqshap::workloads::queries::per_course_count();
    let db = cqshap::workloads::report_benchmark_db(32);
    let agg = AggregateFunction::Count;
    let opts = ShapleyOptions::default();
    let report = aggregate_report(&db, &q, &agg, &opts).unwrap();
    assert!(report.efficiency_holds());
    for entry in report.entries.iter().take(8) {
        let v = aggregate_shapley(&db, &q, &agg, entry.fact, &opts).unwrap();
        assert_eq!(entry.value, v, "{}", entry.rendered);
    }
}
